//! # lsm-obs
//!
//! Zero-overhead-when-off tracing, metrics, and profiling for the lsm
//! matcher pipeline.
//!
//! The crate exposes one global *sink* guarded by a single [`AtomicBool`].
//! While the sink is disabled (the default) every instrumentation point —
//! [`span`], [`add`], [`timed`] — compiles down to one relaxed atomic load
//! and a branch, so instrumented hot paths (GEMM dispatch, encoder
//! forwards, shortlist scoring) pay effectively nothing. When enabled, the
//! sink aggregates four kinds of data:
//!
//! * **Stage timings** — named spans accumulate into per-stage aggregates:
//!   count, total, min/max, and a lock-free log₂-bucket [`Histogram`]
//!   (64 `AtomicU64` buckets, no allocation on the hot path) from which
//!   p50/p95/p99 are computed exact-within-bucket.
//! * **Pipeline counters** — fixed-enum lock-free [`Counter`]s (attributes
//!   featurized, encoder forwards, GEMM calls, quantized forwards, …).
//! * **Trace events** — every recorded span also becomes a Chrome
//!   trace-event (`ph: "X"`) with a per-thread `tid`, exportable via
//!   [`chrome_trace_json`] and loadable in Perfetto / `chrome://tracing`.
//!   Counter values and per-stage running percentiles are additionally
//!   sampled every [`COUNTER_SAMPLE_EVERY`] span ends into `ph: "C"`
//!   counter tracks.
//! * **Allocations** (opt-in, `alloc-track` cargo feature) — a counting
//!   `#[global_allocator]` wrapper ([`CountingAlloc`]) reports bytes/count
//!   allocated per pipeline stage plus peak in-use bytes. Off by default;
//!   when the feature is disabled this crate still forbids `unsafe`.
//!
//! Aggregation takes one `parking_lot::Mutex` lock per span *end*; span
//! creation never locks. Counters and histogram buckets never lock at all.
//!
//! ```
//! lsm_obs::reset();
//! lsm_obs::enable();
//! {
//!     let _span = lsm_obs::span("demo.work");
//!     lsm_obs::add(lsm_obs::Counter::GemmCalls, 3);
//! }
//! lsm_obs::disable();
//! let snap = lsm_obs::snapshot();
//! assert_eq!(snap.stage("demo.work").unwrap().count, 1);
//! assert_eq!(snap.counter("gemm_calls"), 3);
//! ```

// The counting global-allocator shim (`alloc.rs`, behind the `alloc-track`
// feature) is the only sanctioned unsafe code in the workspace; with the
// feature off the crate keeps the workspace-wide forbid.
#![cfg_attr(not(feature = "alloc-track"), forbid(unsafe_code))]

// Sync primitives come from lsm-check's shim layer: a plain re-export of
// parking_lot / std atomics in normal builds (bitwise-identical codegen),
// but under `--cfg lsm_model_check` every acquire/load/store/RMW routes
// through the model checker's cooperative scheduler so the counter,
// histogram, and registry protocols can be exhaustively model-checked
// (`tests/model.rs`).
use lsm_check::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

#[cfg(feature = "alloc-track")]
mod alloc;
#[cfg(feature = "alloc-track")]
pub use alloc::CountingAlloc;

/// Cap on buffered Chrome trace events (~48 bytes each). Past the cap,
/// stage aggregates keep updating but the timeline stops growing and
/// `dropped_trace_events` counts what was lost.
const MAX_TRACE_EVENTS: usize = 250_000;
/// Every N-th recorded span end also snapshots all counter values and
/// per-stage running percentiles into a Chrome `ph: "C"` counter sample.
pub const COUNTER_SAMPLE_EVERY: u64 = 64;
/// Cap on buffered counter samples (one per [`COUNTER_SAMPLE_EVERY`] spans).
const MAX_COUNTER_SAMPLES: usize = 4096;
/// Current `--metrics-out` snapshot schema version. v2 added `hist`
/// (log₂-bucket histograms + `p99_s`) per stage and the top-level `alloc`
/// section; v1 snapshots remain readable by `scripts/summarize_results.py`.
pub const METRICS_SCHEMA_VERSION: u64 = 2;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small stable per-thread id for trace events (std ThreadIds are
    /// opaque; Chrome traces want small integers).
    ///
    /// The `Relaxed` RMW is deliberate: RMW atomicity alone guarantees
    /// uniqueness (no two threads receive the same id), the ids order
    /// nothing, and no other memory is published through this cell.
    // lsm-lint: allow(R11-lock-discipline, id allocation needs only RMW
    // atomicity, not ordering)
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Lock-free pipeline counters. Fixed at compile time so `add` is a single
/// indexed `fetch_add` with no allocation or locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Attributes run through the lexical/embedding featurizers.
    AttrsFeaturized,
    /// Pooled encoder forward passes (the BERT featurizer hot path).
    EncoderForwards,
    /// GEMM dispatches through the tensor/graph layer.
    GemmCalls,
    /// Deduplicated encodes saved by `pooled_many`'s unique-sequence cache.
    PooledCacheHits,
    /// Attribute pairs scored by the batched classifier head.
    HeadPairs,
    /// Pseudo-labels admitted by the meta-learner's self-training rounds.
    PseudoLabels,
    /// Session events appended to the lsm-store write-ahead journal.
    JournalAppends,
    /// `fsync` (`sync_data`) calls flushing the write-ahead journal.
    JournalFsyncs,
    /// Atomic checkpoint files written by lsm-store.
    CheckpointWrites,
    /// Journal/checkpoint recoveries performed (session resumes).
    JournalRecoveries,
    /// Int8 `QuantLinear` forward passes (weights or activations path).
    QuantForwards,
    /// IEEE-f16-storage `F16Linear` forward passes.
    F16Forwards,
    /// Runtime GEMM kernel-variant selections (`KernelVariant::select`).
    KernelVariantSelected,
    /// Cross-session pooled-encoding cache hits in the serve daemon.
    ServeCacheHits,
    /// Cross-session pooled-encoding cache misses in the serve daemon.
    ServeCacheMisses,
    /// Entries evicted from the serve daemon's bounded encoding cache.
    ServeCacheEvictions,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 16] = [
        Counter::AttrsFeaturized,
        Counter::EncoderForwards,
        Counter::GemmCalls,
        Counter::PooledCacheHits,
        Counter::HeadPairs,
        Counter::PseudoLabels,
        Counter::JournalAppends,
        Counter::JournalFsyncs,
        Counter::CheckpointWrites,
        Counter::JournalRecoveries,
        Counter::QuantForwards,
        Counter::F16Forwards,
        Counter::KernelVariantSelected,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeCacheEvictions,
    ];

    /// Stable snake_case name used in metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::AttrsFeaturized => "attrs_featurized",
            Counter::EncoderForwards => "encoder_forwards",
            Counter::GemmCalls => "gemm_calls",
            Counter::PooledCacheHits => "pooled_cache_hits",
            Counter::HeadPairs => "head_pairs",
            Counter::PseudoLabels => "pseudo_labels",
            Counter::JournalAppends => "journal_appends",
            Counter::JournalFsyncs => "journal_fsyncs",
            Counter::CheckpointWrites => "checkpoint_writes",
            Counter::JournalRecoveries => "journal_recoveries",
            Counter::QuantForwards => "quant_forwards",
            Counter::F16Forwards => "f16_forwards",
            Counter::KernelVariantSelected => "kernel_variant_selected",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeCacheMisses => "serve_cache_misses",
            Counter::ServeCacheEvictions => "serve_cache_evictions",
        }
    }
}

static COUNTERS: [AtomicU64; Counter::ALL.len()] =
    [const { AtomicU64::new(0) }; Counter::ALL.len()];

/// Increment `counter` by `n`. No-op (one relaxed load) while disabled.
/// The RMW releases so the `Acquire` load in [`counter_value`] has a write
/// to pair with (R11); on x86 the lock-prefixed add is identical either way.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if is_enabled() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::AcqRel);
    }
}

/// Current value of `counter`. Snapshot reads use `Acquire`, pairing with
/// the `AcqRel` increments in [`add`], so a value compared against a cap
/// (or read after another thread's counters) sees every increment that
/// happened-before it.
pub fn counter_value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Acquire)
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of log₂ buckets; bucket `i` covers `[2^i, 2^(i+1))` nanoseconds
/// (bucket 0 additionally absorbs 0 ns), bucket 63 is open-ended.
pub const HIST_BUCKETS: usize = 64;

/// Lock-free log₂-bucket latency histogram.
///
/// Recording is a handful of lock-free atomic RMWs on a fixed
/// `[AtomicU64; 64]` — no locks, no allocation, safe to hammer from any
/// number of threads. Percentiles computed from a [`HistogramSnapshot`]
/// are *exact within one bucket*: the reported value is the geometric
/// midpoint `2^i·√2` of the bucket holding the true nearest-rank sample,
/// so it is within a factor of √2 (< one bucket's factor-2 width) of the
/// exact sort-based percentile.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    /// A new empty histogram. `const` so it can back a `static`.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Bucket index for a nanosecond value: `floor(log₂(ns))`, clamped.
    #[inline]
    pub fn bucket_index(ns: u64) -> usize {
        if ns < 2 {
            0
        } else {
            (63 - ns.leading_zeros()) as usize
        }
    }

    /// Record one latency observation, in nanoseconds. Lock-free. The RMWs
    /// release so [`Histogram::snap`]'s `Acquire` loads pair with them
    /// (R11): a snapshot that observes the `count` increment also observes
    /// the bucket increment that happened-before it. On x86 the
    /// lock-prefixed RMW is the same instruction at either ordering.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::AcqRel);
        self.count.fetch_add(1, Ordering::AcqRel);
        self.sum_ns.fetch_add(ns, Ordering::AcqRel);
        self.max_ns.fetch_max(ns, Ordering::AcqRel);
    }

    /// Record one latency observation from a `Duration`.
    #[inline]
    pub fn record(&self, dur: Duration) {
        self.record_ns(duration_ns(dur));
    }

    /// Point-in-time copy of all buckets and summary stats.
    ///
    /// `count` is read *before* the buckets — the reverse of the write
    /// order in [`Histogram::record_ns`] (bucket first, then `count`).
    /// With the `Acquire` loads pairing against the `AcqRel` RMWs, any
    /// recording whose `count` increment this snapshot observes has its
    /// bucket increment visible too, so `sum(buckets) >= count` holds in
    /// every interleaving. (Reading buckets first allowed the opposite
    /// tear — `count` ahead of the buckets it summarizes — which the
    /// model checker catches; see `tests/model.rs`.)
    pub fn snap(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Acquire);
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Acquire);
        }
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum_ns.load(Ordering::Acquire),
            max_ns: self.max_ns.load(Ordering::Acquire),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[inline]
fn duration_ns(dur: Duration) -> u64 {
    u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX)
}

/// A point-in-time copy of a [`Histogram`]'s buckets and summary stats.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count per log₂ bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations (sum of all buckets).
    pub count: u64,
    /// Exact sum of all recorded nanosecond values.
    pub sum_ns: u64,
    /// Exact maximum recorded nanosecond value.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    // Derive can't: `[u64; 64]: Default` is only implemented up to 32.
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl HistogramSnapshot {
    /// Nearest-rank percentile estimate in nanoseconds; 0.0 when empty.
    ///
    /// Walks the cumulative bucket counts to the bucket holding the
    /// nearest-rank sample and returns that bucket's geometric midpoint
    /// (`2^i·√2`, clamped to the exact recorded max), so the estimate is
    /// within one bucket's relative error (a factor of 2) of the exact
    /// sort-based nearest-rank percentile.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * (self.count - 1) as f64).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > rank {
                let mid = if i == 0 { 1.0 } else { (1u64 << i) as f64 * std::f64::consts::SQRT_2 };
                return mid.min(self.max_ns as f64);
            }
        }
        self.max_ns as f64
    }

    /// Nearest-rank percentile estimate in seconds; 0.0 when empty.
    pub fn percentile_s(&self, p: f64) -> f64 {
        self.percentile_ns(p) * 1e-9
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }
}

// ---------------------------------------------------------------------------
// Allocation stats (populated only with the `alloc-track` feature)
// ---------------------------------------------------------------------------

/// Process-wide allocation totals reported by [`CountingAlloc`].
///
/// The struct itself is always available so downstream code can consume
/// snapshots without feature-gating; [`MetricsSnapshot::alloc`] is `Some`
/// only when this crate is built with the `alloc-track` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Cumulative bytes handed out since process start.
    pub total_bytes: u64,
    /// Cumulative allocation calls since process start.
    pub total_count: u64,
    /// Bytes currently live (allocated minus deallocated).
    pub in_use_bytes: u64,
    /// High-water mark of `in_use_bytes`.
    pub peak_in_use_bytes: u64,
}

/// Current process-wide allocation totals, or `None` when the
/// `alloc-track` feature is off (or the wrapper isn't installed, in which
/// case all fields are zero).
pub fn alloc_stats() -> Option<AllocStats> {
    #[cfg(feature = "alloc-track")]
    {
        Some(alloc::global_stats())
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        None
    }
}

/// `(bytes, count)` allocated so far on the calling thread. Zeros when the
/// `alloc-track` feature is off — span alloc deltas then stay zero.
#[inline]
fn thread_alloc_totals() -> (u64, u64) {
    #[cfg(feature = "alloc-track")]
    {
        alloc::thread_totals()
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        (0, 0)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct TraceEvent {
    name: &'static str,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
}

/// One periodic `ph: "C"` sample: all counter values plus each stage's
/// running p50/p95 at the moment of capture.
struct CounterSample {
    ts_us: f64,
    counters: [u64; Counter::ALL.len()],
    stage_pcts: Vec<(&'static str, f64, f64)>,
}

struct StageAgg {
    count: u64,
    total_s: f64,
    min_s: f64,
    max_s: f64,
    hist: Histogram,
    alloc_bytes: u64,
    alloc_count: u64,
}

impl StageAgg {
    fn new() -> Self {
        StageAgg {
            count: 0,
            total_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
            hist: Histogram::new(),
            alloc_bytes: 0,
            alloc_count: 0,
        }
    }
}

#[derive(Default)]
struct Registry {
    /// Timeline origin: set lazily by the first recorded span after a
    /// reset, so trace timestamps start near zero.
    epoch: Option<Instant>,
    stages: BTreeMap<&'static str, StageAgg>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
    /// Recorded span ends since the last reset; drives counter sampling.
    span_ticks: u64,
    counter_samples: Vec<CounterSample>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

// ---------------------------------------------------------------------------
// Enable / disable / reset
// ---------------------------------------------------------------------------

/// Turn the sink on. Instrumentation points start recording.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the sink off. Already-collected data is kept (see [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Is the sink currently recording?
///
/// The gate load is `Relaxed` by design: this is the documented
/// zero-overhead-when-off check on every instrumentation point, the
/// flag's writes are `SeqCst` (release-class, so R11's pairing check is
/// satisfied), and nothing is published *through* the flag — all data
/// the gate guards flows through the counters' and registry's own
/// synchronization.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable the sink when the `LSM_TRACE` environment variable is set to a
/// truthy value (anything except empty or `0`).
pub fn enable_from_env() {
    if let Ok(v) = std::env::var("LSM_TRACE") {
        if !v.is_empty() && v != "0" {
            enable();
        }
    }
}

/// Clear all collected spans, trace events, counter samples, and counters,
/// and restart the trace timeline at zero. Does not change the enabled
/// flag, and does not reset process-lifetime [`alloc_stats`] totals.
pub fn reset() {
    // Release so a thread that observes the zeroed counters (`Acquire`
    // load in `counter_value`) also observes everything the resetting
    // thread did before the reset — a snapshot taken after a reset it
    // saw can never mix pre-reset state back in.
    for c in &COUNTERS {
        c.store(0, Ordering::Release);
    }
    let mut reg = registry().lock();
    reg.epoch = None;
    reg.stages.clear();
    reg.events.clear();
    reg.dropped_events = 0;
    reg.span_ticks = 0;
    reg.counter_samples.clear();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard returned by [`span`]; records its duration on drop.
#[must_use = "a span measures until dropped; bind it: `let _span = lsm_obs::span(..)`"]
pub struct Span {
    active: Option<(&'static str, Instant)>,
    /// Thread-local (bytes, count) allocated at span start; the drop-time
    /// delta is attributed to the stage (inclusive of nested spans, same
    /// thread only). Always zero without the `alloc-track` feature.
    alloc_start: (u64, u64),
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.active.take() {
            let (b0, c0) = self.alloc_start;
            let (b1, c1) = thread_alloc_totals();
            record_span(name, start, start.elapsed(), b1.saturating_sub(b0), c1.saturating_sub(c0));
        }
    }
}

/// Start a scoped span. While the sink is disabled this is one relaxed
/// atomic load and returns an inert guard (no clock read, no lock).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { active: None, alloc_start: (0, 0) };
    }
    Span { active: Some((name, Instant::now())), alloc_start: thread_alloc_totals() }
}

/// Run `f` under a span named `name` and return `(result, elapsed_secs)`.
///
/// The duration is always measured (one `Instant` pair) and is recorded in
/// the sink only when enabled — so a caller that stores the returned
/// seconds (e.g. `SessionOutcome::response_times`) and the trace timeline
/// are fed by the *same* measurement and cannot drift.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, f64) {
    let alloc0 = thread_alloc_totals();
    let start = Instant::now();
    let result = f();
    let dur = start.elapsed();
    if is_enabled() {
        let (b1, c1) = thread_alloc_totals();
        record_span(name, start, dur, b1.saturating_sub(alloc0.0), c1.saturating_sub(alloc0.1));
    }
    (result, dur.as_secs_f64())
}

fn record_span(name: &'static str, start: Instant, dur: Duration, ab: u64, ac: u64) {
    let tid = TID.with(|t| *t);
    let dur_s = dur.as_secs_f64();
    let mut reg = registry().lock();
    let epoch = *reg.epoch.get_or_insert(start);
    let ts_us = start.saturating_duration_since(epoch).as_secs_f64() * 1e6;
    if reg.events.len() < MAX_TRACE_EVENTS {
        reg.events.push(TraceEvent { name, tid, ts_us, dur_us: dur_s * 1e6 });
    } else {
        reg.dropped_events += 1;
    }
    let agg = reg.stages.entry(name).or_insert_with(StageAgg::new);
    agg.count += 1;
    agg.total_s += dur_s;
    agg.min_s = agg.min_s.min(dur_s);
    agg.max_s = agg.max_s.max(dur_s);
    agg.hist.record(dur);
    agg.alloc_bytes += ab;
    agg.alloc_count += ac;
    reg.span_ticks += 1;
    // Periodic counter-track sample: every COUNTER_SAMPLE_EVERY span ends,
    // capture all counter values and each stage's running p50/p95. This is
    // off the per-span fast path (1/64 of ends) and capped.
    if reg.span_ticks % COUNTER_SAMPLE_EVERY == 1 && reg.counter_samples.len() < MAX_COUNTER_SAMPLES
    {
        let end_us = ts_us + dur_s * 1e6;
        let mut counters = [0u64; Counter::ALL.len()];
        for (slot, c) in counters.iter_mut().zip(Counter::ALL.iter()) {
            *slot = counter_value(*c);
        }
        let stage_pcts = reg
            .stages
            .iter()
            .map(|(n, a)| {
                let h = a.hist.snap();
                (*n, h.percentile_s(50.0), h.percentile_s(95.0))
            })
            .collect();
        reg.counter_samples.push(CounterSample { ts_us: end_us, counters, stage_pcts });
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Aggregated statistics for one named stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    pub name: String,
    pub count: u64,
    pub total_s: f64,
    pub mean_s: f64,
    pub min_s: f64,
    pub max_s: f64,
    /// Median, exact within one histogram bucket.
    pub p50_s: f64,
    /// 95th percentile, exact within one histogram bucket.
    pub p95_s: f64,
    /// 99th percentile, exact within one histogram bucket.
    pub p99_s: f64,
    /// Full log₂-bucket latency distribution for this stage.
    pub hist: HistogramSnapshot,
    /// Bytes allocated inside this stage's spans (calling thread only);
    /// always 0 without the `alloc-track` feature.
    pub alloc_bytes: u64,
    /// Allocation calls inside this stage's spans (calling thread only);
    /// always 0 without the `alloc-track` feature.
    pub alloc_count: u64,
}

/// A point-in-time copy of every stage aggregate and pipeline counter.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Stages sorted by name (deterministic).
    pub stages: Vec<StageStats>,
    /// `(name, value)` for every [`Counter`], in [`Counter::ALL`] order.
    pub counters: Vec<(String, u64)>,
    /// Process-wide allocation totals; `Some` only under `alloc-track`.
    pub alloc: Option<AllocStats>,
    /// Trace events discarded after the buffer cap was hit.
    pub dropped_trace_events: u64,
}

/// Take a consistent snapshot of all collected metrics.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock();
    let stages = reg
        .stages
        .iter()
        .map(|(name, agg)| {
            let hist = agg.hist.snap();
            StageStats {
                name: (*name).to_string(),
                count: agg.count,
                total_s: agg.total_s,
                mean_s: if agg.count > 0 { agg.total_s / agg.count as f64 } else { 0.0 },
                min_s: if agg.count > 0 { agg.min_s } else { 0.0 },
                max_s: agg.max_s,
                // Clamp against the exact f64 max so `p* <= max_s` holds
                // even when ns->s conversions round differently.
                p50_s: hist.percentile_s(50.0).min(agg.max_s),
                p95_s: hist.percentile_s(95.0).min(agg.max_s),
                p99_s: hist.percentile_s(99.0).min(agg.max_s),
                hist,
                alloc_bytes: agg.alloc_bytes,
                alloc_count: agg.alloc_count,
            }
        })
        .collect();
    let counters = Counter::ALL.iter().map(|c| (c.name().to_string(), counter_value(*c))).collect();
    MetricsSnapshot {
        stages,
        counters,
        alloc: alloc_stats(),
        dropped_trace_events: reg.dropped_events,
    }
}

impl MetricsSnapshot {
    /// Look up one stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Value of a counter by its snake_case name (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Serialize to the v2 metrics JSON schema (see `docs/observability.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048 + 512 * self.stages.len());
        let _ =
            write!(out, "{{\n  \"schema_version\": {METRICS_SCHEMA_VERSION},\n  \"stages\": {{");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut out, &s.name);
            out.push_str(": {\"count\": ");
            let _ = write!(out, "{}", s.count);
            for (key, v) in [
                ("total_s", s.total_s),
                ("mean_s", s.mean_s),
                ("min_s", s.min_s),
                ("max_s", s.max_s),
                ("p50_s", s.p50_s),
                ("p95_s", s.p95_s),
                ("p99_s", s.p99_s),
            ] {
                let _ = write!(out, ", \"{key}\": ");
                push_json_f64(&mut out, v);
            }
            let _ = write!(
                out,
                ", \"alloc_bytes\": {}, \"alloc_count\": {}",
                s.alloc_bytes, s.alloc_count
            );
            let _ = write!(
                out,
                ", \"hist\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \"buckets\": [",
                s.hist.count, s.hist.sum_ns, s.hist.max_ns
            );
            for (j, (idx, c)) in s.hist.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{idx}, {c}]");
            }
            out.push_str("]}}");
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"alloc\": ");
        match &self.alloc {
            Some(a) => {
                let _ = write!(
                    out,
                    "{{\"total_bytes\": {}, \"total_count\": {}, \"in_use_bytes\": {}, \"peak_in_use_bytes\": {}}}",
                    a.total_bytes, a.total_count, a.in_use_bytes, a.peak_in_use_bytes
                );
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\n  \"dropped_trace_events\": {}\n}}\n", self.dropped_trace_events);
        out
    }

    /// Human-readable per-stage table (for stderr summaries), stages
    /// sorted by total time descending.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<&StageStats> = self.stages.iter().collect();
        rows.sort_by(|a, b| b.total_s.total_cmp(&a.total_s));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
            "stage", "count", "total_ms", "mean_ms", "p95_ms", "p99_ms"
        ));
        for s in rows {
            out.push_str(&format!(
                "{:<28} {:>8} {:>12.3} {:>12.4} {:>12.4} {:>12.4}\n",
                s.name,
                s.count,
                s.total_s * 1e3,
                s.mean_s * 1e3,
                s.p95_s * 1e3,
                s.p99_s * 1e3
            ));
        }
        if let Some(a) = &self.alloc {
            out.push_str(&format!(
                "alloc {:>20} bytes in {} calls, peak in-use {} bytes\n",
                a.total_bytes, a.total_count, a.peak_in_use_bytes
            ));
        }
        for (name, v) in &self.counters {
            if *v > 0 {
                out.push_str(&format!("counter {name:<28} {v}\n"));
            }
        }
        out
    }
}

/// Write the metrics snapshot JSON to `path`.
pub fn write_metrics(path: &str) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Serialize all buffered spans to Chrome trace-event JSON: an object with
/// a `traceEvents` array of complete (`"ph": "X"`) events plus periodic
/// counter (`"ph": "C"`) samples — `counter.<name>` tracks for every
/// pipeline [`Counter`] and `latency.<stage>` tracks carrying the running
/// p50/p95 (in ms) of each stage histogram. Loadable in Perfetto or
/// `chrome://tracing`.
pub fn chrome_trace_json() -> String {
    let reg = registry().lock();
    let mut out = String::with_capacity(64 + 96 * reg.events.len());
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    let mut first = true;
    for e in reg.events.iter() {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str("{\"name\": ");
        push_json_str(&mut out, e.name);
        out.push_str(", \"cat\": \"lsm\", \"ph\": \"X\", \"ts\": ");
        push_json_f64(&mut out, e.ts_us);
        out.push_str(", \"dur\": ");
        push_json_f64(&mut out, e.dur_us);
        let _ = write!(out, ", \"pid\": 1, \"tid\": {}}}", e.tid);
    }
    // Counter tracks: only counters that ever became nonzero get a track,
    // so idle counters don't clutter the timeline.
    let live: Vec<usize> = (0..Counter::ALL.len())
        .filter(|&i| reg.counter_samples.iter().any(|s| s.counters[i] > 0))
        .collect();
    for s in reg.counter_samples.iter() {
        for &i in &live {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("{\"name\": ");
            push_json_str(&mut out, &format!("counter.{}", Counter::ALL[i].name()));
            out.push_str(", \"cat\": \"lsm\", \"ph\": \"C\", \"ts\": ");
            push_json_f64(&mut out, s.ts_us);
            let _ = write!(out, ", \"pid\": 1, \"args\": {{\"value\": {}}}}}", s.counters[i]);
        }
        for (stage, p50_s, p95_s) in s.stage_pcts.iter() {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("{\"name\": ");
            push_json_str(&mut out, &format!("latency.{stage}"));
            out.push_str(", \"cat\": \"lsm\", \"ph\": \"C\", \"ts\": ");
            push_json_f64(&mut out, s.ts_us);
            out.push_str(", \"pid\": 1, \"args\": {\"p50_ms\": ");
            push_json_f64(&mut out, p50_s * 1e3);
            out.push_str(", \"p95_ms\": ");
            push_json_f64(&mut out, p95_s * 1e3);
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Write the Chrome trace JSON to `path`.
pub fn write_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

// ---------------------------------------------------------------------------
// Minimal JSON emission (no serde: this crate stays dependency-light)
// ---------------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64` to JSON. Rust's shortest-roundtrip `Display` is valid JSON for
/// finite values; non-finite values (never produced by timers) become 0.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global, so tests that enable/reset it must not
    /// interleave. (std Mutex: const-constructible, poison-tolerant.)
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn busy(us: u64) {
        let t = Instant::now();
        while t.elapsed() < Duration::from_micros(us) {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = serial();
        reset();
        disable();
        {
            let _s = span("off.stage");
            add(Counter::GemmCalls, 5);
        }
        let snap = snapshot();
        assert!(snap.stage("off.stage").is_none());
        assert_eq!(snap.counter("gemm_calls"), 0);
    }

    #[test]
    fn span_nesting_aggregates_both_levels() {
        let _g = serial();
        reset();
        enable();
        {
            let _outer = span("nest.outer");
            busy(200);
            {
                let _inner = span("nest.inner");
                busy(200);
            }
            {
                let _inner = span("nest.inner");
                busy(200);
            }
        }
        disable();
        let snap = snapshot();
        let outer = snap.stage("nest.outer").expect("outer recorded");
        let inner = snap.stage("nest.inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        // The outer span strictly contains both inner spans.
        assert!(outer.total_s >= inner.total_s);
        assert!(inner.min_s > 0.0 && inner.min_s <= inner.max_s);
        assert!(outer.p95_s >= outer.p50_s);
        assert!(outer.p99_s >= outer.p95_s);
        // The histogram saw exactly the recorded spans.
        assert_eq!(outer.hist.count, 1);
        assert_eq!(inner.hist.count, 2);
        assert!(inner.hist.max_ns > 0);
    }

    #[test]
    fn counter_aggregation_and_reset() {
        let _g = serial();
        reset();
        enable();
        add(Counter::PseudoLabels, 3);
        add(Counter::PseudoLabels, 4);
        add(Counter::EncoderForwards, 1);
        add(Counter::QuantForwards, 2);
        add(Counter::JournalFsyncs, 1);
        disable();
        let snap = snapshot();
        assert_eq!(snap.counter("pseudo_labels"), 7);
        assert_eq!(snap.counter("encoder_forwards"), 1);
        assert_eq!(snap.counter("quant_forwards"), 2);
        assert_eq!(snap.counter("journal_fsyncs"), 1);
        assert_eq!(snap.counter("attrs_featurized"), 0);
        reset();
        assert_eq!(snapshot().counter("pseudo_labels"), 0);
    }

    #[test]
    fn timed_measures_even_when_disabled() {
        let _g = serial();
        reset();
        disable();
        let (value, secs) = timed("timed.stage", || {
            busy(300);
            42
        });
        assert_eq!(value, 42);
        assert!(secs >= 200e-6, "timed() must measure with the sink off; got {secs}");
        assert!(snapshot().stage("timed.stage").is_none());

        enable();
        let ((), secs_on) = timed("timed.stage", || busy(300));
        disable();
        let snap = snapshot();
        let stage = snap.stage("timed.stage").expect("recorded when enabled");
        assert_eq!(stage.count, 1);
        // The recorded total and the returned seconds are the same measurement.
        assert_eq!(stage.total_s, secs_on);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);

        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        let s = h.snap();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_ns, 101_500);
        assert_eq!(s.max_ns, 100_000);
        // rank(50, n=5) = 2 -> 400ns lives in bucket 8 [256,512); midpoint 362.
        let p50 = s.percentile_ns(50.0);
        assert!((p50 / 400.0 - 1.0).abs() < 0.5, "p50 {p50} not within half of 400");
        // p100 lands in the max's bucket: within a factor of 2 of the exact
        // max, never above it (estimates are clamped to max_ns).
        let p100 = s.percentile_ns(100.0);
        assert!((50_000.0..=100_000.0).contains(&p100), "p100 {p100}");
        assert_eq!(HistogramSnapshot::default().percentile_ns(50.0), 0.0);
        // Percentiles are monotone in p.
        assert!(s.percentile_ns(95.0) >= s.percentile_ns(50.0));
    }

    #[test]
    fn trace_and_metrics_json_are_wellformed() {
        let _g = serial();
        reset();
        enable();
        // Count first so the periodic samples see a nonzero value, then
        // enough spans to trip at least one counter-track sample.
        add(Counter::HeadPairs, 11);
        for _ in 0..(COUNTER_SAMPLE_EVERY + 2) {
            let _s = span("json.stage");
            busy(5);
        }
        disable();

        let metrics = snapshot().to_json();
        assert_json(&metrics);
        assert!(metrics.contains("\"schema_version\": 2"));
        assert!(metrics.contains("\"json.stage\""));
        assert!(metrics.contains("\"head_pairs\": 11"));
        assert!(metrics.contains("\"p99_s\""));
        assert!(metrics.contains("\"hist\""));
        assert!(metrics.contains("\"buckets\""));
        #[cfg(not(feature = "alloc-track"))]
        assert!(metrics.contains("\"alloc\": null"));

        let trace = chrome_trace_json();
        assert_json(&trace);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ph\": \"C\""), "counter tracks missing: {trace}");
        assert!(trace.contains("\"counter.head_pairs\""));
        assert!(trace.contains("\"latency.json.stage\""));
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    // -- a tiny recursive-descent JSON validity checker for the tests -----

    fn assert_json(s: &str) {
        let b = s.as_bytes();
        let mut i = 0usize;
        parse_value(b, &mut i);
        skip_ws(b, &mut i);
        assert_eq!(i, b.len(), "trailing garbage after JSON value in: {s}");
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\n' | b'\r' | b'\t') {
            *i += 1;
        }
    }

    fn parse_value(b: &[u8], i: &mut usize) {
        skip_ws(b, i);
        assert!(*i < b.len(), "unexpected end of JSON");
        match b[*i] {
            b'{' => {
                *i += 1;
                skip_ws(b, i);
                if b[*i] == b'}' {
                    *i += 1;
                    return;
                }
                loop {
                    parse_string(b, i);
                    skip_ws(b, i);
                    assert_eq!(b[*i], b':', "expected ':' at byte {i}");
                    *i += 1;
                    parse_value(b, i);
                    skip_ws(b, i);
                    match b[*i] {
                        b',' => {
                            *i += 1;
                            skip_ws(b, i);
                        }
                        b'}' => {
                            *i += 1;
                            return;
                        }
                        c => panic!("expected ',' or '}}', got {}", c as char),
                    }
                }
            }
            b'[' => {
                *i += 1;
                skip_ws(b, i);
                if b[*i] == b']' {
                    *i += 1;
                    return;
                }
                loop {
                    parse_value(b, i);
                    skip_ws(b, i);
                    match b[*i] {
                        b',' => *i += 1,
                        b']' => {
                            *i += 1;
                            return;
                        }
                        c => panic!("expected ',' or ']', got {}", c as char),
                    }
                }
            }
            b'"' => parse_string(b, i),
            b't' => expect(b, i, "true"),
            b'f' => expect(b, i, "false"),
            b'n' => expect(b, i, "null"),
            _ => parse_number(b, i),
        }
    }

    fn parse_string(b: &[u8], i: &mut usize) {
        skip_ws(b, i);
        assert_eq!(b[*i], b'"', "expected string at byte {i}");
        *i += 1;
        while b[*i] != b'"' {
            assert!(b[*i] >= 0x20, "raw control char in string");
            if b[*i] == b'\\' {
                *i += 1;
            }
            *i += 1;
        }
        *i += 1;
    }

    fn parse_number(b: &[u8], i: &mut usize) {
        let start = *i;
        if b[*i] == b'-' {
            *i += 1;
        }
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *i += 1;
        }
        let text = std::str::from_utf8(&b[start..*i]).unwrap();
        assert!(text.parse::<f64>().is_ok(), "bad JSON number: {text}");
    }

    fn expect(b: &[u8], i: &mut usize, lit: &str) {
        assert!(b[*i..].starts_with(lit.as_bytes()), "expected literal {lit}");
        *i += lit.len();
    }
}
