//! # lsm-obs
//!
//! Zero-overhead-when-off tracing, metrics, and profiling for the lsm
//! matcher pipeline.
//!
//! The crate exposes one global *sink* guarded by a single [`AtomicBool`].
//! While the sink is disabled (the default) every instrumentation point —
//! [`span`], [`add`], [`timed`] — compiles down to one relaxed atomic load
//! and a branch, so instrumented hot paths (GEMM dispatch, encoder
//! forwards, shortlist scoring) pay effectively nothing. When enabled, the
//! sink aggregates three kinds of data:
//!
//! * **Stage timings** — named spans accumulate into per-stage aggregates
//!   (count, total, min/max, and a capped sample reservoir for p50/p95).
//! * **Pipeline counters** — fixed-enum lock-free [`Counter`]s (attributes
//!   featurized, encoder forwards, GEMM calls, pseudo-labels, …).
//! * **Trace events** — every recorded span also becomes a Chrome
//!   trace-event (`ph: "X"`) with a per-thread `tid`, exportable via
//!   [`chrome_trace_json`] and loadable in Perfetto / `chrome://tracing`.
//!
//! Aggregation takes one `parking_lot::Mutex` lock per span *end*; span
//! creation never locks. Counters never lock at all.
//!
//! ```
//! lsm_obs::reset();
//! lsm_obs::enable();
//! {
//!     let _span = lsm_obs::span("demo.work");
//!     lsm_obs::add(lsm_obs::Counter::GemmCalls, 3);
//! }
//! lsm_obs::disable();
//! let snap = lsm_obs::snapshot();
//! assert_eq!(snap.stage("demo.work").unwrap().count, 1);
//! assert_eq!(snap.counter("gemm_calls"), 3);
//! ```

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Cap on buffered Chrome trace events (~48 bytes each). Past the cap,
/// stage aggregates keep updating but the timeline stops growing and
/// `dropped_trace_events` counts what was lost.
const MAX_TRACE_EVENTS: usize = 250_000;
/// Cap on per-stage duration samples kept for percentile estimates.
/// Count/total/min/max stay exact past the cap.
const MAX_STAGE_SAMPLES: usize = 10_000;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small stable per-thread id for trace events (std ThreadIds are
    /// opaque; Chrome traces want small integers).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Lock-free pipeline counters. Fixed at compile time so `add` is a single
/// indexed `fetch_add` with no allocation or locking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Attributes run through the lexical/embedding featurizers.
    AttrsFeaturized,
    /// Pooled encoder forward passes (the BERT featurizer hot path).
    EncoderForwards,
    /// GEMM dispatches through the tensor/graph layer.
    GemmCalls,
    /// Deduplicated encodes saved by `pooled_many`'s unique-sequence cache.
    PooledCacheHits,
    /// Attribute pairs scored by the batched classifier head.
    HeadPairs,
    /// Pseudo-labels admitted by the meta-learner's self-training rounds.
    PseudoLabels,
    /// Session events appended to the lsm-store write-ahead journal.
    JournalAppends,
    /// Atomic checkpoint files written by lsm-store.
    CheckpointWrites,
    /// Journal/checkpoint recoveries performed (session resumes).
    JournalRecoveries,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 9] = [
        Counter::AttrsFeaturized,
        Counter::EncoderForwards,
        Counter::GemmCalls,
        Counter::PooledCacheHits,
        Counter::HeadPairs,
        Counter::PseudoLabels,
        Counter::JournalAppends,
        Counter::CheckpointWrites,
        Counter::JournalRecoveries,
    ];

    /// Stable snake_case name used in metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::AttrsFeaturized => "attrs_featurized",
            Counter::EncoderForwards => "encoder_forwards",
            Counter::GemmCalls => "gemm_calls",
            Counter::PooledCacheHits => "pooled_cache_hits",
            Counter::HeadPairs => "head_pairs",
            Counter::PseudoLabels => "pseudo_labels",
            Counter::JournalAppends => "journal_appends",
            Counter::CheckpointWrites => "checkpoint_writes",
            Counter::JournalRecoveries => "journal_recoveries",
        }
    }
}

static COUNTERS: [AtomicU64; Counter::ALL.len()] =
    [const { AtomicU64::new(0) }; Counter::ALL.len()];

/// Increment `counter` by `n`. No-op (one relaxed load) while disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of `counter`. Snapshot reads use `Acquire` so a value
/// compared against a cap (or read after another thread's counters) sees
/// every increment that happened-before it; the `add` fast path stays a
/// relaxed `fetch_add`.
pub fn counter_value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Acquire)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct TraceEvent {
    name: &'static str,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
}

struct StageAgg {
    count: u64,
    total_s: f64,
    min_s: f64,
    max_s: f64,
    samples: Vec<f64>,
}

impl StageAgg {
    fn new() -> Self {
        StageAgg { count: 0, total_s: 0.0, min_s: f64::INFINITY, max_s: 0.0, samples: Vec::new() }
    }
}

#[derive(Default)]
struct Registry {
    /// Timeline origin: set lazily by the first recorded span after a
    /// reset, so trace timestamps start near zero.
    epoch: Option<Instant>,
    stages: BTreeMap<&'static str, StageAgg>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

// ---------------------------------------------------------------------------
// Enable / disable / reset
// ---------------------------------------------------------------------------

/// Turn the sink on. Instrumentation points start recording.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the sink off. Already-collected data is kept (see [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Is the sink currently recording?
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enable the sink when the `LSM_TRACE` environment variable is set to a
/// truthy value (anything except empty or `0`).
pub fn enable_from_env() {
    if let Ok(v) = std::env::var("LSM_TRACE") {
        if !v.is_empty() && v != "0" {
            enable();
        }
    }
}

/// Clear all collected spans, trace events, and counters, and restart the
/// trace timeline at zero. Does not change the enabled flag.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    let mut reg = registry().lock();
    reg.epoch = None;
    reg.stages.clear();
    reg.events.clear();
    reg.dropped_events = 0;
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard returned by [`span`]; records its duration on drop.
#[must_use = "a span measures until dropped; bind it: `let _span = lsm_obs::span(..)`"]
pub struct Span {
    active: Option<(&'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.active.take() {
            record_span(name, start, start.elapsed());
        }
    }
}

/// Start a scoped span. While the sink is disabled this is one relaxed
/// atomic load and returns an inert guard (no clock read, no lock).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { active: None };
    }
    Span { active: Some((name, Instant::now())) }
}

/// Run `f` under a span named `name` and return `(result, elapsed_secs)`.
///
/// The duration is always measured (one `Instant` pair) and is recorded in
/// the sink only when enabled — so a caller that stores the returned
/// seconds (e.g. `SessionOutcome::response_times`) and the trace timeline
/// are fed by the *same* measurement and cannot drift.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = f();
    let dur = start.elapsed();
    if is_enabled() {
        record_span(name, start, dur);
    }
    (result, dur.as_secs_f64())
}

fn record_span(name: &'static str, start: Instant, dur: Duration) {
    let tid = TID.with(|t| *t);
    let dur_s = dur.as_secs_f64();
    let mut reg = registry().lock();
    let epoch = *reg.epoch.get_or_insert(start);
    let ts_us = start.saturating_duration_since(epoch).as_secs_f64() * 1e6;
    if reg.events.len() < MAX_TRACE_EVENTS {
        reg.events.push(TraceEvent { name, tid, ts_us, dur_us: dur_s * 1e6 });
    } else {
        reg.dropped_events += 1;
    }
    let agg = reg.stages.entry(name).or_insert_with(StageAgg::new);
    agg.count += 1;
    agg.total_s += dur_s;
    agg.min_s = agg.min_s.min(dur_s);
    agg.max_s = agg.max_s.max(dur_s);
    if agg.samples.len() < MAX_STAGE_SAMPLES {
        agg.samples.push(dur_s);
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Aggregated statistics for one named stage.
#[derive(Debug, Clone)]
pub struct StageStats {
    pub name: String,
    pub count: u64,
    pub total_s: f64,
    pub mean_s: f64,
    pub min_s: f64,
    pub max_s: f64,
    /// Median over the (capped) sample reservoir.
    pub p50_s: f64,
    /// 95th percentile over the (capped) sample reservoir.
    pub p95_s: f64,
}

/// A point-in-time copy of every stage aggregate and pipeline counter.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Stages sorted by name (deterministic).
    pub stages: Vec<StageStats>,
    /// `(name, value)` for every [`Counter`], in [`Counter::ALL`] order.
    pub counters: Vec<(String, u64)>,
    /// Trace events discarded after the buffer cap was hit.
    pub dropped_trace_events: u64,
}

/// Nearest-rank percentile over a sorted slice; 0.0 for an empty slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Take a consistent snapshot of all collected metrics.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock();
    let stages = reg
        .stages
        .iter()
        .map(|(name, agg)| {
            let mut sorted = agg.samples.clone();
            sorted.sort_by(f64::total_cmp);
            StageStats {
                name: (*name).to_string(),
                count: agg.count,
                total_s: agg.total_s,
                mean_s: if agg.count > 0 { agg.total_s / agg.count as f64 } else { 0.0 },
                min_s: if agg.count > 0 { agg.min_s } else { 0.0 },
                max_s: agg.max_s,
                p50_s: percentile(&sorted, 50.0),
                p95_s: percentile(&sorted, 95.0),
            }
        })
        .collect();
    let counters = Counter::ALL.iter().map(|c| (c.name().to_string(), counter_value(*c))).collect();
    MetricsSnapshot { stages, counters, dropped_trace_events: reg.dropped_events }
}

impl MetricsSnapshot {
    /// Look up one stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Value of a counter by its snake_case name (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Serialize to the metrics JSON schema (see `docs/observability.md`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + 256 * self.stages.len());
        out.push_str("{\n  \"stages\": {");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut out, &s.name);
            out.push_str(": {\"count\": ");
            let _ = write!(out, "{}", s.count);
            for (key, v) in [
                ("total_s", s.total_s),
                ("mean_s", s.mean_s),
                ("min_s", s.min_s),
                ("max_s", s.max_s),
                ("p50_s", s.p50_s),
                ("p95_s", s.p95_s),
            ] {
                let _ = write!(out, ", \"{key}\": ");
                push_json_f64(&mut out, v);
            }
            out.push('}');
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut out, name);
            let _ = write!(out, ": {v}");
        }
        let _ =
            write!(out, "\n  }},\n  \"dropped_trace_events\": {}\n}}\n", self.dropped_trace_events);
        out
    }

    /// Human-readable per-stage table (for stderr summaries), stages
    /// sorted by total time descending.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<&StageStats> = self.stages.iter().collect();
        rows.sort_by(|a, b| b.total_s.total_cmp(&a.total_s));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
            "stage", "count", "total_ms", "mean_ms", "p95_ms"
        ));
        for s in rows {
            out.push_str(&format!(
                "{:<28} {:>8} {:>12.3} {:>12.4} {:>12.4}\n",
                s.name,
                s.count,
                s.total_s * 1e3,
                s.mean_s * 1e3,
                s.p95_s * 1e3
            ));
        }
        for (name, v) in &self.counters {
            if *v > 0 {
                out.push_str(&format!("counter {name:<28} {v}\n"));
            }
        }
        out
    }
}

/// Write the metrics snapshot JSON to `path`.
pub fn write_metrics(path: &str) -> std::io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

/// Serialize all buffered spans to Chrome trace-event JSON: an object with
/// a `traceEvents` array of complete (`"ph": "X"`) events, loadable in
/// Perfetto or `chrome://tracing`.
pub fn chrome_trace_json() -> String {
    let reg = registry().lock();
    let mut out = String::with_capacity(64 + 96 * reg.events.len());
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    for (i, e) in reg.events.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("{\"name\": ");
        push_json_str(&mut out, e.name);
        out.push_str(", \"cat\": \"lsm\", \"ph\": \"X\", \"ts\": ");
        push_json_f64(&mut out, e.ts_us);
        out.push_str(", \"dur\": ");
        push_json_f64(&mut out, e.dur_us);
        let _ = write!(out, ", \"pid\": 1, \"tid\": {}}}", e.tid);
    }
    out.push_str("\n]}\n");
    out
}

/// Write the Chrome trace JSON to `path`.
pub fn write_trace(path: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

// ---------------------------------------------------------------------------
// Minimal JSON emission (no serde: this crate stays dependency-light)
// ---------------------------------------------------------------------------

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64` to JSON. Rust's shortest-roundtrip `Display` is valid JSON for
/// finite values; non-finite values (never produced by timers) become 0.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global, so tests that enable/reset it must not
    /// interleave. (std Mutex: const-constructible, poison-tolerant.)
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn busy(us: u64) {
        let t = Instant::now();
        while t.elapsed() < Duration::from_micros(us) {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _g = serial();
        reset();
        disable();
        {
            let _s = span("off.stage");
            add(Counter::GemmCalls, 5);
        }
        let snap = snapshot();
        assert!(snap.stage("off.stage").is_none());
        assert_eq!(snap.counter("gemm_calls"), 0);
    }

    #[test]
    fn span_nesting_aggregates_both_levels() {
        let _g = serial();
        reset();
        enable();
        {
            let _outer = span("nest.outer");
            busy(200);
            {
                let _inner = span("nest.inner");
                busy(200);
            }
            {
                let _inner = span("nest.inner");
                busy(200);
            }
        }
        disable();
        let snap = snapshot();
        let outer = snap.stage("nest.outer").expect("outer recorded");
        let inner = snap.stage("nest.inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        // The outer span strictly contains both inner spans.
        assert!(outer.total_s >= inner.total_s);
        assert!(inner.min_s > 0.0 && inner.min_s <= inner.max_s);
        assert!(outer.p95_s >= outer.p50_s);
    }

    #[test]
    fn counter_aggregation_and_reset() {
        let _g = serial();
        reset();
        enable();
        add(Counter::PseudoLabels, 3);
        add(Counter::PseudoLabels, 4);
        add(Counter::EncoderForwards, 1);
        disable();
        let snap = snapshot();
        assert_eq!(snap.counter("pseudo_labels"), 7);
        assert_eq!(snap.counter("encoder_forwards"), 1);
        assert_eq!(snap.counter("attrs_featurized"), 0);
        reset();
        assert_eq!(snapshot().counter("pseudo_labels"), 0);
    }

    #[test]
    fn timed_measures_even_when_disabled() {
        let _g = serial();
        reset();
        disable();
        let (value, secs) = timed("timed.stage", || {
            busy(300);
            42
        });
        assert_eq!(value, 42);
        assert!(secs >= 200e-6, "timed() must measure with the sink off; got {secs}");
        assert!(snapshot().stage("timed.stage").is_none());

        enable();
        let ((), secs_on) = timed("timed.stage", || busy(300));
        disable();
        let snap = snapshot();
        let stage = snap.stage("timed.stage").expect("recorded when enabled");
        assert_eq!(stage.count, 1);
        // The recorded total and the returned seconds are the same measurement.
        assert_eq!(stage.total_s, secs_on);
    }

    #[test]
    fn trace_and_metrics_json_are_wellformed() {
        let _g = serial();
        reset();
        enable();
        {
            let _s = span("json.stage");
            busy(100);
        }
        add(Counter::HeadPairs, 11);
        disable();

        let metrics = snapshot().to_json();
        assert_json(&metrics);
        assert!(metrics.contains("\"json.stage\""));
        assert!(metrics.contains("\"head_pairs\": 11"));

        let trace = chrome_trace_json();
        assert_json(&trace);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"X\""));
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 95.0), 5.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    // -- a tiny recursive-descent JSON validity checker for the tests -----

    fn assert_json(s: &str) {
        let b = s.as_bytes();
        let mut i = 0usize;
        parse_value(b, &mut i);
        skip_ws(b, &mut i);
        assert_eq!(i, b.len(), "trailing garbage after JSON value in: {s}");
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\n' | b'\r' | b'\t') {
            *i += 1;
        }
    }

    fn parse_value(b: &[u8], i: &mut usize) {
        skip_ws(b, i);
        assert!(*i < b.len(), "unexpected end of JSON");
        match b[*i] {
            b'{' => {
                *i += 1;
                skip_ws(b, i);
                if b[*i] == b'}' {
                    *i += 1;
                    return;
                }
                loop {
                    parse_string(b, i);
                    skip_ws(b, i);
                    assert_eq!(b[*i], b':', "expected ':' at byte {i}");
                    *i += 1;
                    parse_value(b, i);
                    skip_ws(b, i);
                    match b[*i] {
                        b',' => {
                            *i += 1;
                            skip_ws(b, i);
                        }
                        b'}' => {
                            *i += 1;
                            return;
                        }
                        c => panic!("expected ',' or '}}', got {}", c as char),
                    }
                }
            }
            b'[' => {
                *i += 1;
                skip_ws(b, i);
                if b[*i] == b']' {
                    *i += 1;
                    return;
                }
                loop {
                    parse_value(b, i);
                    skip_ws(b, i);
                    match b[*i] {
                        b',' => *i += 1,
                        b']' => {
                            *i += 1;
                            return;
                        }
                        c => panic!("expected ',' or ']', got {}", c as char),
                    }
                }
            }
            b'"' => parse_string(b, i),
            b't' => expect(b, i, "true"),
            b'f' => expect(b, i, "false"),
            b'n' => expect(b, i, "null"),
            _ => parse_number(b, i),
        }
    }

    fn parse_string(b: &[u8], i: &mut usize) {
        skip_ws(b, i);
        assert_eq!(b[*i], b'"', "expected string at byte {i}");
        *i += 1;
        while b[*i] != b'"' {
            assert!(b[*i] >= 0x20, "raw control char in string");
            if b[*i] == b'\\' {
                *i += 1;
            }
            *i += 1;
        }
        *i += 1;
    }

    fn parse_number(b: &[u8], i: &mut usize) {
        let start = *i;
        if b[*i] == b'-' {
            *i += 1;
        }
        while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *i += 1;
        }
        let text = std::str::from_utf8(&b[start..*i]).unwrap();
        assert!(text.parse::<f64>().is_ok(), "bad JSON number: {text}");
    }

    fn expect(b: &[u8], i: &mut usize, lit: &str) {
        assert!(b[*i..].starts_with(lit.as_bytes()), "expected literal {lit}");
        *i += lit.len();
    }
}
