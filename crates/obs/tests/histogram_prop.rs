//! Property tests for the log₂-bucket latency histogram: its nearest-rank
//! percentile estimates must stay within one bucket's relative error (a
//! factor of 2) of the exact sort-based nearest-rank percentiles, for any
//! sample set and any percentile.

use lsm_obs::Histogram;
use proptest::prelude::*;

/// Exact nearest-rank percentile with the same rank formula the histogram
/// uses: `rank = round(p/100 · (n-1))` over the ascending sort.
fn exact_percentile_ns(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

proptest! {
    #[test]
    fn percentiles_within_one_bucket_of_exact(
        // >= 1ns: a 0ns sample has no meaningful relative error.
        samples in proptest::collection::vec(1u64..1u64 << 40, 1..200),
        p in 0.0f64..100.0,
    ) {
        let h = Histogram::new();
        for &ns in &samples {
            h.record_ns(ns);
        }
        let snap = h.snap();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum_ns, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max_ns, *samples.iter().max().unwrap());

        let exact = exact_percentile_ns(&samples, p) as f64;
        let est = snap.percentile_ns(p);
        // One log₂ bucket spans a factor of 2; the geometric-midpoint
        // estimate (clamped to max) is within √2 ≤ 2 of the exact value.
        prop_assert!(
            est >= exact / 2.0 && est <= exact * 2.0,
            "p{:.1}: estimate {} vs exact {} (ratio {})",
            p, est, exact, est / exact
        );
    }

    #[test]
    fn percentiles_are_monotone_in_p(
        samples in proptest::collection::vec(1u64..1u64 << 40, 1..100),
        lo in 0.0f64..100.0,
        hi in 0.0f64..100.0,
    ) {
        let h = Histogram::new();
        for &ns in &samples {
            h.record_ns(ns);
        }
        let snap = h.snap();
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        prop_assert!(snap.percentile_ns(lo) <= snap.percentile_ns(hi));
    }
}
