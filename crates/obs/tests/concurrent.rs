//! Concurrent recording: spans and counters from many threads (the shape
//! of `parallel_rows` / `parallel_rows_stateful` in lsm-core) must
//! aggregate without loss and tag trace events with distinct thread ids.
//!
//! This is an integration test so it owns the process-global sink and
//! cannot race the unit tests inside the crate.

use std::time::{Duration, Instant};

/// Both tests own the process-global sink; never interleave them.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn busy(us: u64) {
    let t = Instant::now();
    while t.elapsed() < Duration::from_micros(us) {
        std::hint::spin_loop();
    }
}

#[test]
fn concurrent_spans_and_counters_aggregate_exactly() {
    const THREADS: usize = 8;
    const SPANS_PER_THREAD: u64 = 100;

    let _serial = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    lsm_obs::reset();
    lsm_obs::enable();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for i in 0..SPANS_PER_THREAD {
                    let _span = lsm_obs::span("worker.unit");
                    lsm_obs::add(lsm_obs::Counter::HeadPairs, 2);
                    if i % 10 == 0 {
                        busy(50);
                    }
                }
            });
        }
    });

    lsm_obs::disable();
    let snap = lsm_obs::snapshot();

    let stage = snap.stage("worker.unit").expect("stage recorded");
    assert_eq!(stage.count, THREADS as u64 * SPANS_PER_THREAD);
    assert_eq!(snap.counter("head_pairs"), THREADS as u64 * SPANS_PER_THREAD * 2);
    assert!(stage.total_s > 0.0);
    assert!(stage.max_s >= stage.p95_s && stage.p95_s >= stage.p50_s);
    assert_eq!(snap.dropped_trace_events, 0);

    // Trace events must carry more than one distinct tid.
    let trace = lsm_obs::chrome_trace_json();
    let mut tids = std::collections::BTreeSet::new();
    for part in trace.split("\"tid\": ").skip(1) {
        let end = part.find('}').expect("tid field closes");
        tids.insert(part[..end].trim().to_string());
    }
    assert!(tids.len() > 1, "expected events from multiple threads, got tids {tids:?}");
}

#[test]
fn histogram_hammered_from_8_threads_loses_nothing() {
    const THREADS: usize = 8;
    const RECORDS_PER_THREAD: u64 = 10_000;

    // A standalone histogram needs no sink state, but keep the tests
    // serialized anyway — they share the process.
    let _serial = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let hist = lsm_obs::Histogram::new();

    std::thread::scope(|scope| {
        for t in 0..THREADS as u64 {
            let hist = &hist;
            scope.spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    // Spread records across many buckets, deterministically.
                    hist.record_ns(1 + (t * RECORDS_PER_THREAD + i) % (1 << 20));
                }
            });
        }
    });

    let snap = hist.snap();
    let total = THREADS as u64 * RECORDS_PER_THREAD;
    assert_eq!(snap.count, total, "lost histogram records under contention");
    assert_eq!(snap.buckets.iter().sum::<u64>(), total, "bucket sum disagrees with count");
    assert!(snap.max_ns >= 1 && snap.max_ns < (1 << 20));
    assert!(snap.sum_ns > 0);
    let p50 = snap.percentile_ns(50.0);
    let p99 = snap.percentile_ns(99.0);
    assert!(p50 > 0.0 && p50 <= p99 && p99 <= snap.max_ns as f64);
}

#[test]
fn toggling_mid_flight_never_corrupts_aggregates() {
    let _serial = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for _ in 0..50 {
        lsm_obs::enable();
        {
            let _s = lsm_obs::span("toggle.unit");
            lsm_obs::disable();
        } // drop while disabled: span was armed at creation, still records or not —
          // either way the registry must stay consistent.
    }
    let snap = lsm_obs::snapshot();
    if let Some(stage) = snap.stage("toggle.unit") {
        assert!(stage.count <= 50);
        assert!(stage.total_s >= 0.0);
    }
}
