//! Integration test for the `alloc-track` counting allocator: installs
//! [`lsm_obs::CountingAlloc`] as this test binary's global allocator and
//! checks that global totals grow, peak tracks live bytes, and span-scoped
//! allocation deltas land on the owning stage.
//!
//! The whole file is feature-gated: without `--features alloc-track` it
//! compiles to an empty test binary.
#![cfg(feature = "alloc-track")]

#[global_allocator]
static ALLOC: lsm_obs::CountingAlloc = lsm_obs::CountingAlloc;

#[test]
fn global_totals_and_peak_track_allocations() {
    let before = lsm_obs::alloc_stats().expect("alloc-track feature is on");
    // The test harness itself allocates, so totals are already nonzero.
    assert!(before.total_bytes > 0 && before.total_count > 0);
    assert!(before.peak_in_use_bytes >= before.in_use_bytes);

    const BIG: usize = 1 << 20;
    let buf = vec![7u8; BIG];
    let mid = lsm_obs::alloc_stats().unwrap();
    assert!(
        mid.total_bytes >= before.total_bytes + BIG as u64,
        "1MiB allocation not counted: {} -> {}",
        before.total_bytes,
        mid.total_bytes
    );
    assert!(mid.total_count > before.total_count);
    assert!(mid.peak_in_use_bytes >= before.in_use_bytes + BIG as u64);

    drop(buf);
    let after = lsm_obs::alloc_stats().unwrap();
    // Freeing must shrink live bytes below the held-buffer level; the
    // cumulative totals never decrease.
    assert!(after.in_use_bytes < mid.in_use_bytes);
    assert!(after.total_bytes >= mid.total_bytes);
}

#[test]
fn span_attributes_allocation_deltas_to_stages() {
    lsm_obs::reset();
    lsm_obs::enable();
    {
        let _s = lsm_obs::span("alloc.heavy");
        let v = vec![1u8; 200_000];
        std::hint::black_box(&v);
    }
    {
        let _s = lsm_obs::span("alloc.light");
        std::hint::black_box(3u32);
    }
    lsm_obs::disable();
    let snap = lsm_obs::snapshot();

    let heavy = snap.stage("alloc.heavy").expect("heavy stage recorded");
    assert!(
        heavy.alloc_bytes >= 200_000,
        "200kB vec not attributed to its span: {} bytes",
        heavy.alloc_bytes
    );
    assert!(heavy.alloc_count >= 1);

    let light = snap.stage("alloc.light").expect("light stage recorded");
    assert!(
        light.alloc_bytes < 200_000,
        "allocation-free span charged {} bytes",
        light.alloc_bytes
    );

    // The v2 JSON surfaces both the per-stage fields and the alloc section.
    let json = snap.to_json();
    assert!(json.contains("\"alloc_bytes\""));
    assert!(json.contains("\"total_bytes\""));
    assert!(json.contains("\"peak_in_use_bytes\""));
}
