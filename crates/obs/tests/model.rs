//! Model checks of the lock-free counter/histogram layer.
//!
//! Under `RUSTFLAGS="--cfg lsm_model_check"` each `lsm_check::model` call
//! exhaustively explores every bounded interleaving of its closure,
//! including the coherence-allowed stale values a `Relaxed` load may
//! return. In a normal build the same closures run once with real
//! threads, so the suite doubles as a smoke test without the cfg.
//!
//! These models pin the invariants the static rule R11 can only
//! over-approximate:
//!
//! * a [`Histogram`] snapshot never tears (`sum(buckets) >= count`,
//!   guaranteed by `snap` reading `count` *before* the buckets — the
//!   reverse of the write order),
//! * counter increments behind the `Relaxed` enabled-gate are never lost
//!   across spawn/join edges,
//! * `reset` racing an `add` leaves the counter at one of the two
//!   sequentially-explicable values, never a blend,
//! * the allocator's `fetch_add`-then-`fetch_max` peak-tracking pattern
//!   keeps `peak >= in_use` once the racing allocations are joined.
//!   (`lsm-obs`'s `alloc.rs` must stay on raw `std` atomics — routing the
//!   global allocator's own accounting through the model scheduler would
//!   recurse — so the *pattern* is modeled here with shim atomics.)

use lsm_check::sync::{thread, Arc, AtomicU64, Ordering};
use lsm_obs::{Counter, Histogram};

/// Model explorations drive the process-global scheduler (and some tests
/// reset the process-global obs sink), so the suite is serialized.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

/// A snapshot concurrent with one recording observes either nothing or a
/// consistent prefix: the bucket increment is never missing for an
/// observation the snapshot already counts. (Reading the buckets before
/// `count` in `snap` reintroduces the tear and this model fails with a
/// replayable trace.)
#[test]
fn histogram_snapshot_never_tears() {
    let _g = serial();
    lsm_check::model(|| {
        let h = Arc::new(Histogram::new());
        let h2 = Arc::clone(&h);
        let t = thread::spawn(move || h2.record_ns(100));
        let s = h.snap();
        let bucket_sum: u64 = s.buckets.iter().sum();
        assert!(
            s.count <= bucket_sum,
            "torn snapshot: count {} ahead of bucket sum {bucket_sum}",
            s.count
        );
        assert!(bucket_sum <= 1, "phantom observation: bucket sum {bucket_sum}");
        t.join().unwrap();
        let s = h.snap();
        assert_eq!((s.count, s.sum_ns, s.max_ns), (1, 100, 100));
        assert_eq!(s.buckets[Histogram::bucket_index(100)], 1);
    });
}

/// Two threads increment the same counter through the public `add`
/// (including its `Relaxed` enabled-gate load): an in-flight read stays
/// within the possible partial sums, and after both joins the `Acquire`
/// load sees the full total — which also proves the spawned threads
/// inherit the spawner's view of the `Relaxed` `ENABLED` flag (a lost
/// gate read would leave the final count short).
#[test]
fn counter_adds_are_never_lost() {
    let _g = serial();
    lsm_check::model(|| {
        lsm_obs::reset();
        lsm_obs::enable();
        let t1 = thread::spawn(|| lsm_obs::add(Counter::GemmCalls, 1));
        let t2 = thread::spawn(|| lsm_obs::add(Counter::GemmCalls, 2));
        let mid = lsm_obs::counter_value(Counter::GemmCalls);
        assert!(
            matches!(mid, 0 | 1 | 2 | 3),
            "in-flight counter read {mid} is not a partial sum of {{1, 2}}"
        );
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(lsm_obs::counter_value(Counter::GemmCalls), 3, "an increment was lost");
        lsm_obs::disable();
        lsm_obs::reset();
    });
}

/// `reset` racing an `add`: the counter lands on 0 (reset overwrote the
/// increment) or 1 (increment landed after the zeroing store) — both
/// sequentially explicable — and a quiescent reset always reads back 0.
#[test]
fn reset_racing_add_stays_sequentially_explicable() {
    let _g = serial();
    lsm_check::model(|| {
        lsm_obs::reset();
        lsm_obs::enable();
        let t = thread::spawn(|| lsm_obs::add(Counter::HeadPairs, 1));
        lsm_obs::reset();
        t.join().unwrap();
        let v = lsm_obs::counter_value(Counter::HeadPairs);
        assert!(v == 0 || v == 1, "blended counter value {v} after reset/add race");
        lsm_obs::reset();
        assert_eq!(lsm_obs::counter_value(Counter::HeadPairs), 0, "quiescent reset must zero");
        lsm_obs::disable();
    });
}

/// The allocator's peak-tracking pattern (`alloc.rs`): each allocation
/// does `live = in_use.fetch_add(n) + n; peak.fetch_max(live)`. Two
/// racing allocations (one of which also frees) must leave
/// `peak >= in_use` and `peak` within the sequentially reachable range —
/// `fetch_max` may observe a competitor's allocation or not, but can
/// never *lower* the recorded peak below any single thread's live total.
#[test]
fn alloc_peak_pattern_never_undercounts() {
    let _g = serial();
    lsm_check::model(|| {
        let in_use = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));

        let (iu, pk) = (Arc::clone(&in_use), Arc::clone(&peak));
        let t1 = thread::spawn(move || {
            let live = iu.fetch_add(8, Ordering::AcqRel).wrapping_add(8);
            pk.fetch_max(live, Ordering::AcqRel);
        });
        let (iu, pk) = (Arc::clone(&in_use), Arc::clone(&peak));
        let t2 = thread::spawn(move || {
            let live = iu.fetch_add(5, Ordering::AcqRel).wrapping_add(5);
            pk.fetch_max(live, Ordering::AcqRel);
            iu.fetch_sub(5, Ordering::AcqRel); // this allocation is freed again
        });
        t1.join().unwrap();
        t2.join().unwrap();

        let live = in_use.load(Ordering::Acquire);
        let peak_v = peak.load(Ordering::Acquire);
        assert_eq!(live, 8, "in_use must settle on the unfreed allocation");
        assert!(
            peak_v == 8 || peak_v == 13,
            "peak {peak_v} is not a reachable high-water mark (8 disjoint, 13 overlapped)"
        );
        assert!(peak_v >= live, "peak {peak_v} fell below live {live}");
    });
}
