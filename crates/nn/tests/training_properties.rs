//! Cross-module training properties of the neural substrate: optimization
//! on randomized problems must decrease the loss, and gradients must stay
//! finite through every layer composition the encoder uses.

use lsm_nn::layers::{LayerNorm, Linear};
use lsm_nn::{Adam, AdamConfig, Graph, ParamStore, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Training a small regressor on a random linear target must reduce the
    /// loss — end-to-end check of autograd + Adam on arbitrary data.
    #[test]
    fn adam_reduces_loss_on_random_linear_targets(
        seed in 0u64..500,
        w0 in -2.0f32..2.0,
        w1 in -2.0f32..2.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 2, 1, &mut rng);
        let mut opt = Adam::new(AdamConfig { lr: 0.05, ..Default::default() });
        let inputs: Vec<[f32; 2]> =
            vec![[0.1, 0.9], [0.8, 0.2], [0.5, 0.5], [0.9, 0.1], [0.2, 0.4]];
        // Binary labels from the sign of a random linear function.
        let labels: Vec<f32> = inputs
            .iter()
            .map(|x| if w0 * x[0] + w1 * x[1] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let loss_now = |store: &ParamStore| -> f32 {
            let mut g = Graph::new();
            let mut losses = Vec::new();
            for (x, y) in inputs.iter().zip(&labels) {
                let xi = g.input(Tensor::from_vec(1, 2, x.to_vec()));
                let z = lin.forward(&mut g, store, xi);
                losses.push(g.bce_with_logits(z, *y, 1.0));
            }
            let l = g.mean_scalars(&losses);
            g.value(l).item()
        };
        let before = loss_now(&store);
        for _ in 0..60 {
            let mut g = Graph::new();
            let mut losses = Vec::new();
            for (x, y) in inputs.iter().zip(&labels) {
                let xi = g.input(Tensor::from_vec(1, 2, x.to_vec()));
                let z = lin.forward(&mut g, &store, xi);
                losses.push(g.bce_with_logits(z, *y, 1.0));
            }
            let l = g.mean_scalars(&losses);
            g.backward(l, &mut store);
            opt.step(&mut store);
        }
        let after = loss_now(&store);
        prop_assert!(after <= before + 1e-4, "loss rose: {before} → {after}");
        prop_assert!(after.is_finite());
    }

    /// LayerNorm → Linear → LayerNorm compositions keep gradients finite on
    /// arbitrary inputs (numerical-stability check for the encoder path).
    #[test]
    fn gradients_stay_finite_through_norm_stacks(
        vals in proptest::collection::vec(-50.0f32..50.0, 8),
        seed in 0u64..100,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let ln1 = LayerNorm::new(&mut store, "ln1", 4);
        let lin = Linear::new(&mut store, "lin", 4, 4, &mut rng);
        let ln2 = LayerNorm::new(&mut store, "ln2", 4);
        let out = Linear::new(&mut store, "out", 4, 1, &mut rng);

        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 4, vals));
        let a = ln1.forward(&mut g, &store, x);
        let b = lin.forward(&mut g, &store, a);
        let c = g.gelu(b);
        let d = ln2.forward(&mut g, &store, c);
        let z = out.forward(&mut g, &store, d);
        let z0 = g.slice_row(z, 0);
        let loss = g.bce_with_logits(z0, 1.0, 1.0);
        g.backward(loss, &mut store);
        for id in store.ids().collect::<Vec<_>>() {
            for &v in store.grad(id).data() {
                prop_assert!(v.is_finite(), "non-finite grad in {}", store.name(id));
            }
        }
    }
}
