//! Property tests for the blocked/parallel GEMM kernels: every optimized
//! path must be **bitwise** identical to the naive ikj reference across
//! arbitrary shapes — including non-multiple-of-tile dimensions, 1×N / N×1
//! edges, and inputs salted with ±0.0 (the seed kernel's removed sparsity
//! branch skipped exact zeros, which is the one place term-by-term
//! accumulation can differ in the sign of zero).

use lsm_nn::kernels::{matmul_blocked, matmul_mt, matmul_naive, transpose_blocked};
use lsm_nn::Tensor;
use proptest::prelude::*;

/// Deterministic xorshift data in [-1, 1), salted with exact +0.0 and -0.0
/// so the dense path's zero handling is exercised.
fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state % 11 {
                0 => 0.0,
                1 => -0.0,
                _ => ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0,
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_all_kernels_match(m: usize, k: usize, n: usize, threads: usize, seed: u64) {
    let a = pseudo_data(m * k, seed);
    let b = pseudo_data(k * n, seed ^ 0xbeef);
    let mut want = vec![0.0f32; m * n];
    matmul_naive(&a, &b, &mut want, m, k, n);

    // Pre-filled garbage: the kernels must overwrite, not accumulate.
    let mut blocked = vec![f32::NAN; m * n];
    matmul_blocked(&a, &b, &mut blocked, m, k, n);
    assert_eq!(bits(&want), bits(&blocked), "blocked != naive at {m}x{k}x{n}");

    let mut mt = vec![f32::NAN; m * n];
    matmul_mt(&a, &b, &mut mt, m, k, n, threads);
    assert_eq!(bits(&want), bits(&mt), "mt({threads}) != naive at {m}x{k}x{n}");

    // The public Tensor API rides on the same kernels.
    let ta = Tensor::from_vec(m, k, a);
    let tb = Tensor::from_vec(k, n, b);
    assert_eq!(bits(ta.matmul(&tb).data()), bits(&want));
    assert_eq!(bits(ta.matmul_threaded(&tb, threads).data()), bits(&want));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes, including dimensions that are not multiples of the
    /// MR/NR/KC tile sizes, at random thread counts.
    #[test]
    fn blocked_and_parallel_match_naive_bitwise(
        m in 1usize..=80,
        k in 1usize..=300,
        n in 1usize..=80,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        assert_all_kernels_match(m, k, n, threads, seed);
    }

    /// Degenerate edges: row vectors (1×N) and column vectors (N×1) on
    /// either side.
    #[test]
    fn vector_edges_match_naive_bitwise(
        dim in 1usize..=257,
        k in 1usize..=257,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        assert_all_kernels_match(1, k, dim, threads, seed);  // 1×N out
        assert_all_kernels_match(dim, k, 1, threads, seed);  // N×1 out
        assert_all_kernels_match(1, k, 1, threads, seed);    // scalar out
    }

    /// Transpose round-trips exactly for any shape.
    #[test]
    fn transpose_round_trips(
        m in 1usize..=100,
        n in 1usize..=100,
        seed in any::<u64>(),
    ) {
        let a = pseudo_data(m * n, seed);
        let mut t = vec![0.0f32; m * n];
        transpose_blocked(&a, &mut t, m, n);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(t[j * m + i].to_bits(), a[i * n + j].to_bits());
            }
        }
        let mut back = vec![0.0f32; m * n];
        transpose_blocked(&t, &mut back, n, m);
        prop_assert_eq!(bits(&back), bits(&a));
    }
}

/// A shape big enough to cross the parallel driver's FLOP cutoff, so the
/// scoped-thread path itself (not the serial fallback) is exercised at
/// several worker counts.
#[test]
fn parallel_path_above_cutoff_matches_naive_bitwise() {
    let (m, k, n) = (97, 256, 64);
    for threads in [2, 3, 4, 7, 16] {
        assert_all_kernels_match(m, k, n, threads, 0x5eed ^ threads as u64);
    }
}
