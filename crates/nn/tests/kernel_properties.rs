//! Property tests for the blocked/parallel GEMM kernels: every optimized
//! path must be **bitwise** identical to the naive ikj reference across
//! arbitrary shapes — including non-multiple-of-tile dimensions, 1×N / N×1
//! edges, and inputs salted with ±0.0 (the seed kernel's removed sparsity
//! branch skipped exact zeros, which is the one place term-by-term
//! accumulation can differ in the sign of zero).

use lsm_nn::kernels::{
    matmul_blocked, matmul_mt, matmul_mt_unclamped, matmul_naive, matmul_naive_fma, matmul_simd,
    matmul_simd_mt, matmul_simd_mt_unclamped, transpose_blocked, transpose_simd, KernelVariant,
    RoundingClass,
};
use lsm_nn::Tensor;
use proptest::prelude::*;

/// Deterministic xorshift data in [-1, 1), salted with exact +0.0 and -0.0
/// so the dense path's zero handling is exercised.
fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match state % 11 {
                0 => 0.0,
                1 => -0.0,
                _ => ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0,
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_all_kernels_match(m: usize, k: usize, n: usize, threads: usize, seed: u64) {
    let a = pseudo_data(m * k, seed);
    let b = pseudo_data(k * n, seed ^ 0xbeef);
    let mut want = vec![0.0f32; m * n];
    matmul_naive(&a, &b, &mut want, m, k, n);

    // Pre-filled garbage: the kernels must overwrite, not accumulate.
    let mut blocked = vec![f32::NAN; m * n];
    matmul_blocked(&a, &b, &mut blocked, m, k, n);
    assert_eq!(bits(&want), bits(&blocked), "blocked != naive at {m}x{k}x{n}");

    let mut mt = vec![f32::NAN; m * n];
    matmul_mt(&a, &b, &mut mt, m, k, n, threads);
    assert_eq!(bits(&want), bits(&mt), "mt({threads}) != naive at {m}x{k}x{n}");

    // The public Tensor API rides on the same kernels.
    let ta = Tensor::from_vec(m, k, a);
    let tb = Tensor::from_vec(k, n, b);
    assert_eq!(bits(ta.matmul(&tb).data()), bits(&want));
    assert_eq!(bits(ta.matmul_threaded(&tb, threads).data()), bits(&want));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes, including dimensions that are not multiples of the
    /// MR/NR/KC tile sizes, at random thread counts.
    #[test]
    fn blocked_and_parallel_match_naive_bitwise(
        m in 1usize..=80,
        k in 1usize..=300,
        n in 1usize..=80,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        assert_all_kernels_match(m, k, n, threads, seed);
    }

    /// Degenerate edges: row vectors (1×N) and column vectors (N×1) on
    /// either side.
    #[test]
    fn vector_edges_match_naive_bitwise(
        dim in 1usize..=257,
        k in 1usize..=257,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        assert_all_kernels_match(1, k, dim, threads, seed);  // 1×N out
        assert_all_kernels_match(dim, k, 1, threads, seed);  // N×1 out
        assert_all_kernels_match(1, k, 1, threads, seed);    // scalar out
    }

    /// Transpose round-trips exactly for any shape.
    #[test]
    fn transpose_round_trips(
        m in 1usize..=100,
        n in 1usize..=100,
        seed in any::<u64>(),
    ) {
        let a = pseudo_data(m * n, seed);
        let mut t = vec![0.0f32; m * n];
        transpose_blocked(&a, &mut t, m, n);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(t[j * m + i].to_bits(), a[i * n + j].to_bits());
            }
        }
        let mut back = vec![0.0f32; m * n];
        transpose_blocked(&t, &mut back, n, m);
        prop_assert_eq!(bits(&back), bits(&a));
    }
}

/// The fma rounding class: the SIMD kernels (serial and parallel) must be
/// **bitwise** identical to the scalar fma reference `matmul_naive_fma`
/// at every shape and thread count — including shapes that are not
/// multiples of the 6×32 / 4×48 register tiles.
fn assert_fma_kernels_match(m: usize, k: usize, n: usize, threads: usize, seed: u64) {
    let a = pseudo_data(m * k, seed);
    let b = pseudo_data(k * n, seed ^ 0xfaced);
    let mut want = vec![0.0f32; m * n];
    matmul_naive_fma(&a, &b, &mut want, m, k, n);

    let mut simd = vec![f32::NAN; m * n];
    matmul_simd(&a, &b, &mut simd, m, k, n);
    assert_eq!(bits(&want), bits(&simd), "simd != naive_fma at {m}x{k}x{n}");

    let mut mt = vec![f32::NAN; m * n];
    matmul_simd_mt(&a, &b, &mut mt, m, k, n, threads);
    assert_eq!(bits(&want), bits(&mt), "simd_mt({threads}) != naive_fma at {m}x{k}x{n}");

    // Bypass the host-parallelism clamp so the row-partitioned path runs
    // with exactly `threads` workers even on small hosts.
    let mut unclamped = vec![f32::NAN; m * n];
    matmul_simd_mt_unclamped(&a, &b, &mut unclamped, m, k, n, threads);
    assert_eq!(bits(&want), bits(&unclamped), "simd_mt_unclamped({threads}) at {m}x{k}x{n}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes for the fma class, mirroring the exact-class sweep.
    #[test]
    fn simd_kernels_match_fma_reference_bitwise(
        m in 1usize..=80,
        k in 1usize..=300,
        n in 1usize..=80,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        assert_fma_kernels_match(m, k, n, threads, seed);
    }

    /// The rank-1 (k=1) edge for every kernel in both rounding classes:
    /// with one multiply per output there is nothing to re-associate, so
    /// ALL variants must agree with `matmul_naive` bitwise.
    #[test]
    fn rank1_update_matches_naive_across_all_variants(
        m in 1usize..=96,
        n in 1usize..=96,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let a = pseudo_data(m, seed);
        let b = pseudo_data(n, seed ^ 0x1);
        let mut want = vec![0.0f32; m * n];
        matmul_naive(&a, &b, &mut want, m, 1, n);
        for variant in [
            KernelVariant::Naive,
            KernelVariant::Blocked,
            KernelVariant::BlockedMt,
            KernelVariant::NaiveFma,
            KernelVariant::Simd,
            KernelVariant::SimdMt,
        ] {
            let mut got = vec![f32::NAN; m * n];
            variant.run(&a, &b, &mut got, m, 1, n, threads);
            prop_assert_eq!(bits(&want), bits(&got), "{} != naive at {}x1x{}", variant.name(), m, n);
        }
    }

    /// SIMD transpose is pure data movement: bitwise equal to the blocked
    /// transpose (and hence to the naive index swap) for any shape.
    #[test]
    fn transpose_simd_matches_blocked_bitwise(
        m in 1usize..=130,
        n in 1usize..=130,
        seed in any::<u64>(),
    ) {
        let a = pseudo_data(m * n, seed);
        let mut blocked = vec![f32::NAN; m * n];
        transpose_blocked(&a, &mut blocked, m, n);
        let mut simd = vec![f32::NAN; m * n];
        transpose_simd(&a, &mut simd, m, n);
        prop_assert_eq!(bits(&blocked), bits(&simd));
    }

    /// Runtime selection never changes results: for any shape and thread
    /// count, the selected variant's output is bitwise identical to its
    /// class reference.
    #[test]
    fn variant_selection_preserves_class_semantics(
        m in 1usize..=64,
        k in 1usize..=200,
        n in 1usize..=64,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let a = pseudo_data(m * k, seed);
        let b = pseudo_data(k * n, seed ^ 0x2);
        for (class, reference) in [
            (RoundingClass::Exact, matmul_naive as fn(&[f32], &[f32], &mut [f32], usize, usize, usize)),
            (RoundingClass::Fma, matmul_naive_fma as fn(&[f32], &[f32], &mut [f32], usize, usize, usize)),
        ] {
            let mut want = vec![0.0f32; m * n];
            reference(&a, &b, &mut want, m, k, n);
            let variant = KernelVariant::select(class, m, k, n, threads);
            prop_assert_eq!(variant.class(), class);
            let mut got = vec![f32::NAN; m * n];
            variant.run(&a, &b, &mut got, m, k, n, threads);
            prop_assert_eq!(bits(&want), bits(&got), "selected {} at {}x{}x{}", variant.name(), m, k, n);
        }
    }
}

/// Zero-sized dimensions: every kernel must accept empty operands without
/// panicking and leave a zero-length output untouched.
#[test]
fn zero_size_dims_are_nops() {
    for (m, k, n) in [(0, 5, 7), (5, 0, 7), (5, 7, 0), (0, 0, 0)] {
        let a = pseudo_data(m * k, 3);
        let b = pseudo_data(k * n, 4);
        let mut want = vec![0.0f32; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        // k == 0 is an empty sum: the kernels must still overwrite out
        // with zeros, matching naive.
        for variant in [
            KernelVariant::Naive,
            KernelVariant::Blocked,
            KernelVariant::BlockedMt,
            KernelVariant::NaiveFma,
            KernelVariant::Simd,
            KernelVariant::SimdMt,
        ] {
            let mut got = vec![f32::NAN; m * n];
            variant.run(&a, &b, &mut got, m, k, n, 4);
            assert_eq!(bits(&want), bits(&got), "{} at {m}x{k}x{n}", variant.name());
        }
    }
    // Zero-row / zero-col transpose.
    let mut empty: Vec<f32> = Vec::new();
    transpose_blocked(&[], &mut empty, 0, 7);
    transpose_simd(&[], &mut empty, 7, 0);
}

/// A shape big enough to cross the parallel driver's FLOP cutoff, so the
/// scoped-thread path itself (not the serial fallback) is exercised at
/// several worker counts.
#[test]
fn parallel_path_above_cutoff_matches_naive_bitwise() {
    let (m, k, n) = (97, 256, 64);
    for threads in [2, 3, 4, 7, 16] {
        assert_all_kernels_match(m, k, n, threads, 0x5eed ^ threads as u64);
    }
}

/// Same, for the fma class: unclamped worker counts at a shape above the
/// FLOP cutoff, so row partitioning itself is exercised.
#[test]
fn fma_parallel_path_above_cutoff_matches_reference_bitwise() {
    let (m, k, n) = (97, 256, 64);
    let a = pseudo_data(m * k, 0xabc);
    let b = pseudo_data(k * n, 0xdef);
    let mut want = vec![0.0f32; m * n];
    matmul_naive_fma(&a, &b, &mut want, m, k, n);
    for threads in [2, 3, 4, 7, 16] {
        let mut got = vec![f32::NAN; m * n];
        matmul_simd_mt_unclamped(&a, &b, &mut got, m, k, n, threads);
        assert_eq!(bits(&want), bits(&got), "simd_mt_unclamped({threads})");
        let mut exact = vec![f32::NAN; m * n];
        matmul_mt_unclamped(&a, &b, &mut exact, m, k, n, threads);
        let mut naive = vec![0.0f32; m * n];
        matmul_naive(&a, &b, &mut naive, m, k, n);
        assert_eq!(bits(&naive), bits(&exact), "mt_unclamped({threads})");
    }
}
