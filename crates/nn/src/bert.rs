//! The mini-BERT encoder and the pair-classification head.
//!
//! Architecture (Fig. 3 of the paper, scaled down):
//!
//! ```text
//! token ids ──► token-emb + pos-emb ──► LayerNorm
//!            ──► N × [ MultiHeadSelfAttention → Add&Norm → FFN(GELU) → Add&Norm ]
//!            ──► E'[CLS]  (row 0)
//!            ──► pooler (Linear + tanh)
//!            ──► matching classifier (one hidden layer → logit → sigmoid)
//! ```
//!
//! The classifier mirrors the paper's "binary classifier consisting of a
//! single hidden layer neural network with a sigmoid activation function"
//! stacked on the BERT hidden state `E'[CLS]`.

use crate::bpe::{BpeVocab, SpecialToken};
use crate::graph::{Graph, NodeId};
use crate::layers::{Embedding, LayerNorm, Linear};
use crate::params::ParamStore;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the encoder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BertConfig {
    /// Subword vocabulary size.
    pub vocab_size: usize,
    /// Hidden width `d`.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (positions table size).
    pub max_seq: usize,
}

impl BertConfig {
    /// A small config adequate for the schema-matching experiments.
    pub fn small(vocab_size: usize) -> Self {
        BertConfig { vocab_size, d_model: 48, n_layers: 2, n_heads: 4, d_ff: 96, max_seq: 48 }
    }

    /// A tiny config for unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        BertConfig { vocab_size, d_model: 16, n_layers: 1, n_heads: 2, d_ff: 24, max_seq: 24 }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Block {
    pub(crate) wq: Linear,
    pub(crate) wk: Linear,
    pub(crate) wv: Linear,
    pub(crate) wo: Linear,
    pub(crate) attn_norm: LayerNorm,
    pub(crate) ff1: Linear,
    pub(crate) ff2: Linear,
    pub(crate) ff_norm: LayerNorm,
}

/// The transformer encoder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BertEncoder {
    /// Hyper-parameters.
    pub config: BertConfig,
    token_emb: Embedding,
    pos_emb: Embedding,
    emb_norm: LayerNorm,
    blocks: Vec<Block>,
    pooler: Linear,
}

impl BertEncoder {
    /// Registers all encoder parameters in `store`.
    pub fn new(config: BertConfig, store: &mut ParamStore, rng: &mut impl Rng) -> Self {
        assert_eq!(config.d_model % config.n_heads, 0, "d_model must divide into heads");
        let d = config.d_model;
        let token_emb = Embedding::new(store, "bert.tok", config.vocab_size, d, rng);
        let pos_emb = Embedding::new(store, "bert.pos", config.max_seq, d, rng);
        let emb_norm = LayerNorm::new(store, "bert.emb_norm", d);
        let blocks = (0..config.n_layers)
            .map(|i| Block {
                wq: Linear::new(store, &format!("bert.{i}.wq"), d, d, rng),
                wk: Linear::new(store, &format!("bert.{i}.wk"), d, d, rng),
                wv: Linear::new(store, &format!("bert.{i}.wv"), d, d, rng),
                wo: Linear::new(store, &format!("bert.{i}.wo"), d, d, rng),
                attn_norm: LayerNorm::new(store, &format!("bert.{i}.attn_norm"), d),
                ff1: Linear::new(store, &format!("bert.{i}.ff1"), d, config.d_ff, rng),
                ff2: Linear::new(store, &format!("bert.{i}.ff2"), config.d_ff, d, rng),
                ff_norm: LayerNorm::new(store, &format!("bert.{i}.ff_norm"), d),
            })
            .collect();
        let pooler = Linear::new(store, "bert.pooler", d, d, rng);
        BertEncoder { config, token_emb, pos_emb, emb_norm, blocks, pooler }
    }

    /// Truncates `ids` to the encoder's maximum sequence length.
    pub fn truncate<'a>(&self, ids: &'a [u32]) -> &'a [u32] {
        &ids[..ids.len().min(self.config.max_seq)]
    }

    /// Runs the encoder over a token-id sequence, returning the full hidden
    /// state `[seq, d]`.
    pub fn encode(&self, g: &mut Graph, store: &ParamStore, ids: &[u32]) -> NodeId {
        let ids = self.truncate(ids);
        assert!(!ids.is_empty(), "cannot encode an empty sequence");
        let idx: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        let pos: Vec<usize> = (0..idx.len()).collect();
        let te = self.token_emb.forward(g, store, &idx);
        let pe = self.pos_emb.forward(g, store, &pos);
        let sum = g.add(te, pe);
        let mut h = self.emb_norm.forward(g, store, sum);

        let heads = self.config.n_heads;
        let dh = self.config.d_model / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        for block in &self.blocks {
            // Multi-head self-attention.
            let q = block.wq.forward(g, store, h);
            let k = block.wk.forward(g, store, h);
            let v = block.wv.forward(g, store, h);
            let mut head_outs = Vec::with_capacity(heads);
            for hd in 0..heads {
                let (s, e) = (hd * dh, (hd + 1) * dh);
                let qh = g.slice_cols(q, s, e);
                let kh = g.slice_cols(k, s, e);
                let vh = g.slice_cols(v, s, e);
                let kt = g.transpose(kh);
                let scores = g.matmul(qh, kt);
                let scaled = g.scale(scores, scale);
                let attn = g.softmax_rows(scaled);
                head_outs.push(g.matmul(attn, vh));
            }
            let concat = g.concat_cols(&head_outs);
            let proj = block.wo.forward(g, store, concat);
            let res1 = g.add(h, proj);
            let norm1 = block.attn_norm.forward(g, store, res1);
            // Feed-forward.
            let ff_in = block.ff1.forward(g, store, norm1);
            let ff_act = g.gelu(ff_in);
            let ff_out = block.ff2.forward(g, store, ff_act);
            let res2 = g.add(norm1, ff_out);
            h = block.ff_norm.forward(g, store, res2);
        }
        h
    }

    /// The encoder's components, for graph-free plan compilation
    /// ([`crate::fast::FastEncoder`]).
    pub(crate) fn fast_parts(&self) -> (&Embedding, &Embedding, &LayerNorm, &[Block], &Linear) {
        (&self.token_emb, &self.pos_emb, &self.emb_norm, &self.blocks, &self.pooler)
    }

    /// Encodes and pools: `tanh(W · E'[CLS] + b)`, a `[1, d]` vector.
    pub fn pooled(&self, g: &mut Graph, store: &ParamStore, ids: &[u32]) -> NodeId {
        let _span = lsm_obs::span("nn.encoder.pooled");
        lsm_obs::add(lsm_obs::Counter::EncoderForwards, 1);
        let h = self.encode(g, store, ids);
        let cls = g.slice_row(h, 0);
        let p = self.pooler.forward(g, store, cls);
        g.tanh(p)
    }
}

/// Builds the `[CLS] a [SEP] b [SEP]` input of the BERT featurizer from two
/// pre-encoded subword sequences.
pub fn pair_input(vocab: &BpeVocab, a: &[u32], b: &[u32], max_seq: usize) -> Vec<u32> {
    let _ = vocab; // ids are already vocab-encoded; kept for symmetry/future masking
    let budget = max_seq.saturating_sub(3); // CLS + 2×SEP
    let half = budget / 2;
    let (ta, tb) = if a.len() + b.len() <= budget {
        (a.len(), b.len())
    } else if a.len() <= half {
        (a.len(), budget - a.len())
    } else if b.len() <= half {
        (budget - b.len(), b.len())
    } else {
        (half, budget - half)
    };
    let mut out = Vec::with_capacity(ta + tb + 3);
    out.push(SpecialToken::Cls.id());
    out.extend_from_slice(&a[..ta]);
    out.push(SpecialToken::Sep.id());
    out.extend_from_slice(&b[..tb]);
    out.push(SpecialToken::Sep.id());
    out
}

/// The matching classifier: one hidden layer over the pooled `[CLS]` state,
/// emitting a single logit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairClassifier {
    hidden: Linear,
    out: Linear,
}

impl PairClassifier {
    /// Registers classifier parameters (`hidden_dim` defaults to `d_model`
    /// when you pass it as such).
    pub fn new(
        store: &mut ParamStore,
        d_model: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        PairClassifier {
            hidden: Linear::new(store, "clf.hidden", d_model, hidden_dim, rng),
            out: Linear::new(store, "clf.out", hidden_dim, 1, rng),
        }
    }

    /// The raw matching logit for a pooled `[1, d]` vector.
    pub fn logit(&self, g: &mut Graph, store: &ParamStore, pooled: NodeId) -> NodeId {
        let h = self.hidden.forward(g, store, pooled);
        let a = g.gelu(h);
        self.out.forward(g, store, a)
    }

    /// The matching probability (sigmoid of the logit).
    pub fn probability(&self, g: &mut Graph, store: &ParamStore, pooled: NodeId) -> NodeId {
        let z = self.logit(g, store, pooled);
        g.sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, AdamConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (BertEncoder, PairClassifier, ParamStore) {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let enc = BertEncoder::new(BertConfig::tiny(30), &mut store, &mut rng);
        let clf = PairClassifier::new(&mut store, 16, 16, &mut rng);
        (enc, clf, store)
    }

    #[test]
    fn encode_shapes() {
        let (enc, _, store) = setup();
        let mut g = Graph::new();
        let h = enc.encode(&mut g, &store, &[1, 7, 8, 2]);
        assert_eq!(g.value(h).shape(), (4, 16));
        let p = enc.pooled(&mut g, &store, &[1, 7, 8, 2]);
        assert_eq!(g.value(p).shape(), (1, 16));
        // tanh output is bounded.
        assert!(g.value(p).data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn encode_truncates_to_max_seq() {
        let (enc, _, store) = setup();
        let long: Vec<u32> = (0..100).map(|i| 5 + (i % 20)).collect();
        let mut g = Graph::new();
        let h = enc.encode(&mut g, &store, &long);
        assert_eq!(g.value(h).rows(), enc.config.max_seq);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn encode_rejects_empty() {
        let (enc, _, store) = setup();
        let mut g = Graph::new();
        enc.encode(&mut g, &store, &[]);
    }

    #[test]
    fn pair_input_layout_and_truncation() {
        let corpus = vec![vec!["a", "b", "c"]];
        let vocab = BpeVocab::train(&corpus, 5);
        let a = [10, 11, 12];
        let b = [13, 14];
        let ids = pair_input(&vocab, &a, &b, 32);
        assert_eq!(ids[0], SpecialToken::Cls.id());
        assert_eq!(ids[4], SpecialToken::Sep.id());
        assert_eq!(*ids.last().unwrap(), SpecialToken::Sep.id());
        assert_eq!(ids.len(), 8);
        // Over-long inputs fit max_seq.
        let long: Vec<u32> = vec![9; 50];
        let ids = pair_input(&vocab, &long, &long, 24);
        assert!(ids.len() <= 24);
        // Both sides keep at least part of their content.
        assert!(ids.iter().filter(|&&i| i == SpecialToken::Sep.id()).count() == 2);
    }

    #[test]
    fn pair_input_asymmetric_budget() {
        let corpus = vec![vec!["a"]];
        let vocab = BpeVocab::train(&corpus, 2);
        let short = [7u32];
        let long: Vec<u32> = vec![8; 40];
        let ids = pair_input(&vocab, &short, &long, 20);
        assert!(ids.len() <= 20);
        // The short side survives untruncated.
        assert_eq!(ids[1], 7);
    }

    #[test]
    fn classifier_emits_probability() {
        let (enc, clf, store) = setup();
        let mut g = Graph::new();
        let pooled = enc.pooled(&mut g, &store, &[1, 5, 2, 6, 2]);
        let p = clf.probability(&mut g, &store, pooled);
        let v = g.value(p).item();
        assert!((0.0..=1.0).contains(&v));
    }

    /// End-to-end: the encoder + classifier can overfit a toy
    /// discrimination task (pairs (x, x) positive, (x, y) negative).
    #[test]
    fn bert_learns_toy_pair_task() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let enc = BertEncoder::new(BertConfig::tiny(20), &mut store, &mut rng);
        let clf = PairClassifier::new(&mut store, 16, 16, &mut rng);
        let mut opt = Adam::new(AdamConfig { lr: 5e-3, ..Default::default() });
        // Token 5 pairs with 5, 6 with 6; mismatches are negative.
        let samples: Vec<(Vec<u32>, f32)> = vec![
            (vec![1, 5, 2, 5, 2], 1.0),
            (vec![1, 6, 2, 6, 2], 1.0),
            (vec![1, 5, 2, 6, 2], 0.0),
            (vec![1, 6, 2, 5, 2], 0.0),
        ];
        for _ in 0..60 {
            let mut g = Graph::new();
            let mut losses = Vec::new();
            for (ids, label) in &samples {
                let pooled = enc.pooled(&mut g, &store, ids);
                let z = clf.logit(&mut g, &store, pooled);
                losses.push(g.bce_with_logits(z, *label, 1.0));
            }
            let loss = g.mean_scalars(&losses);
            g.backward(loss, &mut store);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        for (ids, label) in &samples {
            let mut g = Graph::new();
            let pooled = enc.pooled(&mut g, &store, ids);
            let p = clf.probability(&mut g, &store, pooled);
            let v = g.value(p).item();
            assert_eq!(v > 0.5, *label > 0.5, "ids {ids:?} → {v}");
        }
    }
}
