//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a flat tape of nodes, each holding its forward value and
//! the operation that produced it. Because nodes are appended in topological
//! order, `backward` is a single reverse sweep over the tape. Parameters are
//! mounted from a [`ParamStore`]; their gradients are
//! written back to the store at the end of the sweep.
//!
//! Two throughput features keep repeated forwards cheap:
//!
//! * **Arena reuse** — [`Graph::reset`] clears the tape but harvests every
//!   node's tensor buffer into a free pool, so the next forward allocates
//!   from the pool instead of the system allocator. Encoding N attribute
//!   texts through one graph therefore pays for the arena once, not N
//!   times.
//! * **Inference mode** — [`Graph::for_inference`] builds a forward-only
//!   tape that records no provenance (every node is stored as a leaf), so
//!   op payloads (concat part lists, gather index vectors) are dropped
//!   immediately and [`Graph::backward`] is unavailable.
//!
//! Matrix products honor [`Graph::set_threads`]; the row-partitioned
//! parallel kernel is bitwise-identical to the serial one, so thread count
//! never changes results.

use crate::kernels;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Index of a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// The operation that produced a node's value.
#[derive(Debug, Clone)]
enum Op {
    /// Constant leaf — no gradient flows into it.
    Input,
    /// Parameter leaf — gradient is accumulated into the store.
    Param(ParamId),
    /// `A × B` matrix product.
    MatMul(NodeId, NodeId),
    /// `A + B`, same shape.
    Add(NodeId, NodeId),
    /// `A ∘ B` elementwise, same shape.
    Mul(NodeId, NodeId),
    /// `A · c`.
    Scale(NodeId, f32),
    /// `A [n,d] + b [1,d]` broadcast over rows.
    AddRow(NodeId, NodeId),
    /// GELU activation (tanh approximation).
    Gelu(NodeId),
    /// Hyperbolic tangent.
    Tanh(NodeId),
    /// Logistic sigmoid.
    Sigmoid(NodeId),
    /// Row-wise softmax.
    SoftmaxRows(NodeId),
    /// Row-wise layer normalization with learned `γ` and `β` (both `[1,d]`).
    LayerNorm { x: NodeId, gamma: NodeId, beta: NodeId },
    /// Matrix transpose.
    Transpose(NodeId),
    /// Columns `[start, end)` of the input.
    SliceCols(NodeId, usize, usize),
    /// Horizontal concatenation of inputs (equal row counts).
    ConcatCols(Vec<NodeId>),
    /// A single row of the input as a `[1, d]` tensor.
    SliceRow(NodeId, usize),
    /// Rows of a table selected by index (embedding lookup); duplicates
    /// allowed.
    Gather(NodeId, Vec<usize>),
    /// Weighted binary cross-entropy with logits: input is `[1,1]` logit;
    /// stored are the target and the sample weight.
    BceWithLogits { logit: NodeId, target: f32, weight: f32 },
    /// Mean cross-entropy over selected `(row, class)` pairs of a logits
    /// matrix.
    CrossEntropyRows { logits: NodeId, targets: Vec<(usize, usize)> },
    /// Mean of several `[1,1]` scalars.
    MeanScalars(Vec<NodeId>),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// The autograd tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Recycled tensor buffers, refilled by [`reset`](Self::reset).
    pool: Vec<Vec<f32>>,
    /// Forward-only mode: no provenance is recorded and `backward` panics.
    inference: bool,
    /// Worker threads for the row-parallel matmul kernel (0/1 = serial).
    threads: usize,
}

pub(crate) fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044_715 * x * x * x;
    let t = (C * (x + x3)).tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn softmax_row_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

pub(crate) const LN_EPS: f32 = 1e-5;

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a forward-only tape: ops record no provenance (so payload
    /// vectors are dropped immediately) and [`backward`](Self::backward) is
    /// unavailable. Combine with [`reset`](Self::reset) to run many
    /// forwards through one arena.
    pub fn for_inference() -> Self {
        Graph { inference: true, ..Self::default() }
    }

    /// Sets the worker-thread budget for matrix products on this tape.
    /// Results are bitwise-identical for every thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Clears the tape for the next forward pass while retaining the node
    /// arena and recycling every tensor buffer through the internal pool —
    /// repeated forwards stop paying per-forward allocations.
    pub fn reset(&mut self) {
        let Graph { nodes, pool, .. } = self;
        for node in nodes.drain(..) {
            pool.push(node.value.into_data());
            if let Some(g) = node.grad {
                pool.push(g.into_data());
            }
        }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        let op = if self.inference { Op::Input } else { op };
        self.nodes.push(Node { value, grad: None, op });
        NodeId(self.nodes.len() - 1)
    }

    /// A pool-backed tensor of the given shape, zero-filled.
    fn alloc(&mut self, rows: usize, cols: usize) -> Tensor {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(rows * cols, 0.0);
                Tensor::from_vec(rows, cols, buf)
            }
            None => Tensor::zeros(rows, cols),
        }
    }

    /// A pool-backed copy of a node's value.
    fn alloc_copy_of(&mut self, id: NodeId) -> Tensor {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        let src = &self.nodes[id.0].value;
        let (r, c) = src.shape();
        buf.extend_from_slice(src.data());
        Tensor::from_vec(r, c, buf)
    }

    /// A pool-backed copy of an external tensor.
    fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(src.data());
        let (r, c) = src.shape();
        Tensor::from_vec(r, c, buf)
    }

    fn val(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        self.val(id)
    }

    /// The gradient of a node after [`backward`](Self::backward); zeros if
    /// no gradient reached it.
    pub fn grad(&self, id: NodeId) -> Tensor {
        let n = &self.nodes[id.0];
        n.grad.clone().unwrap_or_else(|| {
            let (r, c) = n.value.shape();
            Tensor::zeros(r, c)
        })
    }

    // ----- leaf constructors -----

    /// Mounts a constant input (no gradient).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Mounts a parameter from the store (gradient flows back to it).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let v = self.alloc_copy(store.value(id));
        self.push(v, Op::Param(id))
    }

    // ----- ops -----

    /// Matrix product (cache-blocked; parallel when
    /// [`set_threads`](Self::set_threads) allows).
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, k) = self.val(a).shape();
        let (k2, n) = self.val(b).shape();
        assert_eq!(k, k2, "matmul dimension mismatch");
        lsm_obs::add(lsm_obs::Counter::GemmCalls, 1);
        let mut v = self.alloc(m, n);
        // Exact rounding class: the training path must stay bitwise-stable
        // across kernel generations (see `kernels::RoundingClass`).
        let variant =
            kernels::KernelVariant::select(kernels::RoundingClass::Exact, m, k, n, self.threads);
        variant.run(self.val(a).data(), self.val(b).data(), v.data_mut(), m, k, n, self.threads);
        self.push(v, Op::MatMul(a, b))
    }

    /// Elementwise sum (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(self.val(a).shape(), self.val(b).shape(), "add shape mismatch");
        let mut v = self.alloc_copy_of(a);
        for (x, &y) in v.data_mut().iter_mut().zip(self.val(b).data()) {
            *x += y;
        }
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise product (same shape).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(self.val(a).shape(), self.val(b).shape(), "mul shape mismatch");
        let mut v = self.alloc_copy_of(a);
        for (x, &y) in v.data_mut().iter_mut().zip(self.val(b).data()) {
            *x *= y;
        }
        self.push(v, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, factor: f32) -> NodeId {
        let mut v = self.alloc_copy_of(a);
        for x in v.data_mut() {
            *x *= factor;
        }
        self.push(v, Op::Scale(a, factor))
    }

    /// Adds a `[1, d]` row vector to every row of a `[n, d]` matrix.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (n, d) = self.val(a).shape();
        assert_eq!(self.val(row).shape(), (1, d), "add_row bias shape");
        let mut v = self.alloc_copy_of(a);
        for r in 0..n {
            let bias = self.val(row).row(0);
            for (x, b) in v.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
        self.push(v, Op::AddRow(a, row))
    }

    /// GELU activation.
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let mut v = self.alloc_copy_of(a);
        for x in v.data_mut() {
            *x = gelu_scalar(*x);
        }
        self.push(v, Op::Gelu(a))
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let mut v = self.alloc_copy_of(a);
        for x in v.data_mut() {
            *x = x.tanh();
        }
        self.push(v, Op::Tanh(a))
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let mut v = self.alloc_copy_of(a);
        for x in v.data_mut() {
            *x = sigmoid_scalar(*x);
        }
        self.push(v, Op::Sigmoid(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let mut v = self.alloc_copy_of(a);
        let rows = v.rows();
        for r in 0..rows {
            softmax_row_in_place(v.row_mut(r));
        }
        self.push(v, Op::SoftmaxRows(a))
    }

    /// Row-wise layer normalization with learned scale and shift.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        let (n, d) = self.val(x).shape();
        assert_eq!(self.val(gamma).shape(), (1, d));
        assert_eq!(self.val(beta).shape(), (1, d));
        let mut v = self.alloc(n, d);
        for r in 0..n {
            let row = self.val(x).row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + LN_EPS).sqrt();
            let gamma_row = self.val(gamma).row(0);
            let beta_row = self.val(beta).row(0);
            for c in 0..d {
                let xhat = (row[c] - mean) * inv_std;
                v.set(r, c, gamma_row[c] * xhat + beta_row[c]);
            }
        }
        self.push(v, Op::LayerNorm { x, gamma, beta })
    }

    /// Transpose (SIMD-tiled; bit-identical to the blocked kernel — pure
    /// data movement, so the exact rounding class is unaffected).
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let (n, d) = self.val(a).shape();
        let mut v = self.alloc(d, n);
        kernels::transpose_simd(self.val(a).data(), v.data_mut(), n, d);
        self.push(v, Op::Transpose(a))
    }

    /// Columns `[start, end)`.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, end: usize) -> NodeId {
        let (n, d) = self.val(a).shape();
        assert!(start < end && end <= d, "slice_cols out of range");
        let mut v = self.alloc(n, end - start);
        for r in 0..n {
            v.row_mut(r).copy_from_slice(&self.val(a).row(r)[start..end]);
        }
        self.push(v, Op::SliceCols(a, start, end))
    }

    /// Horizontal concatenation.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols needs at least one input");
        let n = self.val(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.val(p).cols()).sum();
        let mut v = self.alloc(n, total);
        for r in 0..n {
            let mut offset = 0;
            for &p in parts {
                let pc = self.val(p).cols();
                assert_eq!(self.val(p).rows(), n, "concat_cols row mismatch");
                v.row_mut(r)[offset..offset + pc].copy_from_slice(self.val(p).row(r));
                offset += pc;
            }
        }
        self.push(v, Op::ConcatCols(parts.to_vec()))
    }

    /// One row as `[1, d]`.
    pub fn slice_row(&mut self, a: NodeId, row: usize) -> NodeId {
        let d = self.val(a).cols();
        assert!(row < self.val(a).rows(), "slice_row out of range");
        let mut v = self.alloc(1, d);
        v.row_mut(0).copy_from_slice(self.val(a).row(row));
        self.push(v, Op::SliceRow(a, row))
    }

    /// Embedding lookup: stacks `table[indices[i]]` rows.
    pub fn gather(&mut self, table: NodeId, indices: &[usize]) -> NodeId {
        let d = self.val(table).cols();
        let rows = self.val(table).rows();
        let mut v = self.alloc(indices.len(), d);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < rows, "gather index {idx} out of range ({rows} rows)");
            v.row_mut(i).copy_from_slice(self.val(table).row(idx));
        }
        self.push(v, Op::Gather(table, indices.to_vec()))
    }

    /// Weighted binary cross-entropy with logits on a `[1,1]` logit.
    pub fn bce_with_logits(&mut self, logit: NodeId, target: f32, weight: f32) -> NodeId {
        let z = self.val(logit).item();
        // Numerically stable: max(z,0) - z t + ln(1 + e^{-|z|}).
        let loss = weight * (z.max(0.0) - z * target + (-z.abs()).exp().ln_1p());
        self.push(Tensor::scalar(loss), Op::BceWithLogits { logit, target, weight })
    }

    /// Mean cross-entropy over `(row, class)` pairs of a logits matrix.
    pub fn cross_entropy_rows(&mut self, logits: NodeId, targets: &[(usize, usize)]) -> NodeId {
        assert!(!targets.is_empty(), "cross_entropy_rows needs at least one target");
        let l = self.val(logits);
        let mut total = 0.0;
        for &(row, class) in targets {
            let r = l.row(row);
            let max = r.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let logsum: f32 = r.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
            total += logsum - r[class];
        }
        let loss = total / targets.len() as f32;
        self.push(Tensor::scalar(loss), Op::CrossEntropyRows { logits, targets: targets.to_vec() })
    }

    /// Mean of `[1,1]` scalars (batch-loss averaging).
    pub fn mean_scalars(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "mean_scalars needs at least one input");
        let mean = parts.iter().map(|&p| self.val(p).item()).sum::<f32>() / parts.len() as f32;
        self.push(Tensor::scalar(mean), Op::MeanScalars(parts.to_vec()))
    }

    // ----- backward -----

    fn grad_mut(&mut self, id: NodeId) -> &mut Tensor {
        let (r, c) = self.nodes[id.0].value.shape();
        self.nodes[id.0].grad.get_or_insert_with(|| Tensor::zeros(r, c))
    }

    fn add_grad(&mut self, id: NodeId, delta: &Tensor) {
        self.grad_mut(id).add_scaled(delta, 1.0);
    }

    /// Runs reverse-mode differentiation from `loss` (must be `[1,1]`),
    /// accumulating parameter gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics on a forward-only tape ([`Graph::for_inference`]) or a
    /// non-scalar loss.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        let _span = lsm_obs::span("nn.backward");
        assert!(!self.inference, "backward on an inference-mode graph");
        assert_eq!(self.val(loss).shape(), (1, 1), "backward requires a scalar loss");
        *self.grad_mut(loss) = Tensor::scalar(1.0);

        for i in (0..self.nodes.len()).rev() {
            let Some(g) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Input => {}
                Op::Param(pid) => store.accumulate_grad(pid, &g),
                Op::MatMul(a, b) => {
                    let da = g.matmul_threaded(&self.val(b).transpose(), self.threads);
                    let db = self.val(a).transpose().matmul_threaded(&g, self.threads);
                    self.add_grad(a, &da);
                    self.add_grad(b, &db);
                }
                Op::Add(a, b) => {
                    self.add_grad(a, &g);
                    self.add_grad(b, &g);
                }
                Op::Mul(a, b) => {
                    let da = g.mul(self.val(b));
                    let db = g.mul(self.val(a));
                    self.add_grad(a, &da);
                    self.add_grad(b, &db);
                }
                Op::Scale(a, f) => {
                    let da = g.scale(f);
                    self.add_grad(a, &da);
                }
                Op::AddRow(a, row) => {
                    self.add_grad(a, &g);
                    let d = g.cols();
                    let mut drow = Tensor::zeros(1, d);
                    for r in 0..g.rows() {
                        for c in 0..d {
                            drow.set(0, c, drow.get(0, c) + g.get(r, c));
                        }
                    }
                    self.add_grad(row, &drow);
                }
                Op::Gelu(a) => {
                    let mut da = g.clone();
                    for (dg, &x) in da.data_mut().iter_mut().zip(self.val(a).data()) {
                        *dg *= gelu_grad_scalar(x);
                    }
                    self.add_grad(a, &da);
                }
                Op::Tanh(a) => {
                    let y = self.nodes[i].value.clone();
                    let mut da = g.clone();
                    for (dg, &yv) in da.data_mut().iter_mut().zip(y.data()) {
                        *dg *= 1.0 - yv * yv;
                    }
                    self.add_grad(a, &da);
                }
                Op::Sigmoid(a) => {
                    let y = self.nodes[i].value.clone();
                    let mut da = g.clone();
                    for (dg, &yv) in da.data_mut().iter_mut().zip(y.data()) {
                        *dg *= yv * (1.0 - yv);
                    }
                    self.add_grad(a, &da);
                }
                Op::SoftmaxRows(a) => {
                    let y = self.nodes[i].value.clone();
                    let (n, d) = y.shape();
                    let mut da = Tensor::zeros(n, d);
                    for r in 0..n {
                        let yr = y.row(r);
                        let gr = g.row(r);
                        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                        for c in 0..d {
                            da.set(r, c, yr[c] * (gr[c] - dot));
                        }
                    }
                    self.add_grad(a, &da);
                }
                Op::LayerNorm { x, gamma, beta } => {
                    let xv = self.val(x).clone();
                    let gammav = self.val(gamma).clone();
                    let (n, d) = xv.shape();
                    let mut dx = Tensor::zeros(n, d);
                    let mut dgamma = Tensor::zeros(1, d);
                    let mut dbeta = Tensor::zeros(1, d);
                    for r in 0..n {
                        let row = xv.row(r);
                        let mean = row.iter().sum::<f32>() / d as f32;
                        let var = row.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / d as f32;
                        let inv_std = 1.0 / (var + LN_EPS).sqrt();
                        let xhat: Vec<f32> = row.iter().map(|&v| (v - mean) * inv_std).collect();
                        let gr = g.row(r);
                        // dγ and dβ accumulate over rows.
                        for c in 0..d {
                            dgamma.set(0, c, dgamma.get(0, c) + gr[c] * xhat[c]);
                            dbeta.set(0, c, dbeta.get(0, c) + gr[c]);
                        }
                        // dx via the standard LayerNorm backward.
                        let gy: Vec<f32> = (0..d).map(|c| gr[c] * gammav.get(0, c)).collect();
                        let mean_gy = gy.iter().sum::<f32>() / d as f32;
                        let mean_gy_xhat =
                            gy.iter().zip(&xhat).map(|(a, b)| a * b).sum::<f32>() / d as f32;
                        for c in 0..d {
                            let v = (gy[c] - mean_gy - xhat[c] * mean_gy_xhat) * inv_std;
                            dx.set(r, c, v);
                        }
                    }
                    self.add_grad(x, &dx);
                    self.add_grad(gamma, &dgamma);
                    self.add_grad(beta, &dbeta);
                }
                Op::Transpose(a) => {
                    let da = g.transpose();
                    self.add_grad(a, &da);
                }
                Op::SliceCols(a, start, _end) => {
                    let (n, d) = self.val(a).shape();
                    let mut da = Tensor::zeros(n, d);
                    for r in 0..n {
                        for c in 0..g.cols() {
                            da.set(r, start + c, g.get(r, c));
                        }
                    }
                    self.add_grad(a, &da);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let (n, pc) = self.val(p).shape();
                        let mut dp = Tensor::zeros(n, pc);
                        for r in 0..n {
                            for c in 0..pc {
                                dp.set(r, c, g.get(r, offset + c));
                            }
                        }
                        offset += pc;
                        self.add_grad(p, &dp);
                    }
                }
                Op::SliceRow(a, row) => {
                    let (n, d) = self.val(a).shape();
                    let mut da = Tensor::zeros(n, d);
                    for c in 0..d {
                        da.set(row, c, g.get(0, c));
                    }
                    self.add_grad(a, &da);
                }
                Op::Gather(table, indices) => {
                    let (n, d) = self.val(table).shape();
                    let mut dt = Tensor::zeros(n, d);
                    for (i, &idx) in indices.iter().enumerate() {
                        for c in 0..d {
                            dt.set(idx, c, dt.get(idx, c) + g.get(i, c));
                        }
                    }
                    self.add_grad(table, &dt);
                }
                Op::BceWithLogits { logit, target, weight } => {
                    let z = self.val(logit).item();
                    let dz = weight * (sigmoid_scalar(z) - target) * g.item();
                    let dl = Tensor::scalar(dz);
                    self.add_grad(logit, &dl);
                }
                Op::CrossEntropyRows { logits, targets } => {
                    let l = self.val(logits).clone();
                    let (n, v) = l.shape();
                    let mut dl = Tensor::zeros(n, v);
                    let scale = g.item() / targets.len() as f32;
                    for &(row, class) in &targets {
                        let r = l.row(row);
                        let max = r.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let sum: f32 = r.iter().map(|&x| (x - max).exp()).sum();
                        for (c, &logit) in r.iter().enumerate() {
                            let p = ((logit - max).exp()) / sum;
                            let delta = if c == class { 1.0 } else { 0.0 };
                            dl.set(row, c, dl.get(row, c) + (p - delta) * scale);
                        }
                    }
                    self.add_grad(logits, &dl);
                }
                Op::MeanScalars(parts) => {
                    let share = g.item() / parts.len() as f32;
                    let dp = Tensor::scalar(share);
                    for p in parts {
                        self.add_grad(p, &dp);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Finite-difference gradient check: builds the graph twice per
    /// perturbed parameter element and compares numeric vs analytic grads.
    fn grad_check<F>(param_shapes: &[(usize, usize)], build: F, seed: u64)
    where
        F: Fn(&mut Graph, &[NodeId]) -> NodeId,
    {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let ids: Vec<ParamId> = param_shapes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| store.add_xavier(format!("p{i}"), r, c, &mut rng))
            .collect();

        // Analytic gradients.
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = ids.iter().map(|&id| g.param(&store, id)).collect();
        let loss = build(&mut g, &nodes);
        let base_loss = g.value(loss).item();
        g.backward(loss, &mut store);

        // Numeric gradients via central differences.
        let eps = 3e-3f32;
        for (pi, &pid) in ids.iter().enumerate() {
            let len = store.value(pid).len();
            for ei in 0..len {
                let orig = store.value(pid).data()[ei];
                let eval = |store: &ParamStore| {
                    let mut g = Graph::new();
                    let nodes: Vec<NodeId> = ids.iter().map(|&id| g.param(store, id)).collect();
                    let loss = build(&mut g, &nodes);
                    g.value(loss).item()
                };
                let mut s2 = store.clone();
                s2.value_mut(pid).data_mut()[ei] = orig + eps;
                let lp = eval(&s2);
                s2.value_mut(pid).data_mut()[ei] = orig - eps;
                let lm = eval(&s2);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = store.grad(pid).data()[ei];
                let tol = 1e-2 * (1.0 + numeric.abs().max(analytic.abs()));
                assert!(
                    (numeric - analytic).abs() < tol,
                    "param {pi} elem {ei}: numeric {numeric} vs analytic {analytic} \
                     (loss {base_loss})"
                );
            }
        }
    }

    #[test]
    fn gradcheck_matmul_chain() {
        grad_check(
            &[(2, 3), (3, 2)],
            |g, p| {
                let c = g.matmul(p[0], p[1]);
                let t = g.tanh(c);
                // Reduce to scalar: sum via matmul with ones.
                let ones_r = g.input(Tensor::full(1, 2, 1.0));
                let ones_c = g.input(Tensor::full(2, 1, 1.0));
                let s = g.matmul(ones_r, t);
                g.matmul(s, ones_c)
            },
            1,
        );
    }

    #[test]
    fn gradcheck_add_mul_scale() {
        grad_check(
            &[(2, 2), (2, 2)],
            |g, p| {
                let a = g.add(p[0], p[1]);
                let m = g.mul(a, p[0]);
                let s = g.scale(m, 0.5);
                let ones_r = g.input(Tensor::full(1, 2, 1.0));
                let ones_c = g.input(Tensor::full(2, 1, 1.0));
                let t = g.matmul(ones_r, s);
                g.matmul(t, ones_c)
            },
            2,
        );
    }

    #[test]
    fn gradcheck_softmax_and_layernorm() {
        grad_check(
            &[(2, 4), (1, 4), (1, 4)],
            |g, p| {
                let sm = g.softmax_rows(p[0]);
                let ln = g.layer_norm(sm, p[1], p[2]);
                let gl = g.gelu(ln);
                let ones_r = g.input(Tensor::full(1, 2, 1.0));
                let ones_c = g.input(Tensor::full(4, 1, 1.0));
                let t = g.matmul(ones_r, gl);
                g.matmul(t, ones_c)
            },
            3,
        );
    }

    #[test]
    fn gradcheck_attention_shaped() {
        // Q·Kᵀ softmax · V — the exact dataflow of one attention head.
        grad_check(
            &[(3, 4), (3, 4), (3, 4)],
            |g, p| {
                let kt = g.transpose(p[1]);
                let scores = g.matmul(p[0], kt);
                let scaled = g.scale(scores, 0.5);
                let attn = g.softmax_rows(scaled);
                let out = g.matmul(attn, p[2]);
                let ones_r = g.input(Tensor::full(1, 3, 1.0));
                let ones_c = g.input(Tensor::full(4, 1, 1.0));
                let t = g.matmul(ones_r, out);
                g.matmul(t, ones_c)
            },
            4,
        );
    }

    #[test]
    fn gradcheck_slice_concat_gather() {
        grad_check(
            &[(4, 6)],
            |g, p| {
                let left = g.slice_cols(p[0], 0, 3);
                let right = g.slice_cols(p[0], 3, 6);
                let cat = g.concat_cols(&[right, left]);
                let picked = g.gather(cat, &[0, 2, 2, 3]);
                let row = g.slice_row(picked, 1);
                let sg = g.sigmoid(row);
                let ones_c = g.input(Tensor::full(6, 1, 1.0));
                g.matmul(sg, ones_c)
            },
            5,
        );
    }

    #[test]
    fn gradcheck_bce_loss() {
        grad_check(
            &[(1, 4), (4, 1)],
            |g, p| {
                let z = g.matmul(p[0], p[1]);
                g.bce_with_logits(z, 1.0, 2.0)
            },
            6,
        );
        grad_check(
            &[(1, 4), (4, 1)],
            |g, p| {
                let z = g.matmul(p[0], p[1]);
                g.bce_with_logits(z, 0.0, 0.7)
            },
            7,
        );
    }

    #[test]
    fn gradcheck_cross_entropy() {
        grad_check(&[(3, 5)], |g, p| g.cross_entropy_rows(p[0], &[(0, 1), (2, 4)]), 8);
    }

    #[test]
    fn gradcheck_add_row_and_mean() {
        grad_check(
            &[(3, 2), (1, 2)],
            |g, p| {
                let y = g.add_row(p[0], p[1]);
                let r0 = g.slice_row(y, 0);
                let r2 = g.slice_row(y, 2);
                let ones_c = g.input(Tensor::full(2, 1, 1.0));
                let s0 = g.matmul(r0, ones_c);
                let s2 = g.matmul(r2, ones_c);
                let l0 = g.bce_with_logits(s0, 1.0, 1.0);
                let l2 = g.bce_with_logits(s2, 0.0, 1.0);
                g.mean_scalars(&[l0, l2])
            },
            9,
        );
    }

    #[test]
    fn forward_values_are_correct() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(1, 2, vec![0.0, 10.0]));
        let sm = g.softmax_rows(a);
        let v = g.value(sm);
        assert!(v.get(0, 1) > 0.99);
        assert!((v.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);

        let s = g.sigmoid(a);
        assert!((g.value(s).get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(2, 4, vec![1., 2., 3., 4., 10., 20., 30., 40.]));
        let gamma = g.input(Tensor::full(1, 4, 1.0));
        let beta = g.input(Tensor::zeros(1, 4));
        let y = g.layer_norm(x, gamma, beta);
        for r in 0..2 {
            let row = g.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn inputs_receive_no_parameter_grads() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 1, vec![2.0]));
        let mut g = Graph::new();
        let x = g.input(Tensor::scalar(3.0));
        let wp = g.param(&store, w);
        let y = g.mul(x, wp);
        let loss = g.bce_with_logits(y, 1.0, 1.0);
        g.backward(loss, &mut store);
        // d loss / d w = x * (σ(xw) - 1)
        let expected = 3.0 * (super::sigmoid_scalar(6.0) - 1.0);
        assert!((store.grad(w).item() - expected).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut store = ParamStore::new();
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(2, 2));
        g.backward(x, &mut store);
    }

    /// A small forward used by the arena/inference tests below.
    fn demo_forward(g: &mut Graph) -> Tensor {
        let a = g.input(Tensor::from_vec(3, 5, (0..15).map(|i| i as f32 * 0.25 - 1.5).collect()));
        let b = g.input(Tensor::from_vec(5, 4, (0..20).map(|i| 0.7 - i as f32 * 0.11).collect()));
        let c = g.matmul(a, b);
        let t = g.transpose(c);
        let u = g.transpose(t);
        let s = g.softmax_rows(u);
        let gl = g.gelu(s);
        g.value(gl).clone()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn reset_reuses_arena_and_reproduces_values() {
        let mut g = Graph::for_inference();
        let first = demo_forward(&mut g);
        for _ in 0..3 {
            g.reset();
            assert!(g.is_empty());
            let again = demo_forward(&mut g);
            assert_eq!(bits(&first), bits(&again));
        }
    }

    #[test]
    fn inference_forward_matches_training_forward_bitwise() {
        let mut train = Graph::new();
        let mut infer = Graph::for_inference();
        assert_eq!(bits(&demo_forward(&mut train)), bits(&demo_forward(&mut infer)));
    }

    #[test]
    fn threaded_forward_matches_serial_bitwise() {
        let mut serial = Graph::new();
        let mut threaded = Graph::new();
        threaded.set_threads(4);
        assert_eq!(bits(&demo_forward(&mut serial)), bits(&demo_forward(&mut threaded)));
    }

    #[test]
    #[should_panic(expected = "inference-mode")]
    fn backward_panics_in_inference_mode() {
        let mut store = ParamStore::new();
        let mut g = Graph::for_inference();
        let x = g.input(Tensor::scalar(1.0));
        g.backward(x, &mut store);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Property: softmax rows always sum to 1 and stay in (0, 1).
        #[test]
        fn softmax_rows_are_distributions(vals in proptest::collection::vec(-20.0f32..20.0, 8)) {
            let mut g = Graph::new();
            let x = g.input(Tensor::from_vec(2, 4, vals));
            let y = g.softmax_rows(x);
            for r in 0..2 {
                let row = g.value(y).row(r);
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }

        /// Property: the full gradcheck holds for random seeds on a small
        /// MLP-shaped graph.
        #[test]
        fn gradcheck_mlp_random_seeds(seed in 0u64..50) {
            grad_check(
                &[(2, 3), (1, 3), (3, 1)],
                |g, p| {
                    let h = g.gelu(p[0]);
                    let hb = g.add_row(h, p[1]);
                    let z = g.matmul(hb, p[2]);
                    let z0 = g.slice_row(z, 0);
                    let z1 = g.slice_row(z, 1);
                    let l0 = g.bce_with_logits(z0, 1.0, 1.0);
                    let l1 = g.bce_with_logits(z1, 0.0, 1.0);
                    g.mean_scalars(&[l0, l1])
                },
                seed,
            );
        }
    }
}
