//! Cache-blocked, register-tiled f32 GEMM and transpose kernels.
//!
//! The seed implementation of [`Tensor::matmul`](crate::Tensor::matmul) was
//! a scalar ikj triple loop that re-read and re-wrote the output row from
//! memory on every k step (and carried a per-element `a == 0.0` branch).
//! These kernels replace it with the classic GotoBLAS decomposition:
//!
//! * the K dimension is split into `KC`-sized blocks whose B panel is
//!   **packed** into a contiguous buffer laid out in `NR`-wide column
//!   strips, so the innermost loop streams one cache line forward;
//! * rows of A are processed `MR` at a time against `NR`-wide strips of the
//!   packed panel, with the `MR × NR` accumulator tile held in registers
//!   for the whole k block (LLVM auto-vectorizes the `NR`-wide loop);
//! * a row-block-parallel driver ([`matmul_mt`]) splits the M dimension
//!   across scoped threads, each writing a disjoint slice of the output.
//!
//! **Bitwise exactness.** Every kernel here produces output that is
//! bit-for-bit identical to the naive ikj reference ([`matmul_naive`]):
//! for each output element the products `a[i][k] * b[k][j]` are added one
//! at a time in strictly increasing k order (the accumulator tile is
//! loaded from the output at the start of each k block and stored back at
//! the end, so crossing a block boundary does not change the rounding
//! sequence), there are no pairwise/tree reductions, and the parallel
//! driver partitions whole rows, which are computed independently. This is
//! what lets `threads = 1` and `threads = N` produce identical score
//! matrices downstream, and it is enforced by proptests in
//! `crates/nn/tests/kernel_properties.rs`.
//!
//! This module is deliberately dependency-free (std only) so it can be
//! compiled and profiled in isolation.
//!
//! **Rounding classes.** The kernels form two families that are each
//! internally bitwise-reproducible but differ from each other by design:
//!
//! * the *exact* class ([`matmul_naive`], [`matmul_blocked`],
//!   [`matmul_mt`]) accumulates with separate multiply and add (two
//!   roundings per term) and is the paper-faithful default — every result
//!   in the training/scoring pipeline is bit-for-bit stable against it;
//! * the *fma* class ([`matmul_naive_fma`], [`matmul_simd`],
//!   [`matmul_simd_mt`]) accumulates with fused multiply-add (one rounding
//!   per term), which is what lets the microkernels run on the FMA units
//!   at full width. Every fma-class kernel is bit-for-bit identical to the
//!   scalar [`matmul_naive_fma`] reference for any shape, tile choice, and
//!   thread count — the class is deterministic, it just rounds differently
//!   from the exact class (observed drift ~1 ulp per accumulation step).
//!
//! The opt-in SIMD/quantized encoder backends use the fma class; the
//! default graph path never does. [`KernelVariant`] names both families
//! for runtime selection and benchmarking.
//!
//! **Autovectorization contract.** The fma microkernels are safe Rust
//! shaped so LLVM reliably emits wide FMA loops: the hot loop lives in an
//! `#[inline(never)]` function (so surrounding code cannot perturb
//! codegen), iterates over exact-size `[f32; N]` chunk slices (no bounds
//! checks, so no side exits), has a single exit condition (so accumulator
//! stores sink out of the loop instead of spilling every iteration), and
//! keeps the accumulator tile as a by-value local. Breaking any of these
//! drops throughput by 3-15x; `docs/kernels.md` records the measurements.
//! The repo's `.cargo/config.toml` builds with `-C target-cpu=native` —
//! without a native FMA target feature, `f32::mul_add` lowers to the
//! (correct but slow) libm fallback.

/// Micro-tile height: rows of A processed together in the inner kernel.
const MR: usize = 4;
/// Micro-tile width: columns of B processed together (2 × 4-wide SIMD).
const NR: usize = 8;
/// K-dimension block size: one packed B panel spans `KC × n` values.
const KC: usize = 256;
/// M-dimension block size: rows of A per panel reuse.
const MC: usize = 128;

/// Naive ikj reference kernel (term-by-term accumulation in k order).
///
/// `out` must be `m * n` and is **overwritten**. This is the semantic and
/// rounding reference for every optimized kernel in this module; it is kept
/// for tests and benchmarks.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let av = a[i * k + kk];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Packs the `[kc × n]` slice of B starting at row `k0` into `NR`-wide
/// column strips: strip `j` holds rows `k0..k0+kc` of columns
/// `j*NR..j*NR+NR`, row-major within the strip, zero-padded on the right
/// edge. Output layout: `packed[strip][kk][jr]`.
fn pack_b_panel(b: &[f32], n: usize, k0: usize, kc: usize, packed: &mut Vec<f32>) {
    let strips = n.div_ceil(NR);
    packed.clear();
    packed.resize(strips * kc * NR, 0.0);
    for strip in 0..strips {
        let j0 = strip * NR;
        let w = NR.min(n - j0);
        let dst_base = strip * kc * NR;
        for kk in 0..kc {
            let src = (k0 + kk) * n + j0;
            let dst = dst_base + kk * NR;
            packed[dst..dst + w].copy_from_slice(&b[src..src + w]);
            // Right-edge padding stays zero from the resize above.
        }
    }
}

/// The register-tiled inner kernel: accumulates the `MR × NR` tile of
/// `out` at `(i0, j0)` over `kc` packed k steps. The tile is loaded from
/// `out`, accumulated in registers in k order, and stored back — preserving
/// the naive rounding sequence across k blocks.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel(
    a: &[f32],
    k: usize,
    k0: usize,
    kc: usize,
    panel_strip: &[f32],
    out: &mut [f32],
    n: usize,
    i0: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        let base = (i0 + r) * n + j0;
        row.copy_from_slice(&out[base..base + NR]);
    }
    for kk in 0..kc {
        let bvals: &[f32] = &panel_strip[kk * NR..kk * NR + NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + k0 + kk];
            for (c, o) in row.iter_mut().enumerate() {
                *o += av * bvals[c];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        let base = (i0 + r) * n + j0;
        out[base..base + NR].copy_from_slice(row);
    }
}

/// Scalar edge kernel for row/column remainders: identical accumulation
/// order (k innermost, one term at a time).
#[allow(clippy::too_many_arguments)]
fn edge_kernel(
    a: &[f32],
    k: usize,
    k0: usize,
    kc: usize,
    b: &[f32],
    out: &mut [f32],
    n: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) {
    for i in rows {
        for j in cols.clone() {
            let mut acc = out[i * n + j];
            for kk in 0..kc {
                acc += a[i * k + k0 + kk] * b[(k0 + kk) * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Single-threaded blocked GEMM: `out = A × B` with `A [m×k]`, `B [k×n]`,
/// all row-major. `out` is overwritten. Bitwise-identical to
/// [`matmul_naive`].
pub fn matmul_blocked(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    let mut packed = Vec::new();
    matmul_rows_blocked(a, b, out, m, k, n, &mut packed);
}

/// Blocked GEMM over all `m` rows of `a`/`out`, with a caller-provided
/// packing buffer (reused across k blocks and across calls).
#[allow(clippy::too_many_arguments)]
fn matmul_rows_blocked(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    packed: &mut Vec<f32>,
) {
    let rows = 0..m;
    let n_main = n - n % NR;
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_b_panel(b, n, k0, kc, packed);
        let mut i0 = rows.start;
        while i0 < rows.end {
            let mc = MC.min(rows.end - i0);
            let m_main = i0 + (mc - mc % MR);
            let mut i = i0;
            while i < m_main {
                for strip in 0..n_main / NR {
                    let panel_strip = &packed[strip * kc * NR..(strip + 1) * kc * NR];
                    micro_kernel(a, k, k0, kc, panel_strip, out, n, i, strip * NR);
                }
                if n_main < n {
                    edge_kernel(a, k, k0, kc, b, out, n, i..i + MR, n_main..n);
                }
                i += MR;
            }
            if m_main < i0 + mc {
                edge_kernel(a, k, k0, kc, b, out, n, m_main..i0 + mc, 0..n);
            }
            i0 += mc;
        }
        k0 += kc;
    }
}

/// Product of `m * k * n` below which a thread spawn costs more than the
/// parallel work saves (≈2 MFLOP; a spawn is tens of microseconds, which
/// is the whole kernel at that size).
const PAR_MIN_MKN: usize = 1 << 20;

/// Logical cores available to this process (cached; queried once).
fn host_parallelism() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |c| c.get()))
}

/// Packs **all** k blocks of B into `NR`-wide column strips up front so a
/// parallel driver's workers can share one read-only pack instead of each
/// re-packing every panel. Returns the packed buffer plus one
/// `(k0, kc, offset)` descriptor per k block; each block's panel uses the
/// same `[strip][kk][jr]` layout as [`pack_b_panel`].
fn pack_b_all(b: &[f32], k: usize, n: usize) -> (Vec<f32>, Vec<(usize, usize, usize)>) {
    let strips = n.div_ceil(NR);
    let mut blocks = Vec::new();
    let mut k0 = 0;
    let mut offset = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        blocks.push((k0, kc, offset));
        offset += strips * kc * NR;
        k0 += kc;
    }
    let mut packed = vec![0.0f32; offset];
    for &(k0, kc, off) in &blocks {
        for strip in 0..strips {
            let j0 = strip * NR;
            let w = NR.min(n - j0);
            let dst_base = off + strip * kc * NR;
            for kk in 0..kc {
                let src = (k0 + kk) * n + j0;
                let dst = dst_base + kk * NR;
                packed[dst..dst + w].copy_from_slice(&b[src..src + w]);
            }
        }
    }
    (packed, blocks)
}

/// Blocked GEMM over a worker's row range against a shared pre-packed B
/// (from [`pack_b_all`]). Same traversal and accumulation order as
/// [`matmul_rows_blocked`] — only the panel source differs.
#[allow(clippy::too_many_arguments)]
fn matmul_rows_packed(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    packed: &[f32],
    blocks: &[(usize, usize, usize)],
) {
    let n_main = n - n % NR;
    for &(k0, kc, off) in blocks {
        let panel = &packed[off..off + n.div_ceil(NR) * kc * NR];
        let mut i0 = 0;
        while i0 < m {
            let mc = MC.min(m - i0);
            let m_main = i0 + (mc - mc % MR);
            let mut i = i0;
            while i < m_main {
                for strip in 0..n_main / NR {
                    let panel_strip = &panel[strip * kc * NR..(strip + 1) * kc * NR];
                    micro_kernel(a, k, k0, kc, panel_strip, out, n, i, strip * NR);
                }
                if n_main < n {
                    edge_kernel(a, k, k0, kc, b, out, n, i..i + MR, n_main..n);
                }
                i += MR;
            }
            if m_main < i0 + mc {
                edge_kernel(a, k, k0, kc, b, out, n, m_main..i0 + mc, 0..n);
            }
            i0 += mc;
        }
    }
}

/// Row-block-parallel blocked GEMM: splits output rows into contiguous
/// chunks computed on scoped threads. B is packed **once** and shared
/// read-only by every worker (workers used to each re-pack every panel,
/// which made multithreading lose to single-thread at every benchmarked
/// shape). `threads` is a cap: the effective worker count is clamped to
/// the host's available parallelism, and small shapes (or an effective
/// count of 1) fall back to the single-threaded kernel. Bitwise-identical
/// to [`matmul_naive`] for any thread count.
pub fn matmul_mt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let threads = threads.max(1).min(m.max(1)).min(host_parallelism());
    if threads <= 1 || m * k * n < PAR_MIN_MKN {
        matmul_blocked(a, b, out, m, k, n);
        return;
    }
    matmul_mt_unclamped(a, b, out, m, k, n, threads);
}

/// The scoped-thread driver behind [`matmul_mt`], with **exactly** the
/// requested worker count — no host clamp, no FLOP cutoff. Public so tests
/// and benchmarks can exercise the parallel machinery on hosts with fewer
/// cores than workers; production code should call [`matmul_mt`].
pub fn matmul_mt_unclamped(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let threads = threads.max(1).min(m.max(1));
    if threads <= 1 {
        matmul_blocked(a, b, out, m, k, n);
        return;
    }
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    let (packed, blocks) = pack_b_all(b, k, n);
    // Chunk boundaries aligned to MR so every worker runs the fast path.
    let rows_per = m.div_ceil(threads).div_ceil(MR) * MR;
    let (packed, blocks) = (&packed, &blocks);
    std::thread::scope(|scope| {
        let mut rest = &mut out[..];
        let mut row0 = 0;
        while row0 < m {
            let rows = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let r0 = row0;
            scope.spawn(move || {
                // Each worker sees its chunk as a standalone `rows × n`
                // output over the matching rows of A, against the shared
                // read-only pack.
                let a_rows = &a[r0 * k..(r0 + rows) * k];
                matmul_rows_packed(a_rows, b, chunk, rows, k, n, packed, blocks);
            });
            row0 += rows;
        }
    });
}

/// Blocked out-of-place transpose: `out[j][i] = a[i][j]` with `a [m×n]`
/// row-major, processed in 32×32 tiles so both matrices stream through
/// cache line by line.
pub fn transpose_blocked(a: &[f32], out: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    const TILE: usize = 32;
    let mut i0 = 0;
    while i0 < m {
        let ih = TILE.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let jw = TILE.min(n - j0);
            for i in i0..i0 + ih {
                for j in j0..j0 + jw {
                    out[j * m + i] = a[i * n + j];
                }
            }
            j0 += TILE;
        }
        i0 += TILE;
    }
}

// ---------------------------------------------------------------------------
// The fma rounding class: scalar reference + SIMD microkernels.
// ---------------------------------------------------------------------------

/// Scalar ikj reference for the **fma rounding class**: identical loop
/// structure to [`matmul_naive`], but each term is accumulated with
/// `f32::mul_add` (one rounding instead of two). Every SIMD kernel below
/// is bit-for-bit identical to this reference for any shape and thread
/// count.
pub fn matmul_naive_fma(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let av = a[i * k + kk];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

/// Wide fma micro-tile: rows per tile (12 × 256-bit accumulator lanes).
const WMR: usize = 6;
/// Wide fma micro-tile: columns per tile.
const WNR: usize = 32;
/// Narrow fma micro-tile rows — used when `n ≤ NARROW_N_MAX`, where the
/// wide tile wastes lanes on padding.
const TMR: usize = 4;
/// Narrow fma micro-tile columns (covers the encoder's d=48 widths in one
/// strip).
const TNR: usize = 48;
/// K block size for the SIMD drivers.
const SKC: usize = 256;
/// Output widths up to this use the narrow 4×48 tile (measured faster on
/// `n ≤ 64` shapes; see `docs/kernels.md`).
const NARROW_N_MAX: usize = 64;

/// The fma inner loop: `acc[r][c] = fma(a[r], b[c], acc[r][c])` over all
/// packed k steps, in increasing k order per output element.
///
/// Codegen contract (measured, see module docs): `#[inline(never)]`,
/// exact-size chunk slices, single exit, by-value accumulator. `av` and
/// `bv` must have equal length (the packed k depth).
#[inline(never)]
fn fma_micro<const MRX: usize, const NRX: usize>(
    av: &[[f32; MRX]],
    bv: &[[f32; NRX]],
    mut acc: [[f32; NRX]; MRX],
) -> [[f32; NRX]; MRX] {
    debug_assert_eq!(av.len(), bv.len());
    for (a, b) in av.iter().zip(bv) {
        for r in 0..MRX {
            let ar = a[r];
            for c in 0..NRX {
                acc[r][c] = ar.mul_add(b[c], acc[r][c]);
            }
        }
    }
    acc
}

/// SIMD GEMM driver for one micro-tile shape over a row range of A.
///
/// B is packed per k block into `NRX`-wide zero-padded strips; the A rows
/// for each `MRX`-high strip are packed just-in-time into `[kc][MRX]`
/// layout (zero-padded at the bottom edge, so the tile loop has no edge
/// cases — padded lanes compute `fma(0, b, acc) = acc` and are never
/// stored). The first k block initializes accumulators to zero (no output
/// pre-fill pass); later blocks reload the tile from `out`, preserving
/// per-element k order across blocks.
fn matmul_simd_rows<const MRX: usize, const NRX: usize>(
    a: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    packed: &[f32],
    blocks: &[(usize, usize, usize)],
) {
    let strips = n.div_ceil(NRX);
    let rstrips = m.div_ceil(MRX);
    let mut pa: Vec<f32> = Vec::new();
    for &(k0, kc, off) in blocks {
        let (ball, _) = packed[off..off + strips * kc * NRX].as_chunks::<NRX>();
        for rs in 0..rstrips {
            let i0 = rs * MRX;
            let h = MRX.min(m - i0);
            pa.clear();
            pa.resize(kc * MRX, 0.0);
            for r in 0..h {
                let row = &a[(i0 + r) * k + k0..(i0 + r) * k + k0 + kc];
                for (kk, &v) in row.iter().enumerate() {
                    pa[kk * MRX + r] = v;
                }
            }
            let (achunks, _) = pa.as_chunks::<MRX>();
            for (s, bchunks) in ball.chunks_exact(kc).enumerate() {
                let j0 = s * NRX;
                let w = NRX.min(n - j0);
                let mut acc = [[0.0f32; NRX]; MRX];
                if k0 > 0 {
                    for (r, row) in acc.iter_mut().enumerate().take(h) {
                        let base = (i0 + r) * n + j0;
                        row[..w].copy_from_slice(&out[base..base + w]);
                    }
                }
                acc = fma_micro(achunks, bchunks, acc);
                for (r, row) in acc.iter().enumerate().take(h) {
                    let base = (i0 + r) * n + j0;
                    out[base..base + w].copy_from_slice(&row[..w]);
                }
            }
        }
    }
}

/// Packs all k blocks of B into `NRX`-wide zero-padded strips for the SIMD
/// drivers; layout `[block][strip][kk][jr]` with `(k0, kc, offset)`
/// descriptors.
fn pack_b_simd<const NRX: usize>(
    b: &[f32],
    k: usize,
    n: usize,
) -> (Vec<f32>, Vec<(usize, usize, usize)>) {
    let strips = n.div_ceil(NRX);
    let mut blocks = Vec::new();
    let (mut k0, mut offset) = (0, 0);
    while k0 < k {
        let kc = SKC.min(k - k0);
        blocks.push((k0, kc, offset));
        offset += strips * kc * NRX;
        k0 += kc;
    }
    let mut packed = vec![0.0f32; offset];
    for &(k0, kc, off) in &blocks {
        for s in 0..strips {
            let j0 = s * NRX;
            let w = NRX.min(n - j0);
            for kk in 0..kc {
                let src = (k0 + kk) * n + j0;
                let dst = off + s * kc * NRX + kk * NRX;
                packed[dst..dst + w].copy_from_slice(&b[src..src + w]);
            }
        }
    }
    (packed, blocks)
}

fn matmul_simd_tile<const MRX: usize, const NRX: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let (packed, blocks) = pack_b_simd::<NRX>(b, k, n);
    matmul_simd_rows::<MRX, NRX>(a, out, m, k, n, &packed, &blocks);
}

/// Single-threaded SIMD (fma-class) GEMM. Picks the narrow 4×48 tile for
/// `n ≤ 64` outputs and the wide 6×32 tile otherwise; both produce
/// bit-identical results (each output element is the same k-ordered fma
/// chain regardless of tile), so the shape heuristic is a pure performance
/// choice. Bitwise-identical to [`matmul_naive_fma`].
pub fn matmul_simd(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if n <= NARROW_N_MAX {
        matmul_simd_tile::<TMR, TNR>(a, b, out, m, k, n);
    } else {
        matmul_simd_tile::<WMR, WNR>(a, b, out, m, k, n);
    }
}

fn matmul_simd_mt_tile<const MRX: usize, const NRX: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let (packed, blocks) = pack_b_simd::<NRX>(b, k, n);
    // Chunk boundaries aligned to the tile height so only the last worker
    // can see a partial bottom strip.
    let rows_per = m.div_ceil(threads).div_ceil(MRX) * MRX;
    let (packed, blocks) = (&packed, &blocks);
    std::thread::scope(|scope| {
        let mut rest = &mut out[..];
        let mut row0 = 0;
        while row0 < m {
            let rows = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let r0 = row0;
            scope.spawn(move || {
                let a_rows = &a[r0 * k..(r0 + rows) * k];
                matmul_simd_rows::<MRX, NRX>(a_rows, chunk, rows, k, n, packed, blocks);
            });
            row0 += rows;
        }
    });
}

/// Row-partitioned parallel SIMD GEMM sharing one read-only B pack across
/// workers. `threads` is a cap (clamped to host parallelism); small shapes
/// fall back to [`matmul_simd`]. Bitwise-identical to
/// [`matmul_naive_fma`] at any thread count.
pub fn matmul_simd_mt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let threads = threads.max(1).min(m.max(1)).min(host_parallelism());
    if threads <= 1 || m * k * n < PAR_MIN_MKN {
        matmul_simd(a, b, out, m, k, n);
        return;
    }
    matmul_simd_mt_unclamped(a, b, out, m, k, n, threads);
}

/// The scoped-thread SIMD driver with exactly the requested worker count —
/// no host clamp, no FLOP cutoff. For tests and benchmarks; production
/// code should call [`matmul_simd_mt`].
pub fn matmul_simd_mt_unclamped(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let threads = threads.max(1).min(m.max(1));
    if threads <= 1 {
        matmul_simd(a, b, out, m, k, n);
        return;
    }
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if n <= NARROW_N_MAX {
        matmul_simd_mt_tile::<TMR, TNR>(a, b, out, m, k, n, threads);
    } else {
        matmul_simd_mt_tile::<WMR, WNR>(a, b, out, m, k, n, threads);
    }
}

// ---------------------------------------------------------------------------
// Runtime kernel selection.
// ---------------------------------------------------------------------------

/// Which rounding family a kernel belongs to (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundingClass {
    /// Separate multiply + add per term; the paper-faithful default.
    Exact,
    /// Fused multiply-add per term; the opt-in SIMD/quantized class.
    Fma,
}

/// A named GEMM implementation, selectable at runtime. `Naive*` variants
/// are rounding references kept for tests and benchmarks; production
/// call sites go through [`KernelVariant::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Scalar ikj reference (exact class).
    Naive,
    /// Cache-blocked register-tiled kernel (exact class).
    Blocked,
    /// Row-parallel blocked kernel with shared B pack (exact class).
    BlockedMt,
    /// Scalar ikj fma reference (fma class).
    NaiveFma,
    /// Autovectorized fma microkernel (fma class).
    Simd,
    /// Row-parallel SIMD kernel with shared B pack (fma class).
    SimdMt,
}

impl KernelVariant {
    /// Stable snake-case name (used in benchmark tables and smoke logs).
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Naive => "naive",
            KernelVariant::Blocked => "blocked",
            KernelVariant::BlockedMt => "blocked-mt",
            KernelVariant::NaiveFma => "naive-fma",
            KernelVariant::Simd => "simd",
            KernelVariant::SimdMt => "simd-mt",
        }
    }

    /// The rounding family this variant belongs to.
    pub fn class(self) -> RoundingClass {
        match self {
            KernelVariant::Naive | KernelVariant::Blocked | KernelVariant::BlockedMt => {
                RoundingClass::Exact
            }
            KernelVariant::NaiveFma | KernelVariant::Simd | KernelVariant::SimdMt => {
                RoundingClass::Fma
            }
        }
    }

    /// Picks the production kernel for a shape within a rounding class:
    /// the blocked/SIMD kernel single-threaded, or its row-parallel driver
    /// when a thread cap > 1 is requested and the shape is large enough to
    /// amortize spawning (the parallel drivers re-check and fall back, so
    /// this is a labeling choice, not a correctness one).
    pub fn select(class: RoundingClass, m: usize, k: usize, n: usize, threads: usize) -> Self {
        lsm_obs::add(lsm_obs::Counter::KernelVariantSelected, 1);
        let parallel = threads > 1 && m * k * n >= PAR_MIN_MKN && host_parallelism() > 1;
        match (class, parallel) {
            (RoundingClass::Exact, false) => KernelVariant::Blocked,
            (RoundingClass::Exact, true) => KernelVariant::BlockedMt,
            (RoundingClass::Fma, false) => KernelVariant::Simd,
            (RoundingClass::Fma, true) => KernelVariant::SimdMt,
        }
    }

    /// Runs this variant. `threads` is ignored by single-threaded
    /// variants.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        threads: usize,
    ) {
        match self {
            KernelVariant::Naive => matmul_naive(a, b, out, m, k, n),
            KernelVariant::Blocked => matmul_blocked(a, b, out, m, k, n),
            KernelVariant::BlockedMt => matmul_mt(a, b, out, m, k, n, threads),
            KernelVariant::NaiveFma => matmul_naive_fma(a, b, out, m, k, n),
            KernelVariant::Simd => matmul_simd(a, b, out, m, k, n),
            KernelVariant::SimdMt => matmul_simd_mt(a, b, out, m, k, n, threads),
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-reduced vector primitives for the fast encoder path.
// ---------------------------------------------------------------------------

/// Number of parallel accumulator lanes in the reductions below (one
/// 256-bit vector of f32).
const LANES: usize = 8;

/// Lane-parallel sum: eight fixed accumulator lanes combined in a fixed
/// pairwise tree, remainder added sequentially. Deterministic for a given
/// input, but rounds differently from a sequential `iter().sum()` — the
/// fma-class caveat from the module docs applies.
pub fn reduce_sum_lanes(x: &[f32]) -> f32 {
    let (chunks, tail) = x.as_chunks::<LANES>();
    let mut lanes = [0.0f32; LANES];
    for c in chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l += v;
        }
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for &v in tail {
        acc += v;
    }
    acc
}

/// Lane-parallel dot product with fma accumulation (same determinism
/// contract as [`reduce_sum_lanes`]).
pub fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let (ac, at) = a.as_chunks::<LANES>();
    let (bc, bt) = b.as_chunks::<LANES>();
    let mut lanes = [0.0f32; LANES];
    for (ca, cb) in ac.iter().zip(bc) {
        for r in 0..LANES {
            lanes[r] = ca[r].mul_add(cb[r], lanes[r]);
        }
    }
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for (&va, &vb) in at.iter().zip(bt) {
        acc = va.mul_add(vb, acc);
    }
    acc
}

/// Maximum over a non-empty slice (lane-split; `max` is order-insensitive
/// for non-NaN inputs, so this matches the sequential fold bitwise).
pub fn reduce_max(x: &[f32]) -> f32 {
    debug_assert!(!x.is_empty());
    let (chunks, tail) = x.as_chunks::<LANES>();
    let mut m = f32::NEG_INFINITY;
    if !chunks.is_empty() {
        let mut lanes = [f32::NEG_INFINITY; LANES];
        for c in chunks {
            for (l, &v) in lanes.iter_mut().zip(c) {
                *l = l.max(v);
            }
        }
        for &l in &lanes {
            m = m.max(l);
        }
    }
    for &v in tail {
        m = m.max(v);
    }
    m
}

/// `acc[i] = fma(s, x[i], acc[i])` — the stride-1 axpy used by the
/// attention value accumulation in the fast path.
pub fn axpy(acc: &mut [f32], x: &[f32], s: f32) {
    debug_assert_eq!(acc.len(), x.len());
    for (o, &v) in acc.iter_mut().zip(x) {
        *o = s.mul_add(v, *o);
    }
}

/// A pre-packed B operand for repeated [`matmul_simd`]-class GEMMs.
///
/// [`matmul_simd`] re-packs B into tile strips on every call; for a frozen
/// weight matrix multiplied against many activation batches (the fast
/// encoder path) that packing is pure overhead. `PackedGemm::pack` runs
/// the identical packing once, and [`PackedGemm::run`] is bitwise-equal to
/// `matmul_simd(a, b, out, m, k, n)` for every shape — same tiles, same
/// k-ordered fma chains, just without the per-call pack.
#[derive(Debug, Clone)]
pub struct PackedGemm {
    packed: Vec<f32>,
    blocks: Vec<(usize, usize, usize)>,
    k: usize,
    n: usize,
    narrow: bool,
}

impl PackedGemm {
    /// Packs `b` (`[k][n]` row-major) with the same strip layout
    /// [`matmul_simd`] would choose for this `n`.
    pub fn pack(b: &[f32], k: usize, n: usize) -> Self {
        debug_assert_eq!(b.len(), k * n);
        let narrow = n <= NARROW_N_MAX;
        let (packed, blocks) =
            if narrow { pack_b_simd::<TNR>(b, k, n) } else { pack_b_simd::<WNR>(b, k, n) };
        PackedGemm { packed, blocks, k, n, narrow }
    }

    /// Inner (reduction) dimension of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width of the packed operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `out = a × B` for `a` of shape `[m][k]`. Bitwise-identical to
    /// [`matmul_simd`] with the original `b`.
    pub fn run(&self, a: &[f32], out: &mut [f32], m: usize) {
        debug_assert_eq!(a.len(), m * self.k);
        debug_assert_eq!(out.len(), m * self.n);
        if self.k == 0 {
            out.fill(0.0);
            return;
        }
        if self.narrow {
            matmul_simd_rows::<TMR, TNR>(a, out, m, self.k, self.n, &self.packed, &self.blocks);
        } else {
            matmul_simd_rows::<WMR, WNR>(a, out, m, self.k, self.n, &self.packed, &self.blocks);
        }
    }
}

/// Broadcast k-outer fma GEMM for small shapes (attention-head blocks).
///
/// For each output row the k dimension is walked in ascending order with
/// one fma per term, so every output element sees the exact chain
/// [`matmul_naive_fma`] computes — this is a *performance* variant of the
/// fma rounding class, not a new class. It skips packing entirely and
/// vectorizes over the `n`-wide inner loop, which wins over the tiled
/// kernels when `m·k·n` is tiny and `n` is a fraction of a tile strip
/// (head-sized GEMMs: n = seq or n = d/heads).
pub fn matmul_kouter(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for r in 0..m {
        let or = &mut out[r * n..(r + 1) * n];
        for (p, &av) in a[r * k..(r + 1) * k].iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in or.iter_mut().zip(brow) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

/// Fixed-width k-outer tile: `b` and `out` rows are exactly `NP` floats
/// (zero-padded past the logical width), so the whole accumulator row is
/// `NP/16` vector registers for the entire k walk — one broadcast-fma per
/// term with no load/store of partial sums. `a` rows are read at `astride`
/// (first `k` entries), letting a padded output of one call feed the `a`
/// side of the next.
#[inline(never)]
fn kouter_fixed<const NP: usize>(
    a: &[f32],
    astride: usize,
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
) {
    debug_assert!(m == 0 || a.len() >= (m - 1) * astride + k);
    debug_assert_eq!(b.len(), k * NP);
    debug_assert_eq!(out.len(), m * NP);
    let (bv, _) = b.as_chunks::<NP>();
    for r in 0..m {
        let mut acc = [0.0f32; NP];
        for (p, brow) in bv.iter().enumerate().take(k) {
            let av = a[r * astride + p];
            for c in 0..NP {
                acc[c] = av.mul_add(brow[c], acc[c]);
            }
        }
        out[r * NP..(r + 1) * NP].copy_from_slice(&acc);
    }
}

/// The padded row stride the register-tile k-outer kernel wants for a
/// logical width `n`. Widths ≤ 64 snap to a vector-register tier; wider
/// shapes return `n` itself, which routes the padded entry point to the
/// memory-accumulator fallback.
pub fn kouter_pad(n: usize) -> usize {
    match n {
        0..=16 => 16,
        17..=32 => 32,
        33..=48 => 48,
        49..=64 => 64,
        _ => n,
    }
}

/// [`matmul_kouter`] over padded rows: `b` and `out` row stride is
/// `np = kouter_pad(n)` with zero padding beyond the logical width, and
/// `a` rows are read at `astride ≥ k`. Per logical output element this
/// computes the exact ascending-k fma chain of [`matmul_naive_fma`] (the
/// zero pad lanes add `av·0` terms that never touch real lanes), so it is
/// the same rounding class as [`matmul_kouter`] — only the accumulator
/// residency changes.
pub fn matmul_kouter_padded(
    a: &[f32],
    astride: usize,
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    np: usize,
) {
    match np {
        16 => kouter_fixed::<16>(a, astride, b, out, m, k),
        32 => kouter_fixed::<32>(a, astride, b, out, m, k),
        48 => kouter_fixed::<48>(a, astride, b, out, m, k),
        64 => kouter_fixed::<64>(a, astride, b, out, m, k),
        _ => {
            out.fill(0.0);
            for r in 0..m {
                let or = &mut out[r * np..(r + 1) * np];
                for p in 0..k {
                    let av = a[r * astride + p];
                    let brow = &b[p * np..(p + 1) * np];
                    for (o, &bv) in or.iter_mut().zip(brow) {
                        *o = av.mul_add(bv, *o);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-parallel transcendental microkernels (fast-path softmax / gelu).
// ---------------------------------------------------------------------------

/// Upper input clamp for [`exp_lanes`]: keeps the scale exponent `n ≤ 127`
/// so the 2ⁿ bit-construction below stays finite.
const EXP_MAX_IN: f32 = 88.0;
/// Lower input clamp: below this `exp` underflows f32 anyway.
const EXP_MIN_IN: f32 = -87.0;

/// One element of the polynomial exp. Cephes-style: split `x = n·ln2 + r`
/// with `|r| ≤ ln2/2`, evaluate a degree-5 minimax polynomial for
/// `exp(r)`, and scale by 2ⁿ through direct exponent-field construction.
/// Every step is an elementwise float/int op with no data-dependent
/// branches, so the loop over a slice autovectorizes and the result is a
/// pure function of the input bits (deterministic everywhere). Max
/// relative error vs `f32::exp` ≈ 2 ulp.
#[inline(always)]
fn exp_elem(x: f32) -> f32 {
    let x = x.clamp(EXP_MIN_IN, EXP_MAX_IN);
    // Round-to-nearest via the 1.5·2²³ magic-add trick — `f32::round`
    // does not reliably vectorize, float add/sub does.
    const MAGIC: f32 = 12_582_912.0;
    const MAGIC_BITS: u32 = 0x4B40_0000;
    const _: () = assert!(MAGIC.to_bits() == MAGIC_BITS);
    let nm = x.mul_add(std::f32::consts::LOG2_E, MAGIC);
    let nf = nm - MAGIC;
    // r = x - n·ln2 in two pieces, preserving low bits of the reduction.
    const LN2_HI: f32 = 0.693_145_75;
    const LN2_LO: f32 = 1.428_606_8e-6;
    let r = (-nf).mul_add(LN2_LO, (-nf).mul_add(LN2_HI, x));
    let p = 1.987_569_1e-4_f32;
    let p = p.mul_add(r, 1.398_199_9e-3);
    let p = p.mul_add(r, 8.333_452e-3);
    let p = p.mul_add(r, 4.166_579_6e-2);
    let p = p.mul_add(r, 1.666_666_5e-1);
    let p = p.mul_add(r, 0.5);
    let e = (p * r * r + r) + 1.0;
    // 2ⁿ: n ∈ [-126, 127] after the input clamp, so the biased exponent
    // field (n+127) << 23 is always a finite normal number. n is read
    // straight out of the magic-add mantissa bits (`nm = MAGIC + n`
    // exactly, so the bias subtracts away) — bit-identical to `nf as i32`
    // but pure integer ops, where the saturating float→int `as` cast
    // lowers to scalar `llvm.fptosi.sat` converts that de-vectorize the
    // whole surrounding loop.
    debug_assert!((-200.0..200.0).contains(&nf), "exp_elem clamp keeps n in [-126, 127]");
    // lsm-lint: allow(R10-cast-discipline, exact bias removal; nm == MAGIC + n with n in [-126, 127] after the input clamp, so no over/underflow)
    let n = nm.to_bits().wrapping_sub(MAGIC_BITS) as i32;
    let scale = f32::from_bits(((n + 127) as u32) << 23);
    e * scale
}

/// `tanh` via the exp core: `tanh(y) = 1 − 2/(exp(2y) + 1)`. The clamp in
/// [`exp_elem`] makes the extremes exact (±1). Max absolute error ≈ 1e-7.
#[inline(always)]
fn tanh_elem(y: f32) -> f32 {
    let e = exp_elem(2.0 * y);
    1.0 - 2.0 / (e + 1.0)
}

/// In-place lane-parallel `exp` over a slice.
///
/// This is the **fma/quantized-class** softmax exponential for the opt-in
/// fast encoder backends: deterministic (pure function of input bits, no
/// reductions) but *not* bit-identical to libm `f32::exp`, so the
/// paper-faithful graph path must never call it. ~8x faster than the libm
/// loop because the polynomial vectorizes.
#[inline(never)]
pub fn exp_lanes(xs: &mut [f32]) {
    for v in xs.iter_mut() {
        *v = exp_elem(*v);
    }
}

/// Fused row softmax over an `[rows][stride]` matrix with active width
/// `n`: per row — max, `exp(x − max)` through the polynomial core, a
/// deterministic lane sum, then normalize. One outlined call per matrix
/// instead of per row, which matters when rows are attention-score width
/// (a vector and a half). Each row is the contiguous `n`-wide prefix of
/// its stride slot; pad entries beyond `n` are never read or written.
/// (A fixed-padded-width variant that processed whole stride slots was
/// tried and lost ~2x: the pad lanes are pure extra exp work, and the
/// const-width max reduction scalarized under SLP.) Same class /
/// determinism contract as [`exp_lanes`]: opt-in fast backends only.
#[inline(never)]
pub fn softmax_rows(x: &mut [f32], rows: usize, n: usize, stride: usize) {
    debug_assert!(n <= stride && n > 0);
    debug_assert!(x.len() >= rows * stride + n - stride || rows == 0);
    for r in 0..rows {
        let row = &mut x[r * stride..r * stride + n];
        let mx = reduce_max(row);
        for v in row.iter_mut() {
            *v = exp_elem(*v - mx);
        }
        let inv = 1.0 / reduce_sum_lanes(row);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// In-place lane-parallel tanh-form GELU (same constants as the graph
/// path's scalar gelu) over a slice. Same class/determinism contract as
/// [`exp_lanes`]: deterministic everywhere, ≈1e-7 absolute error vs the
/// libm-backed scalar, opt-in backends only.
#[inline(never)]
pub fn gelu_lanes(xs: &mut [f32]) {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    for v in xs.iter_mut() {
        let x = *v;
        let y = C * (x + 0.044_715 * x * x * x);
        *v = 0.5 * x * (1.0 + tanh_elem(y));
    }
}

/// Out-of-place transpose with an 8×8 fully-unrolled micro-tile inside the
/// 32×32 cache tile, giving LLVM straight-line chunked loads/stores to
/// shuffle-vectorize. Pure data movement — bit-identical to
/// [`transpose_blocked`] (there is only one correct answer), so it is a
/// drop-in performance variant, not a new rounding class.
pub fn transpose_simd(a: &[f32], out: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    const TILE: usize = 32;
    const MICRO: usize = 8;
    let m_main = m - m % MICRO;
    let n_main = n - n % MICRO;
    let mut i0 = 0;
    while i0 < m_main {
        let ih = TILE.min(m_main - i0);
        let mut j0 = 0;
        while j0 < n_main {
            let jw = TILE.min(n_main - j0);
            let mut i = i0;
            while i < i0 + ih {
                let mut j = j0;
                while j < j0 + jw {
                    // 8×8 micro-transpose: read eight row chunks, write
                    // eight column chunks.
                    let mut stage = [[0.0f32; MICRO]; MICRO];
                    for (r, row) in stage.iter_mut().enumerate() {
                        let base = (i + r) * n + j;
                        row.copy_from_slice(&a[base..base + MICRO]);
                    }
                    for c in 0..MICRO {
                        let base = (j + c) * m + i;
                        let dst = &mut out[base..base + MICRO];
                        for (r, d) in dst.iter_mut().enumerate() {
                            *d = stage[r][c];
                        }
                    }
                    j += MICRO;
                }
                i += MICRO;
            }
            j0 += jw;
        }
        i0 += ih;
    }
    // Row and column remainders: scalar.
    for i in 0..m_main {
        for j in n_main..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    for i in m_main..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Deterministic xorshift values in [-1, 1) — keeps this module's tests
    /// dependency-free.
    pub(crate) fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            })
            .collect()
    }

    fn check_shape(m: usize, k: usize, n: usize, seed: u64) {
        let a = pseudo_data(m * k, seed);
        let b = pseudo_data(k * n, seed ^ 0xabcd);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0; m * n];
        matmul_blocked(&a, &b, &mut got, m, k, n);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "blocked != naive at {m}x{k}x{n}"
        );
        for threads in [2, 3, 4] {
            let mut got_mt = vec![0.0; m * n];
            matmul_mt(&a, &b, &mut got_mt, m, k, n, threads);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got_mt.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "mt({threads}) != naive at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_shapes() {
        // Tile multiples, remainders on every dimension, degenerate edges.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (1, 300, 5),
            (5, 1, 9),
            (4, 8, 8),
            (8, 16, 8),
            (3, 5, 7),
            (13, 17, 11),
            (48, 48, 48),
            (33, 257, 31),
            (65, 64, 63),
        ] {
            check_shape(m, k, n, (m * 31 + k * 7 + n) as u64);
        }
    }

    #[test]
    fn mt_covers_uneven_row_splits() {
        // m not divisible by threads or MR; force the parallel path by
        // exceeding the FLOP cutoff via k*n.
        let (m, k, n) = (37, 256, 128);
        let a = pseudo_data(m * k, 3);
        let b = pseudo_data(k * n, 4);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        for threads in [2, 5, 8, 64] {
            let mut got = vec![0.0; m * n];
            matmul_mt(&a, &b, &mut got, m, k, n, threads);
            assert_eq!(want, got, "threads={threads}");
        }
    }

    fn check_fma_shape(m: usize, k: usize, n: usize, seed: u64) {
        let a = pseudo_data(m * k, seed);
        let b = pseudo_data(k * n, seed ^ 0x5a5a);
        let mut want = vec![0.0; m * n];
        matmul_naive_fma(&a, &b, &mut want, m, k, n);
        let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        let mut simd = vec![f32::NAN; m * n];
        matmul_simd(&a, &b, &mut simd, m, k, n);
        assert_eq!(
            want_bits,
            simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "simd != naive-fma at {m}x{k}x{n}"
        );
        for threads in [2, 3, 5] {
            let mut mt = vec![f32::NAN; m * n];
            matmul_simd_mt_unclamped(&a, &b, &mut mt, m, k, n, threads);
            assert_eq!(
                want_bits,
                mt.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "simd-mt({threads}) != naive-fma at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn simd_matches_fma_reference_bitwise_across_shapes() {
        // Both tiles (narrow n ≤ 64, wide n > 64), remainders on every
        // dimension, k-block boundaries, and degenerate edges.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (5, 1, 9),
            (3, 5, 7),
            (13, 17, 11),
            (48, 48, 48),
            (48, 48, 96),
            (7, 300, 65),
            (33, 257, 31),
            (65, 64, 63),
            (97, 256, 130),
        ] {
            check_fma_shape(m, k, n, (m * 13 + k * 5 + n) as u64);
        }
    }

    #[test]
    fn zero_size_dims_are_handled_by_every_variant() {
        for &(m, k, n) in &[(0, 4, 4), (4, 0, 4), (4, 4, 0), (0, 0, 0), (3, 0, 0)] {
            let a = pseudo_data(m * k, 1);
            let b = pseudo_data(k * n, 2);
            let mut want = vec![f32::NAN; m * n];
            matmul_naive(&a, &b, &mut want, m, k, n);
            for variant in [
                KernelVariant::Blocked,
                KernelVariant::BlockedMt,
                KernelVariant::NaiveFma,
                KernelVariant::Simd,
                KernelVariant::SimdMt,
            ] {
                let mut got = vec![f32::NAN; m * n];
                variant.run(&a, &b, &mut got, m, k, n, 4);
                // With a zero-size k, every class agrees: all zeros.
                assert_eq!(want, got, "{} at {m}x{k}x{n}", variant.name());
            }
        }
    }

    #[test]
    fn variant_selection_and_names() {
        assert_eq!(KernelVariant::select(RoundingClass::Exact, 8, 8, 8, 4), KernelVariant::Blocked);
        assert_eq!(KernelVariant::select(RoundingClass::Fma, 8, 8, 8, 1), KernelVariant::Simd);
        let big = KernelVariant::select(RoundingClass::Exact, 512, 512, 512, 4);
        // On a single-core host the parallel label is never selected.
        if host_parallelism() > 1 {
            assert_eq!(big, KernelVariant::BlockedMt);
        } else {
            assert_eq!(big, KernelVariant::Blocked);
        }
        assert_eq!(KernelVariant::Simd.class(), RoundingClass::Fma);
        assert_eq!(KernelVariant::BlockedMt.class(), RoundingClass::Exact);
        assert_eq!(KernelVariant::SimdMt.name(), "simd-mt");
    }

    #[test]
    fn lane_reductions_match_references() {
        for len in [0usize, 1, 3, 8, 9, 17, 64, 100] {
            let x = pseudo_data(len, len as u64 + 1);
            let y = pseudo_data(len, len as u64 + 2);
            let seq_sum: f32 = x.iter().sum();
            assert!((reduce_sum_lanes(&x) - seq_sum).abs() <= 1e-4 * (1.0 + seq_sum.abs()));
            let seq_dot: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot_lanes(&x, &y) - seq_dot).abs() <= 1e-4 * (1.0 + seq_dot.abs()));
            if len > 0 {
                let seq_max = x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                assert_eq!(reduce_max(&x).to_bits(), seq_max.to_bits());
            }
        }
        let mut acc = vec![1.0f32; 11];
        let x = pseudo_data(11, 9);
        axpy(&mut acc, &x, 0.5);
        for (o, &v) in acc.iter().zip(&x) {
            assert_eq!(o.to_bits(), 0.5f32.mul_add(v, 1.0).to_bits());
        }
    }

    #[test]
    fn transpose_simd_is_bit_identical_to_blocked() {
        for &(m, n) in &[(1, 1), (3, 5), (8, 8), (32, 32), (33, 65), (100, 7), (40, 48)] {
            let a = pseudo_data(m * n, (m * 3 + n) as u64);
            let mut want = vec![0.0; m * n];
            transpose_blocked(&a, &mut want, m, n);
            let mut got = vec![f32::NAN; m * n];
            transpose_simd(&a, &mut got, m, n);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "transpose_simd != transpose_blocked at {m}x{n}"
            );
        }
    }

    #[test]
    fn mt_unclamped_shares_packed_panels_correctly() {
        // Shapes straddling KC and NR boundaries, forced through the
        // scoped-thread path regardless of host cores.
        for &(m, k, n, threads) in &[(37, 256, 128, 3), (12, 300, 17, 5), (64, 513, 40, 2)] {
            let a = pseudo_data(m * k, 11);
            let b = pseudo_data(k * n, 12);
            let mut want = vec![0.0; m * n];
            matmul_naive(&a, &b, &mut want, m, k, n);
            let mut got = vec![f32::NAN; m * n];
            matmul_mt_unclamped(&a, &b, &mut got, m, k, n, threads);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "mt_unclamped({threads}) != naive at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn transpose_blocked_round_trips() {
        for &(m, n) in &[(1, 1), (3, 5), (32, 32), (33, 65), (100, 7)] {
            let a = pseudo_data(m * n, (m + n) as u64);
            let mut t = vec![0.0; m * n];
            transpose_blocked(&a, &mut t, m, n);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(t[j * m + i], a[i * n + j]);
                }
            }
            let mut back = vec![0.0; m * n];
            transpose_blocked(&t, &mut back, n, m);
            assert_eq!(back, a);
        }
    }

    #[test]
    fn packed_gemm_matches_matmul_simd_bitwise() {
        // Narrow and wide tile selection, remainders, repeated reuse.
        for &(m, k, n) in &[(1, 1, 1), (7, 13, 9), (24, 48, 48), (24, 96, 48), (5, 40, 130)] {
            let a = pseudo_data(m * k, 7 + n as u64);
            let b = pseudo_data(k * n, 9 + m as u64);
            let mut want = vec![0.0; m * n];
            matmul_simd(&a, &b, &mut want, m, k, n);
            let pg = PackedGemm::pack(&b, k, n);
            assert_eq!((pg.k(), pg.n()), (k, n));
            let mut got = vec![0.0; m * n];
            for _ in 0..2 {
                pg.run(&a, &mut got, m);
                assert!(
                    want.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "PackedGemm != matmul_simd at {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn kouter_matches_naive_fma_bitwise() {
        // Head-sized attention shapes plus edges: the k-outer walk must
        // reproduce the scalar-fma chain exactly.
        for &(m, k, n) in &[(1, 1, 1), (24, 12, 24), (24, 24, 12), (7, 5, 3), (3, 64, 48)] {
            let a = pseudo_data(m * k, 17 + k as u64);
            let b = pseudo_data(k * n, 19 + n as u64);
            let mut want = vec![0.0; m * n];
            matmul_naive_fma(&a, &b, &mut want, m, k, n);
            let mut got = vec![0.0; m * n];
            matmul_kouter(&a, &b, &mut got, m, k, n);
            assert!(
                want.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits()),
                "kouter != naive_fma at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn kouter_padded_matches_naive_fma_on_logical_lanes() {
        // Register-tile tiers (np ≤ 64) and the wide fallback (np = n) must
        // both reproduce the scalar-fma chain on every logical lane.
        for &(m, k, n) in &[(24, 12, 24), (24, 24, 12), (5, 7, 48), (1, 3, 50), (4, 9, 80)] {
            let np = kouter_pad(n);
            let a = pseudo_data(m * k, 29 + n as u64);
            let b = pseudo_data(k * n, 31 + k as u64);
            // Pad B rows to np with zeros.
            let mut bp = vec![0.0f32; k * np];
            for p in 0..k {
                bp[p * np..p * np + n].copy_from_slice(&b[p * n..(p + 1) * n]);
            }
            let mut want = vec![0.0; m * n];
            matmul_naive_fma(&a, &b, &mut want, m, k, n);
            let mut got = vec![0.0; m * np];
            matmul_kouter_padded(&a, k, &bp, &mut got, m, k, np);
            for r in 0..m {
                for c in 0..n {
                    assert_eq!(
                        want[r * n + c].to_bits(),
                        got[r * np + c].to_bits(),
                        "kouter_padded != naive_fma at {m}x{k}x{n} [{r},{c}]"
                    );
                }
            }
        }
    }

    #[test]
    fn softmax_rows_normalizes_and_is_deterministic() {
        let rows = 9;
        let (n, stride) = (24, 32);
        let mut x = pseudo_data(rows * stride, 37);
        for v in x.iter_mut() {
            *v *= 4.0;
        }
        let orig = x.clone();
        let mut second = x.clone();
        softmax_rows(&mut x, rows, n, stride);
        softmax_rows(&mut second, rows, n, stride);
        for r in 0..rows {
            let row = &x[r * stride..r * stride + n];
            // Deterministic, matches the libm reference closely, sums to 1.
            let mx = orig[r * stride..r * stride + n].iter().cloned().fold(f32::MIN, f32::max);
            for (c, &g) in row.iter().enumerate() {
                assert_eq!(g.to_bits(), second[r * stride + c].to_bits());
                let want_num = (orig[r * stride + c] - mx).exp();
                let want_den: f32 =
                    orig[r * stride..r * stride + n].iter().map(|&v| (v - mx).exp()).sum();
                let want = want_num / want_den;
                assert!((g - want).abs() < 1e-5, "softmax[{r},{c}] = {g}, want {want}");
            }
            // Pad lanes beyond the active width are never touched.
            for c in n..stride {
                assert_eq!(x[r * stride + c].to_bits(), orig[r * stride + c].to_bits());
            }
        }
    }

    #[test]
    fn exp_lanes_tracks_libm_closely_and_is_deterministic() {
        let mut xs: Vec<f32> = (-2000..2000).map(|i| i as f32 * 0.05).collect();
        xs.extend([0.0, -0.0, 1e-20, -1e-20, 87.9, -90.0, 200.0, -200.0]);
        let mut got = xs.clone();
        exp_lanes(&mut got);
        let mut got2 = xs.clone();
        exp_lanes(&mut got2);
        for ((&x, &g), &g2) in xs.iter().zip(&got).zip(&got2) {
            assert_eq!(g.to_bits(), g2.to_bits(), "exp_lanes nondeterministic at {x}");
            let want = x.clamp(EXP_MIN_IN, EXP_MAX_IN).exp();
            let tol = want * 1e-6 + f32::MIN_POSITIVE;
            assert!((g - want).abs() <= tol, "exp_lanes({x}) = {g}, libm {want}");
        }
    }

    #[test]
    fn gelu_lanes_tracks_the_scalar_gelu() {
        let mut xs: Vec<f32> = (-800..800).map(|i| i as f32 * 0.01).collect();
        xs.extend([0.0, -0.0, 30.0, -30.0]);
        let got = {
            let mut v = xs.clone();
            gelu_lanes(&mut v);
            v
        };
        const C: f32 = 0.797_884_6;
        for (&x, &g) in xs.iter().zip(&got) {
            let want = 0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh());
            assert!((g - want).abs() <= 2e-6 * want.abs().max(1.0), "gelu({x}) = {g}, want {want}");
        }
    }
}
