//! Cache-blocked, register-tiled f32 GEMM and transpose kernels.
//!
//! The seed implementation of [`Tensor::matmul`](crate::Tensor::matmul) was
//! a scalar ikj triple loop that re-read and re-wrote the output row from
//! memory on every k step (and carried a per-element `a == 0.0` branch).
//! These kernels replace it with the classic GotoBLAS decomposition:
//!
//! * the K dimension is split into `KC`-sized blocks whose B panel is
//!   **packed** into a contiguous buffer laid out in `NR`-wide column
//!   strips, so the innermost loop streams one cache line forward;
//! * rows of A are processed `MR` at a time against `NR`-wide strips of the
//!   packed panel, with the `MR × NR` accumulator tile held in registers
//!   for the whole k block (LLVM auto-vectorizes the `NR`-wide loop);
//! * a row-block-parallel driver ([`matmul_mt`]) splits the M dimension
//!   across scoped threads, each writing a disjoint slice of the output.
//!
//! **Bitwise exactness.** Every kernel here produces output that is
//! bit-for-bit identical to the naive ikj reference ([`matmul_naive`]):
//! for each output element the products `a[i][k] * b[k][j]` are added one
//! at a time in strictly increasing k order (the accumulator tile is
//! loaded from the output at the start of each k block and stored back at
//! the end, so crossing a block boundary does not change the rounding
//! sequence), there are no pairwise/tree reductions, and the parallel
//! driver partitions whole rows, which are computed independently. This is
//! what lets `threads = 1` and `threads = N` produce identical score
//! matrices downstream, and it is enforced by proptests in
//! `crates/nn/tests/kernel_properties.rs`.
//!
//! This module is deliberately dependency-free (std only) so it can be
//! compiled and profiled in isolation.

/// Micro-tile height: rows of A processed together in the inner kernel.
const MR: usize = 4;
/// Micro-tile width: columns of B processed together (2 × 4-wide SIMD).
const NR: usize = 8;
/// K-dimension block size: one packed B panel spans `KC × n` values.
const KC: usize = 256;
/// M-dimension block size: rows of A per panel reuse.
const MC: usize = 128;

/// Naive ikj reference kernel (term-by-term accumulation in k order).
///
/// `out` must be `m * n` and is **overwritten**. This is the semantic and
/// rounding reference for every optimized kernel in this module; it is kept
/// for tests and benchmarks.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for kk in 0..k {
            let av = a[i * k + kk];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Packs the `[kc × n]` slice of B starting at row `k0` into `NR`-wide
/// column strips: strip `j` holds rows `k0..k0+kc` of columns
/// `j*NR..j*NR+NR`, row-major within the strip, zero-padded on the right
/// edge. Output layout: `packed[strip][kk][jr]`.
fn pack_b_panel(b: &[f32], n: usize, k0: usize, kc: usize, packed: &mut Vec<f32>) {
    let strips = n.div_ceil(NR);
    packed.clear();
    packed.resize(strips * kc * NR, 0.0);
    for strip in 0..strips {
        let j0 = strip * NR;
        let w = NR.min(n - j0);
        let dst_base = strip * kc * NR;
        for kk in 0..kc {
            let src = (k0 + kk) * n + j0;
            let dst = dst_base + kk * NR;
            packed[dst..dst + w].copy_from_slice(&b[src..src + w]);
            // Right-edge padding stays zero from the resize above.
        }
    }
}

/// The register-tiled inner kernel: accumulates the `MR × NR` tile of
/// `out` at `(i0, j0)` over `kc` packed k steps. The tile is loaded from
/// `out`, accumulated in registers in k order, and stored back — preserving
/// the naive rounding sequence across k blocks.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_kernel(
    a: &[f32],
    k: usize,
    k0: usize,
    kc: usize,
    panel_strip: &[f32],
    out: &mut [f32],
    n: usize,
    i0: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        let base = (i0 + r) * n + j0;
        row.copy_from_slice(&out[base..base + NR]);
    }
    for kk in 0..kc {
        let bvals: &[f32] = &panel_strip[kk * NR..kk * NR + NR];
        for (r, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + k0 + kk];
            for (c, o) in row.iter_mut().enumerate() {
                *o += av * bvals[c];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        let base = (i0 + r) * n + j0;
        out[base..base + NR].copy_from_slice(row);
    }
}

/// Scalar edge kernel for row/column remainders: identical accumulation
/// order (k innermost, one term at a time).
#[allow(clippy::too_many_arguments)]
fn edge_kernel(
    a: &[f32],
    k: usize,
    k0: usize,
    kc: usize,
    b: &[f32],
    out: &mut [f32],
    n: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) {
    for i in rows {
        for j in cols.clone() {
            let mut acc = out[i * n + j];
            for kk in 0..kc {
                acc += a[i * k + k0 + kk] * b[(k0 + kk) * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Single-threaded blocked GEMM: `out = A × B` with `A [m×k]`, `B [k×n]`,
/// all row-major. `out` is overwritten. Bitwise-identical to
/// [`matmul_naive`].
pub fn matmul_blocked(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    let mut packed = Vec::new();
    matmul_rows_blocked(a, b, out, m, k, n, &mut packed);
}

/// Blocked GEMM over all `m` rows of `a`/`out`, with a caller-provided
/// packing buffer (reused across k blocks and across calls).
#[allow(clippy::too_many_arguments)]
fn matmul_rows_blocked(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    packed: &mut Vec<f32>,
) {
    let rows = 0..m;
    let n_main = n - n % NR;
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_b_panel(b, n, k0, kc, packed);
        let mut i0 = rows.start;
        while i0 < rows.end {
            let mc = MC.min(rows.end - i0);
            let m_main = i0 + (mc - mc % MR);
            let mut i = i0;
            while i < m_main {
                for strip in 0..n_main / NR {
                    let panel_strip = &packed[strip * kc * NR..(strip + 1) * kc * NR];
                    micro_kernel(a, k, k0, kc, panel_strip, out, n, i, strip * NR);
                }
                if n_main < n {
                    edge_kernel(a, k, k0, kc, b, out, n, i..i + MR, n_main..n);
                }
                i += MR;
            }
            if m_main < i0 + mc {
                edge_kernel(a, k, k0, kc, b, out, n, m_main..i0 + mc, 0..n);
            }
            i0 += mc;
        }
        k0 += kc;
    }
}

/// Row-block-parallel blocked GEMM: splits output rows into `threads`
/// contiguous chunks computed on scoped threads, each with its own packing
/// buffer and a disjoint output slice. Falls back to the single-threaded
/// kernel when `threads <= 1` or the matrix is too small to amortize a
/// thread spawn. Bitwise-identical to [`matmul_naive`] for any thread
/// count.
pub fn matmul_mt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    // Below ~1 MFLOP a spawn costs more than it saves.
    const PAR_MIN_FLOPS: usize = 1 << 20;
    let threads = threads.max(1).min(m.max(1));
    if threads <= 1 || m * k * n < PAR_MIN_FLOPS {
        matmul_blocked(a, b, out, m, k, n);
        return;
    }
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    // Chunk boundaries aligned to MR so every worker runs the fast path.
    let rows_per = m.div_ceil(threads).div_ceil(MR) * MR;
    std::thread::scope(|scope| {
        let mut rest = &mut out[..];
        let mut row0 = 0;
        while row0 < m {
            let rows = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let r0 = row0;
            scope.spawn(move || {
                let mut packed = Vec::new();
                // Each worker sees its chunk as a standalone `rows × n`
                // output over the matching rows of A.
                let a_rows = &a[r0 * k..(r0 + rows) * k];
                matmul_rows_blocked(a_rows, b, chunk, rows, k, n, &mut packed);
            });
            row0 += rows;
        }
    });
}

/// Blocked out-of-place transpose: `out[j][i] = a[i][j]` with `a [m×n]`
/// row-major, processed in 32×32 tiles so both matrices stream through
/// cache line by line.
pub fn transpose_blocked(a: &[f32], out: &mut [f32], m: usize, n: usize) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    const TILE: usize = 32;
    let mut i0 = 0;
    while i0 < m {
        let ih = TILE.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let jw = TILE.min(n - j0);
            for i in i0..i0 + ih {
                for j in j0..j0 + jw {
                    out[j * m + i] = a[i * n + j];
                }
            }
            j0 += TILE;
        }
        i0 += TILE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift values in [-1, 1) — keeps this module's tests
    /// dependency-free.
    pub(crate) fn pseudo_data(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            })
            .collect()
    }

    fn check_shape(m: usize, k: usize, n: usize, seed: u64) {
        let a = pseudo_data(m * k, seed);
        let b = pseudo_data(k * n, seed ^ 0xabcd);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0; m * n];
        matmul_blocked(&a, &b, &mut got, m, k, n);
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "blocked != naive at {m}x{k}x{n}"
        );
        for threads in [2, 3, 4] {
            let mut got_mt = vec![0.0; m * n];
            matmul_mt(&a, &b, &mut got_mt, m, k, n, threads);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got_mt.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "mt({threads}) != naive at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_bitwise_across_shapes() {
        // Tile multiples, remainders on every dimension, degenerate edges.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 1),
            (1, 300, 5),
            (5, 1, 9),
            (4, 8, 8),
            (8, 16, 8),
            (3, 5, 7),
            (13, 17, 11),
            (48, 48, 48),
            (33, 257, 31),
            (65, 64, 63),
        ] {
            check_shape(m, k, n, (m * 31 + k * 7 + n) as u64);
        }
    }

    #[test]
    fn mt_covers_uneven_row_splits() {
        // m not divisible by threads or MR; force the parallel path by
        // exceeding the FLOP cutoff via k*n.
        let (m, k, n) = (37, 256, 128);
        let a = pseudo_data(m * k, 3);
        let b = pseudo_data(k * n, 4);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        for threads in [2, 5, 8, 64] {
            let mut got = vec![0.0; m * n];
            matmul_mt(&a, &b, &mut got, m, k, n, threads);
            assert_eq!(want, got, "threads={threads}");
        }
    }

    #[test]
    fn transpose_blocked_round_trips() {
        for &(m, n) in &[(1, 1), (3, 5), (32, 32), (33, 65), (100, 7)] {
            let a = pseudo_data(m * n, (m + n) as u64);
            let mut t = vec![0.0; m * n];
            transpose_blocked(&a, &mut t, m, n);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(t[j * m + i], a[i * n + j]);
                }
            }
            let mut back = vec![0.0; m * n];
            transpose_blocked(&t, &mut back, n, m);
            assert_eq!(back, a);
        }
    }
}
