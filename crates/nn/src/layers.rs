//! Parameterized layers: thin wrappers that own [`ParamId`]s and emit graph
//! ops.

use crate::graph::{Graph, NodeId};
use crate::params::{ParamId, ParamStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Affine layer `y = x·W + b` with `W ∈ [in, out]`, `b ∈ [1, out]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input width (for shape assertions in debug builds).
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add_xavier(format!("{name}.w"), in_dim, out_dim, rng);
        let b = store.add_zeros(format!("{name}.b"), 1, out_dim);
        Linear { w, b, in_dim, out_dim }
    }

    /// Applies the layer to `x ∈ [n, in]`, producing `[n, out]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "Linear input width");
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }

    /// The weight parameter id (for graph-free plan compilation).
    pub(crate) fn weight_id(&self) -> ParamId {
        self.w
    }

    /// The bias parameter id.
    pub(crate) fn bias_id(&self) -> ParamId {
        self.b
    }
}

/// Learned layer normalization (`γ`, `β` of width `d`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
}

impl LayerNorm {
    /// Registers γ=1, β=0 parameters of width `d`.
    pub fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        let gamma = store.add_ones(format!("{name}.gamma"), 1, d);
        let beta = store.add_zeros(format!("{name}.beta"), 1, d);
        LayerNorm { gamma, beta }
    }

    /// Normalizes each row of `x`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        g.layer_norm(x, gamma, beta)
    }

    /// The γ parameter id (for graph-free plan compilation).
    pub(crate) fn gamma_id(&self) -> ParamId {
        self.gamma
    }

    /// The β parameter id.
    pub(crate) fn beta_id(&self) -> ParamId {
        self.beta
    }
}

/// Embedding table `[vocab, d]` with gather-based lookup.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Embedding {
    table: ParamId,
    /// Number of rows (vocabulary/positions).
    pub rows: usize,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Registers a Xavier-initialized embedding table.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        rows: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = store.add_xavier(format!("{name}.table"), rows, dim, rng);
        Embedding { table, rows, dim }
    }

    /// Looks up `indices`, producing `[len, d]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, indices: &[usize]) -> NodeId {
        let t = g.param(store, self.table);
        g.gather(t, indices)
    }

    /// The table parameter id (for graph-free plan compilation).
    pub(crate) fn table_id(&self) -> ParamId {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, AdamConfig};
    use crate::tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(4, 3));
        let y = lin.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (4, 2));
        // Zero input → output equals bias (zero at init).
        assert!(g.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn layer_norm_wrapper_normalizes() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(1, 4, vec![2., 4., 6., 8.]));
        let y = ln.forward(&mut g, &store, x);
        let mean: f32 = g.value(y).row(0).iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn embedding_lookup_returns_table_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
        let mut g = Graph::new();
        let y = emb.forward(&mut g, &store, &[2, 2, 4]);
        assert_eq!(g.value(y).shape(), (3, 3));
        assert_eq!(g.value(y).row(0), g.value(y).row(1));
    }

    /// A two-layer MLP trained end-to-end on XOR must fit it — the classic
    /// sanity check that layers, autograd, and Adam compose.
    #[test]
    fn mlp_learns_xor() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let l1 = Linear::new(&mut store, "l1", 2, 8, &mut rng);
        let l2 = Linear::new(&mut store, "l2", 8, 1, &mut rng);
        let data =
            [([0.0f32, 0.0], 0.0f32), ([0.0, 1.0], 1.0), ([1.0, 0.0], 1.0), ([1.0, 1.0], 0.0)];
        let mut opt = Adam::new(AdamConfig { lr: 0.05, ..Default::default() });
        for _ in 0..400 {
            let mut g = Graph::new();
            let mut losses = Vec::new();
            for (x, t) in &data {
                let xi = g.input(Tensor::from_vec(1, 2, x.to_vec()));
                let h = l1.forward(&mut g, &store, xi);
                let ha = g.tanh(h);
                let z = l2.forward(&mut g, &store, ha);
                losses.push(g.bce_with_logits(z, *t, 1.0));
            }
            let loss = g.mean_scalars(&losses);
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        // All four points classified correctly.
        for (x, t) in &data {
            let mut g = Graph::new();
            let xi = g.input(Tensor::from_vec(1, 2, x.to_vec()));
            let h = l1.forward(&mut g, &store, xi);
            let ha = g.tanh(h);
            let z = l2.forward(&mut g, &store, ha);
            let p = g.sigmoid(z);
            let pred = g.value(p).item();
            assert_eq!(pred > 0.5, *t > 0.5, "input {x:?}: p = {pred}");
        }
    }
}
