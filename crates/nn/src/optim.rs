//! Adam optimizer with optional decoupled weight decay (AdamW).

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability term ε.
    pub eps: f32,
    /// Decoupled weight decay λ (0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Adam/AdamW over a [`ParamStore`]. Moment buffers are lazily sized on the
/// first step.
#[derive(Debug)]
pub struct Adam {
    config: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with the given hyper-parameters.
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, m: Vec::new(), v: Vec::new(), t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Current learning rate (mutable via [`set_lr`](Self::set_lr) for
    /// schedules).
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Overrides the learning rate (for warmup/decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    fn ensure_buffers(&mut self, store: &ParamStore) {
        while self.m.len() < store.len() {
            let id = ParamId(self.m.len());
            let (r, c) = store.value(id).shape();
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }
    }

    /// Applies one update using the gradients currently accumulated in
    /// `store`, then zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.ensure_buffers(store);
        self.t += 1;
        let AdamConfig { lr, beta1, beta2, eps, weight_decay } = self.config;
        let bias1 = 1.0 - beta1.powi(self.t as i32);
        let bias2 = 1.0 - beta2.powi(self.t as i32);
        for id in store.ids().collect::<Vec<_>>() {
            let grad = store.grad(id).clone();
            let m = &mut self.m[id.0];
            let v = &mut self.v[id.0];
            let value = store.value_mut(id);
            for i in 0..value.len() {
                let g = grad.data()[i];
                let mi = beta1 * m.data()[i] + (1.0 - beta1) * g;
                let vi = beta2 * v.data()[i] + (1.0 - beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                let mut update = lr * m_hat / (v_hat.sqrt() + eps);
                if weight_decay > 0.0 {
                    update += lr * weight_decay * value.data()[i];
                }
                value.data_mut()[i] -= update;
            }
        }
        store.zero_grads();
    }
}

/// Linear warmup followed by linear decay to zero — the schedule BERT
/// fine-tuning conventionally uses.
pub fn warmup_linear(step: u64, warmup: u64, total: u64, peak_lr: f32) -> f32 {
    if total == 0 {
        return peak_lr;
    }
    if step < warmup {
        return peak_lr * (step as f32 + 1.0) / (warmup.max(1) as f32);
    }
    let remaining = total.saturating_sub(step) as f32;
    let span = total.saturating_sub(warmup).max(1) as f32;
    peak_lr * (remaining / span).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes (w - 3)² via BCE-free quadratic built from graph ops.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..200 {
            let mut g = Graph::new();
            let wp = g.param(&store, w);
            let c = g.input(Tensor::scalar(-3.0));
            let diff = g.add(wp, c);
            let sq = g.mul(diff, diff);
            g.backward(sq, &mut store);
            opt.step(&mut store);
        }
        assert!((store.value(w).item() - 3.0).abs() < 1e-2, "w = {}", store.value(w).item());
    }

    #[test]
    fn adam_step_zeroes_grads() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(1.0));
        store.accumulate_grad(w, &Tensor::scalar(1.0));
        let mut opt = Adam::new(AdamConfig::default());
        opt.step(&mut store);
        assert_eq!(store.grad(w).item(), 0.0);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(10.0));
        let mut opt = Adam::new(AdamConfig { lr: 0.1, weight_decay: 0.5, ..Default::default() });
        // Zero gradient: only decay acts.
        for _ in 0..10 {
            opt.step(&mut store);
        }
        assert!(store.value(w).item() < 10.0);
    }

    #[test]
    fn warmup_linear_shape() {
        let peak = 1.0;
        assert!(warmup_linear(0, 10, 100, peak) < warmup_linear(9, 10, 100, peak));
        assert!((warmup_linear(9, 10, 100, peak) - peak).abs() < 1e-6);
        assert!(warmup_linear(50, 10, 100, peak) < peak);
        assert!(warmup_linear(99, 10, 100, peak) > 0.0);
        assert_eq!(warmup_linear(100, 10, 100, peak), 0.0);
        assert_eq!(warmup_linear(5, 0, 0, peak), peak);
    }
}
