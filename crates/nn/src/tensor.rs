//! Dense 2-D `f32` tensors with the handful of BLAS-1/2/3 kernels the
//! transformer needs. The matmul and transpose entry points delegate to the
//! cache-blocked kernels in [`crate::kernels`].

use crate::kernels;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major 2-D matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// A 1×1 tensor holding a scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(1, 1, vec![value])
    }

    /// Xavier/Glorot-uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (rows + cols))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a 0-element tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The scalar value of a 1×1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar tensor");
        self.data[0]
    }

    /// Matrix product `self × other` (cache-blocked, register-tiled dense
    /// kernel; see [`crate::kernels`]).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_threaded(other, 1)
    }

    /// Matrix product on up to `threads` worker threads (row-partitioned;
    /// the result is bitwise-identical for every thread count).
    pub fn matmul_threaded(&self, other: &Tensor, threads: usize) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out, threads);
        out
    }

    /// Matrix product written into a caller-provided output tensor (its
    /// previous contents are overwritten).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor, threads: usize) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul output shape mismatch");
        lsm_obs::add(lsm_obs::Counter::GemmCalls, 1);
        // Runtime variant selection in the exact rounding class: bitwise
        // equal to `matmul_naive` at every thread count.
        let variant = kernels::KernelVariant::select(
            kernels::RoundingClass::Exact,
            self.rows,
            self.cols,
            other.cols,
            threads,
        );
        variant.run(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
            threads,
        );
    }

    /// Transposed copy (SIMD-tiled; bit-identical to the blocked kernel).
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        kernels::transpose_simd(&self.data, &mut out.data, self.rows, self.cols);
        out
    }

    /// Elementwise sum (same shape).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Elementwise product (same shape).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "mul shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Scaled copy.
    pub fn scale(&self, factor: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * factor).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += other * factor` (axpy).
    pub fn add_scaled(&mut self, other: &Tensor, factor: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * factor;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Fills with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Consumes the tensor, returning its backing buffer (used by the
    /// [`Graph`](crate::Graph) arena to recycle allocations across
    /// forwards).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        t.set(1, 2, 5.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_checks_shape() {
        Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_checks_dims() {
        Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.data(), &[3., 4.5, 6.]);
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = Tensor::xavier(8, 8, &mut rng);
        let a = (6.0f32 / 16.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= a));
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(t, Tensor::xavier(8, 8, &mut rng2));
    }

    #[test]
    fn norm_and_fill_zero() {
        let mut t = Tensor::from_vec(1, 2, vec![3., 4.]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        t.fill_zero();
        assert_eq!(t.data(), &[0., 0.]);
    }
}
