//! Masked-language-model pre-training.
//!
//! The real BERT featurizer starts from a checkpoint "pre-trained on the
//! Toronto Book and Wikipedia corpora". Our substitute pre-trains the
//! mini-encoder on the synthetic domain corpus with the standard MLM recipe:
//! 15 % of content tokens are selected; of those, 80 % are replaced with
//! `[MASK]`, 10 % with a random token, 10 % kept; the model predicts the
//! original token at each selected position.

use crate::bert::BertEncoder;
use crate::bpe::{BpeVocab, SpecialToken};
use crate::graph::Graph;
use crate::layers::Linear;
use crate::optim::{warmup_linear, Adam, AdamConfig};
use crate::params::ParamStore;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// MLM pre-training hyper-parameters.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct MlmConfig {
    /// Optimization steps.
    pub steps: usize,
    /// Sentences per step.
    pub batch_size: usize,
    /// Fraction of content tokens selected for prediction.
    pub mask_prob: f64,
    /// Peak learning rate (linear warmup over 10 % of steps, then decay).
    pub peak_lr: f32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for MlmConfig {
    fn default() -> Self {
        MlmConfig { steps: 300, batch_size: 8, mask_prob: 0.15, peak_lr: 3e-3, seed: 0xbe27 }
    }
}

/// Drives MLM pre-training of a [`BertEncoder`] plus an output projection.
pub struct MlmTrainer {
    config: MlmConfig,
    /// `[d_model → vocab]` prediction head (not weight-tied, for simplicity).
    head: Linear,
}

impl MlmTrainer {
    /// Registers the MLM head in `store`.
    pub fn new(
        config: MlmConfig,
        store: &mut ParamStore,
        d_model: usize,
        vocab_size: usize,
        rng: &mut impl Rng,
    ) -> Self {
        MlmTrainer { config, head: Linear::new(store, "mlm.head", d_model, vocab_size, rng) }
    }

    /// Pre-trains `encoder` on `corpus` (already subword-encoded sentences).
    /// Returns the per-step mean losses for diagnostics.
    pub fn train(
        &self,
        encoder: &BertEncoder,
        store: &mut ParamStore,
        vocab: &BpeVocab,
        corpus: &[Vec<u32>],
    ) -> Vec<f32> {
        let usable: Vec<&Vec<u32>> = corpus.iter().filter(|s| s.len() >= 2).collect();
        if usable.is_empty() {
            return Vec::new();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut opt = Adam::new(AdamConfig { lr: self.config.peak_lr, ..Default::default() });
        let warmup = (self.config.steps / 10).max(1) as u64;
        let content_range = SpecialToken::ALL.len() as u32..vocab.size() as u32;
        let mut losses = Vec::with_capacity(self.config.steps);

        for step in 0..self.config.steps {
            opt.set_lr(warmup_linear(
                step as u64,
                warmup,
                self.config.steps as u64,
                self.config.peak_lr,
            ));
            let mut g = Graph::new();
            let mut batch_losses = Vec::with_capacity(self.config.batch_size);
            for _ in 0..self.config.batch_size {
                let sent = usable.choose(&mut rng).expect("usable is non-empty");
                // [CLS] sentence [SEP], truncated to the position table.
                let body_max = encoder.config.max_seq.saturating_sub(2);
                let body = &sent[..sent.len().min(body_max)];
                let mut ids = Vec::with_capacity(body.len() + 2);
                ids.push(SpecialToken::Cls.id());
                ids.extend_from_slice(body);
                ids.push(SpecialToken::Sep.id());

                // Select positions (content tokens only) and corrupt.
                let mut targets: Vec<(usize, usize)> = Vec::new();
                for pos in 1..ids.len() - 1 {
                    if rng.gen_bool(self.config.mask_prob) {
                        let original = ids[pos];
                        targets.push((pos, original as usize));
                        let roll: f64 = rng.gen();
                        ids[pos] = if roll < 0.8 {
                            SpecialToken::Mask.id()
                        } else if roll < 0.9 {
                            rng.gen_range(content_range.clone())
                        } else {
                            original
                        };
                    }
                }
                if targets.is_empty() {
                    // Force one prediction so every sentence contributes.
                    let pos = rng.gen_range(1..ids.len() - 1);
                    targets.push((pos, ids[pos] as usize));
                    ids[pos] = SpecialToken::Mask.id();
                }

                let h = encoder.encode(&mut g, store, &ids);
                let logits = self.head.forward(&mut g, store, h);
                batch_losses.push(g.cross_entropy_rows(logits, &targets));
            }
            let loss = g.mean_scalars(&batch_losses);
            losses.push(g.value(loss).item());
            g.backward(loss, store);
            store.clip_grad_norm(5.0);
            opt.step(store);
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::BertConfig;

    /// A tiny synthetic language with a hard co-occurrence rule: token A is
    /// always followed by token B. After pre-training, masking B next to A
    /// must be predictable, i.e. the loss must drop substantially.
    #[test]
    fn mlm_loss_decreases_on_structured_corpus() {
        let words: Vec<Vec<&str>> = vec![
            vec!["alpha", "beta", "gamma", "delta"],
            vec!["alpha", "beta", "delta"],
            vec!["gamma", "alpha", "beta"],
            vec!["delta", "gamma", "alpha", "beta"],
        ];
        let vocab = BpeVocab::train(&words, 100);
        let corpus: Vec<Vec<u32>> = words.iter().map(|s| vocab.encode_words(s)).collect();

        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let encoder = BertEncoder::new(BertConfig::tiny(vocab.size()), &mut store, &mut rng);
        let config = MlmConfig { steps: 60, batch_size: 4, peak_lr: 5e-3, ..Default::default() };
        let trainer = MlmTrainer::new(config, &mut store, 16, vocab.size(), &mut rng);
        let losses = trainer.train(&encoder, &mut store, &vocab, &corpus);

        assert_eq!(losses.len(), 60);
        let early: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = losses[50..].iter().sum::<f32>() / 10.0;
        assert!(late < early * 0.8, "MLM loss should drop: early {early:.3} late {late:.3}");
    }

    #[test]
    fn mlm_handles_empty_corpus() {
        let words: Vec<Vec<&str>> = vec![vec!["x"]]; // too short to use
        let vocab = BpeVocab::train(&words, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let encoder = BertEncoder::new(BertConfig::tiny(vocab.size()), &mut store, &mut rng);
        let trainer = MlmTrainer::new(MlmConfig::default(), &mut store, 16, vocab.size(), &mut rng);
        let losses = trainer.train(&encoder, &mut store, &vocab, &[vec![3]]);
        assert!(losses.is_empty());
    }

    #[test]
    fn mlm_is_deterministic_given_seed() {
        let words: Vec<Vec<&str>> = vec![vec!["a", "b", "c"], vec!["c", "b", "a"]];
        let vocab = BpeVocab::train(&words, 20);
        let corpus: Vec<Vec<u32>> = words.iter().map(|s| vocab.encode_words(s)).collect();
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let mut store = ParamStore::new();
            let encoder = BertEncoder::new(BertConfig::tiny(vocab.size()), &mut store, &mut rng);
            let config = MlmConfig { steps: 5, batch_size: 2, ..Default::default() };
            let trainer = MlmTrainer::new(config, &mut store, 16, vocab.size(), &mut rng);
            trainer.train(&encoder, &mut store, &vocab, &corpus)
        };
        assert_eq!(run(), run());
    }
}
