//! Post-training quantization for the **frozen** encoder.
//!
//! The encoder never changes after pre-training (stage 3 label updates
//! retrain only the head — see `lsm-core`'s featurizer), which makes
//! one-shot post-training quantization safe by construction: calibrate
//! once over the pre-training corpus, quantize once, serve forever.
//!
//! Two storage formats are provided:
//!
//! * **int8** ([`QuantLinear`]) — weights are quantized symmetrically
//!   *per output row* (`w_scale[j] = absmax(row j) / 127`), activations
//!   with a single *static per-site* scale recorded during calibration
//!   (`act_scale = absmax(site) / 127`). The GEMM accumulates exact `i32`
//!   products and a dequant epilogue rescales into f32 and adds the f32
//!   bias. Because integer accumulation is associative, the int8 path is
//!   bitwise-identical across runs and thread counts by construction; the
//!   only rounding happens in the (deterministic, data-independent-order)
//!   epilogue.
//! * **f16 storage** ([`F16Linear`], [`f32_to_f16_bits`]) — IEEE 754
//!   binary16 with round-to-nearest-even, halving the frozen encoder's
//!   memory footprint. Compute stays f32: weights are decoded into a
//!   scratch panel and fed to the SIMD GEMM, so the only error is the
//!   one-time storage rounding of the weights.
//!
//! Neither format touches the paper-faithful f32 path: both are opt-in
//! backends selected through `lsm-nn`'s [`crate::fast::FastEncoder`].

use crate::kernels;

// ---------------------------------------------------------------------------
// IEEE 754 binary16 (f16) storage conversion.
// ---------------------------------------------------------------------------

/// Converts an `f32` to IEEE 754 binary16 bits with round-to-nearest-even.
/// Overflow saturates to ±inf; subnormals and zeroes round like any other
/// value. Deterministic bit-exact function of the input bits.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep the class, quiet the payload.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Unbiased exponent, rebased to f16's bias of 15.
    let e16 = exp - 127 + 15;
    if e16 >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if e16 <= 0 {
        // Subnormal (or zero) in f16: shift the implicit-1 mantissa right.
        if e16 < -10 {
            return sign; // underflow → ±0
        }
        let m = mant | 0x0080_0000; // implicit leading 1
        let shift = (14 - e16) as u32;
        let half = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = match rem.cmp(&halfway) {
            std::cmp::Ordering::Greater => half + 1,
            std::cmp::Ordering::Equal => half + (half & 1), // ties to even
            std::cmp::Ordering::Less => half,
        };
        return sign | rounded as u16;
    }
    // Normal: round the 23-bit mantissa to 10 bits (ties to even).
    let half = mant >> 13;
    let rem = mant & 0x1fff;
    let rounded = match rem.cmp(&0x1000) {
        std::cmp::Ordering::Greater => half + 1,
        std::cmp::Ordering::Equal => half + (half & 1),
        std::cmp::Ordering::Less => half,
    };
    // A mantissa carry bumps the exponent; e16 == 0x1e + carry → inf is
    // handled naturally because the packed add overflows into the exponent.
    sign | (((e16 as u32) << 10) + rounded) as u16
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact — every f16 value
/// is representable in f32).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;
    let out = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // inf / NaN
    } else if exp == 0 {
        if mant == 0 {
            sign // ±0
        } else {
            // Subnormal (value = mant · 2⁻²⁴): normalize. With the top
            // set bit at position p, shift = 10 - p, the biased f32
            // exponent is 127 + (p - 24) = 113 - shift, and
            // `mant << shift` puts the fraction bits in a 10-bit field.
            let shift = mant.leading_zeros() - 21;
            let m = (mant << shift) & 0x03ff;
            let e = 113 - shift;
            sign | (e << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Encodes a whole slice to f16 bits.
pub fn encode_f16(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&v| f32_to_f16_bits(v)).collect()
}

/// Decodes f16 bits into a caller-provided f32 buffer.
pub fn decode_f16(src: &[u16], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_bits_to_f32(s);
    }
}

// ---------------------------------------------------------------------------
// Symmetric int8 quantization.
// ---------------------------------------------------------------------------

/// The symmetric quantization range: values map to `[-127, 127]` (the
/// `-128` code is unused so negation stays closed).
pub const QMAX: f32 = 127.0;

/// The magic constant for round-to-nearest-even extraction: adding
/// `1.5·2²³` to any value in `[-2²², 2²²)` forces the float's exponent so
/// its rounded integer part lands in the low mantissa bits, two's
/// complement, biased by exactly `MAGIC.to_bits()`.
const MAGIC: f32 = 12_582_912.0; // 1.5 · 2²³
const MAGIC_BITS: u32 = 0x4B40_0000;
const _: () = assert!(MAGIC.to_bits() == MAGIC_BITS);

/// Rounds a clamped value to its nearest integer (ties to even) by
/// magic-add and reads the result straight out of the mantissa bits.
/// Bit-identical to `((c + MAGIC) - MAGIC) as i32` but compiles to pure
/// integer ops — Rust's saturating float→int `as` cast lowers to
/// `llvm.fptosi.sat`, which blocks vectorization of quantize loops.
#[inline]
fn round_even_i32(c: f32) -> i32 {
    debug_assert!(
        (-4_194_304.0..4_194_304.0).contains(&c),
        "magic-add rounding is only exact for |c| < 2^22 (got {c})"
    );
    // The wrap IS the bias removal: `(c + MAGIC).to_bits()` equals
    // `MAGIC_BITS + round(c)` exactly for `|c| < 2²²`, so subtracting
    // `MAGIC_BITS` cannot over- or underflow.
    // lsm-lint: allow(R10-cast-discipline, exact bias removal; range debug_assert-ed above and enforced by every caller's clamp)
    (c + MAGIC).to_bits().wrapping_sub(MAGIC_BITS) as i32
}

/// Quantizes one value with a precomputed reciprocal scale. Rounds to
/// nearest (ties to even) via the `1.5·2²³` magic-add trick: after the
/// clamp the value sits in `[-127, 127]`, far below the `2²²` threshold
/// where the trick is exact, and unlike `f32::round` the whole chain
/// vectorizes. Deterministic pure function of the input bits.
#[inline]
pub fn quantize_symmetric(x: f32, inv_scale: f32) -> i8 {
    let c = (x * inv_scale).clamp(-QMAX, QMAX);
    round_even_i32(c) as i8
}

/// The largest magnitude in a slice (0.0 for an empty slice).
pub fn absmax(x: &[f32]) -> f32 {
    let mut m = 0.0f32;
    for &v in x {
        m = m.max(v.abs());
    }
    m
}

/// Quantized micro-tile height (activation rows per tile).
const QMR: usize = 4;
/// Quantized micro-tile width (output columns per strip — matches the
/// narrow f32 tile so d=48 widths take one strip).
const QNR: usize = 48;

/// The integer GEMM micro-tile: `QMR` packed activation rows against one
/// `QNR`-wide packed weight strip, accumulating exact `i32` products.
/// Operands hold int8-quantized values widened to `i16` storage so the
/// inner loop is a stride-1 widen/multiply/add chain LLVM vectorizes at
/// full width (a safe-Rust `i8×i8` MAC does not autovectorize — see
/// `docs/kernels.md`). Same codegen contract as the f32 `fma_micro`:
/// `#[inline(never)]`, exact-size chunk slices, by-value accumulator.
/// Integer adds are associative, so any vectorization factor produces the
/// same bits.
#[inline(never)]
fn qmicro(av: &[[i16; QMR]], bv: &[[i16; QNR]], mut acc: [[i32; QNR]; QMR]) -> [[i32; QNR]; QMR] {
    debug_assert_eq!(av.len(), bv.len());
    for (a, b) in av.iter().zip(bv) {
        for r in 0..QMR {
            let ar = a[r] as i32;
            for c in 0..QNR {
                acc[r][c] += ar * b[c] as i32;
            }
        }
    }
    acc
}

/// An affine layer (`y = x·W + b`) with int8-quantized weights and
/// activations.
///
/// Weights are quantized per output row (`w_scale[j] = absmax(col j)/127`)
/// and held twice: the canonical `[out][in]` `i8` array (`wt`, 1 B/weight
/// — the serializable storage form) and a pre-packed `i16` strip layout
/// (`wp`) the integer micro-tile streams at full SIMD width. Activations
/// use one static calibrated scale. Bias stays f32 and is added in the
/// dequant epilogue.
#[derive(Debug, Clone)]
pub struct QuantLinear {
    /// Transposed quantized weights, `[out][in]` row-major (canonical).
    wt: Vec<i8>,
    /// Pre-packed compute copy: `[strip][kk][QNR]` `i16` strips,
    /// zero-padded on the right edge (packed once at quantize time, the
    /// GEMM-side analogue of `kernels::PackedGemm`).
    wp: Vec<i16>,
    /// Per-output-row dequantization scales (`absmax(row)/127`).
    w_scale: Vec<f32>,
    /// f32 bias, length `out_dim`.
    bias: Vec<f32>,
    /// Static input-activation scale from one-shot calibration.
    act_scale: f32,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl QuantLinear {
    /// Quantizes an f32 layer. `w` is `[in][out]` row-major (the layout
    /// [`crate::layers::Linear`] trains in); `act_absmax` is the largest
    /// activation magnitude this layer's input site saw during
    /// calibration.
    pub fn quantize(
        w: &[f32],
        bias: &[f32],
        in_dim: usize,
        out_dim: usize,
        act_absmax: f32,
    ) -> Self {
        assert_eq!(w.len(), in_dim * out_dim, "weight shape mismatch");
        assert_eq!(bias.len(), out_dim, "bias shape mismatch");
        // Transpose to [out][in] and scale each output row independently.
        let mut wt = vec![0i8; in_dim * out_dim];
        let mut w_scale = vec![0.0f32; out_dim];
        for j in 0..out_dim {
            let mut m = 0.0f32;
            for i in 0..in_dim {
                m = m.max(w[i * out_dim + j].abs());
            }
            let scale = m / QMAX;
            w_scale[j] = scale;
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            for i in 0..in_dim {
                wt[j * in_dim + i] = quantize_symmetric(w[i * out_dim + j], inv);
            }
        }
        // Pre-pack the compute strips: wp[s][kk][c] = wt[(s·QNR+c)][kk],
        // zero-padded where the last strip extends past out_dim.
        let strips = out_dim.div_ceil(QNR);
        let mut wp = vec![0i16; strips * in_dim * QNR];
        for s in 0..strips {
            let j0 = s * QNR;
            let width = QNR.min(out_dim - j0);
            for kk in 0..in_dim {
                let dst = s * in_dim * QNR + kk * QNR;
                for c in 0..width {
                    wp[dst + c] = wt[(j0 + c) * in_dim + kk] as i16;
                }
            }
        }
        let act_scale = act_absmax / QMAX;
        QuantLinear { wt, wp, w_scale, bias: bias.to_vec(), act_scale, in_dim, out_dim }
    }

    /// The calibrated static activation scale (diagnostics).
    pub fn act_scale(&self) -> f32 {
        self.act_scale
    }

    /// Canonical quantized weights, `[out][in]` row-major `i8` (the
    /// serializable storage form; the compute path reads the packed copy).
    pub fn weights_i8(&self) -> &[i8] {
        &self.wt
    }

    /// Quantizes `rows` rows of `x` with this layer's calibrated activation
    /// scale and packs them into the `[rstrip][kk][QMR]` layout
    /// [`Self::forward_acts`] streams. Two phases: a contiguous rounding
    /// loop (stride-1 integer extraction, so it vectorizes) into `s.rowq` —
    /// zero-padded to whole `QMR`-row strips — then a bounds-check-free
    /// 4-way-zip interleave into `s.packed`. Layers that share an input
    /// site — the Q/K/V projections calibrate against the same absmax,
    /// hence carry the same scale — can quantize once and feed the same
    /// scratch to all three [`Self::forward_acts`] calls.
    pub fn quantize_acts(&self, x: &[f32], rows: usize, s: &mut QuantScratch) {
        debug_assert_eq!(x.len(), rows * self.in_dim);
        let ind = self.in_dim;
        let inv_act = if self.act_scale > 0.0 { 1.0 / self.act_scale } else { 0.0 };
        let rstrips = rows.div_ceil(QMR);
        s.rowq.clear();
        s.rowq.resize(rstrips * QMR * ind, 0);
        // `x` is shorter than the padded scratch when `rows % QMR != 0`;
        // `zip` stops at the real rows and the pad rows stay zero.
        for (qv, &v) in s.rowq.iter_mut().zip(x) {
            let c = (v * inv_act).clamp(-QMAX, QMAX);
            *qv = round_even_i32(c) as i16;
        }
        s.packed.clear();
        s.packed.resize(rstrips * ind * QMR, 0);
        const { assert!(QMR == 4, "the interleave below zips exactly four rows") };
        for (strip, rows4) in
            s.packed.chunks_exact_mut(ind * QMR).zip(s.rowq.chunks_exact(ind * QMR))
        {
            let (cells, _) = strip.as_chunks_mut::<QMR>();
            let (r0, rest) = rows4.split_at(ind);
            let (r1, rest) = rest.split_at(ind);
            let (r2, r3) = rest.split_at(ind);
            for ((((cell, &a0), &a1), &a2), &a3) in cells.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3)
            {
                *cell = [a0, a1, a2, a3];
            }
        }
    }

    /// The integer GEMM + dequant epilogue over activations already
    /// quantized and packed by [`Self::quantize_acts`] — either by this
    /// layer or by a sibling with the identical activation scale.
    ///
    /// Each `i32` accumulator sums `in_dim` products bounded by 127², so
    /// the exact-integer guarantee holds for any `in_dim` below ~1.3e5 —
    /// far above any encoder width this crate builds.
    pub fn forward_acts(&self, s: &QuantScratch, out: &mut [f32], rows: usize) {
        lsm_obs::add(lsm_obs::Counter::QuantForwards, 1);
        debug_assert_eq!(out.len(), rows * self.out_dim);
        debug_assert!(s.packed.len() >= rows.div_ceil(QMR) * self.in_dim * QMR);
        let (ind, outd) = (self.in_dim, self.out_dim);
        let strips = outd.div_ceil(QNR);
        for rs in 0..rows.div_ceil(QMR) {
            let r0 = rs * QMR;
            let h = QMR.min(rows - r0);
            let (av, _) = s.packed[rs * ind * QMR..(rs + 1) * ind * QMR].as_chunks::<QMR>();
            for st in 0..strips {
                let j0 = st * QNR;
                let width = QNR.min(outd - j0);
                let (bv, _) = self.wp[st * ind * QNR..(st + 1) * ind * QNR].as_chunks::<QNR>();
                let acc = qmicro(av, bv, [[0i32; QNR]; QMR]);
                for (r, arow) in acc.iter().enumerate().take(h) {
                    let or = &mut out[(r0 + r) * outd + j0..(r0 + r) * outd + j0 + width];
                    for (t, (o, &a)) in or.iter_mut().zip(&arow[..width]).enumerate() {
                        // lsm-lint: allow(R6-float-determinism, int8 dequant epilogue: the i32 accumulator is exact and the static scales make this a deterministic opt-in rounding class, not an order-sensitive float reduction)
                        *o = a as f32 * (self.act_scale * self.w_scale[j0 + t]) + self.bias[j0 + t];
                    }
                }
            }
        }
    }

    /// Quantized forward: `out[r] = dequant(q(x[r]) · Wᵀ) + b` for each of
    /// `rows` input rows. `s` is caller-provided scratch (resized as
    /// needed) so steady-state forwards do not allocate.
    pub fn forward(&self, x: &[f32], out: &mut [f32], rows: usize, s: &mut QuantScratch) {
        self.quantize_acts(x, rows, s);
        self.forward_acts(s, out, rows);
    }
}

/// Reusable scratch for [`QuantLinear`] forwards: the row-major quantized
/// activations and the k-major packed tile strips the micro-kernel streams.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    rowq: Vec<i16>,
    packed: Vec<i16>,
}

/// An affine layer with f16-storage weights: decoded to f32 on the fly
/// and fed to the SIMD GEMM, so compute rounding matches the fma class
/// exactly and the only extra error is the one-time weight storage
/// rounding.
#[derive(Debug, Clone)]
pub struct F16Linear {
    /// f16-encoded weights, `[in][out]` row-major (the GEMM's B layout).
    w: Vec<u16>,
    /// f32 bias, length `out_dim`.
    bias: Vec<f32>,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl F16Linear {
    /// Encodes an f32 layer (`w` is `[in][out]` row-major).
    pub fn encode(w: &[f32], bias: &[f32], in_dim: usize, out_dim: usize) -> Self {
        assert_eq!(w.len(), in_dim * out_dim, "weight shape mismatch");
        assert_eq!(bias.len(), out_dim, "bias shape mismatch");
        F16Linear { w: encode_f16(w), bias: bias.to_vec(), in_dim, out_dim }
    }

    /// Forward through the SIMD GEMM. `wbuf` is scratch for the decoded
    /// weight panel (resized as needed).
    pub fn forward(&self, x: &[f32], out: &mut [f32], rows: usize, wbuf: &mut Vec<f32>) {
        lsm_obs::add(lsm_obs::Counter::F16Forwards, 1);
        debug_assert_eq!(x.len(), rows * self.in_dim);
        debug_assert_eq!(out.len(), rows * self.out_dim);
        wbuf.clear();
        wbuf.resize(self.w.len(), 0.0);
        decode_f16(&self.w, wbuf);
        kernels::matmul_simd(x, wbuf, out, rows, self.in_dim, self.out_dim);
        for r in 0..rows {
            let or = &mut out[r * self.out_dim..(r + 1) * self.out_dim];
            for (o, &b) in or.iter_mut().zip(&self.bias) {
                *o += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::tests::pseudo_data;

    #[test]
    fn f16_round_trips_exact_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.099975586] {
            let bits = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(bits), v, "value {v} should be f16-exact");
        }
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)), f32::INFINITY);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_overflow_saturates_and_subnormals_survive() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e6)), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e6)), f32::NEG_INFINITY);
        // Smallest f16 subnormal is 2^-24 ≈ 5.96e-8.
        let sub = 2.0f32.powi(-24);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(sub)), sub);
        // Values far below the subnormal range flush to zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-10)), 0.0);
    }

    #[test]
    fn f16_error_is_bounded_by_half_ulp() {
        let data = pseudo_data(4096, 42);
        for &v in &data {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            // Relative error of RNE binary16 is at most 2^-11 for normals.
            let tol = v.abs().max(2.0f32.powi(-14)) * 2.0f32.powi(-11);
            assert!((back - v).abs() <= tol, "{v} → {back}");
        }
    }

    #[test]
    fn f16_rne_matches_reference_on_all_u16_patterns() {
        // Round-trip every f16 bit pattern: decode is exact, so encoding
        // the decoded value must reproduce the original bits (modulo the
        // canonical quiet-NaN payload).
        for bits in 0..=u16::MAX {
            let v = f16_bits_to_f32(bits);
            if v.is_nan() {
                assert!(f16_bits_to_f32(f32_to_f16_bits(v)).is_nan());
                continue;
            }
            let back = f32_to_f16_bits(v);
            assert_eq!(back, bits, "f16 bits {bits:#06x} → {v} → {back:#06x}");
        }
    }

    #[test]
    fn quantize_symmetric_is_clamped_and_deterministic() {
        assert_eq!(quantize_symmetric(0.0, 1.0), 0);
        assert_eq!(quantize_symmetric(1000.0, 1.0), 127);
        assert_eq!(quantize_symmetric(-1000.0, 1.0), -127);
        // Ties round to even (the magic-add rounding class).
        assert_eq!(quantize_symmetric(0.5, 1.0), 0);
        assert_eq!(quantize_symmetric(-0.5, 1.0), 0);
        assert_eq!(quantize_symmetric(1.5, 1.0), 2);
        assert_eq!(quantize_symmetric(2.5, 1.0), 2);
        assert_eq!(quantize_symmetric(0.7, 1.0), 1);
        assert_eq!(quantize_symmetric(-1.7, 1.0), -2);
    }

    /// Reference scalar implementation of the quantized forward, computed
    /// in the mathematically obvious order.
    fn quant_forward_reference(q: &QuantLinear, x: &[f32], rows: usize) -> Vec<f32> {
        let inv_act = if q.act_scale > 0.0 { 1.0 / q.act_scale } else { 0.0 };
        let mut out = vec![0.0f32; rows * q.out_dim];
        for r in 0..rows {
            let xr = &x[r * q.in_dim..(r + 1) * q.in_dim];
            let qx: Vec<i8> = xr.iter().map(|&v| quantize_symmetric(v, inv_act)).collect();
            for j in 0..q.out_dim {
                let mut acc = 0i32;
                for i in 0..q.in_dim {
                    acc += qx[i] as i32 * q.wt[j * q.in_dim + i] as i32;
                }
                out[r * q.out_dim + j] = acc as f32 * (q.act_scale * q.w_scale[j]) + q.bias[j];
            }
        }
        out
    }

    #[test]
    fn quant_forward_matches_reference_bitwise() {
        for &(rows, ind, outd) in &[(1usize, 48usize, 48usize), (7, 33, 5), (4, 96, 48), (3, 1, 9)]
        {
            let w = pseudo_data(ind * outd, 1);
            let bias = pseudo_data(outd, 2);
            let x = pseudo_data(rows * ind, 3);
            let q = QuantLinear::quantize(&w, &bias, ind, outd, absmax(&x));
            let mut out = vec![0.0f32; rows * outd];
            let mut qx = QuantScratch::default();
            q.forward(&x, &mut out, rows, &mut qx);
            let reference = quant_forward_reference(&q, &x, rows);
            let same = out.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "shape {rows}x{ind}x{outd} diverged from the scalar reference");
        }
    }

    #[test]
    fn quant_forward_approximates_f32() {
        let (rows, ind, outd) = (8, 48, 48);
        let w = pseudo_data(ind * outd, 11);
        let bias = pseudo_data(outd, 12);
        let x = pseudo_data(rows * ind, 13);
        let q = QuantLinear::quantize(&w, &bias, ind, outd, absmax(&x));
        let mut out = vec![0.0f32; rows * outd];
        let mut qx = QuantScratch::default();
        q.forward(&x, &mut out, rows, &mut qx);
        let mut exact = vec![0.0f32; rows * outd];
        crate::kernels::matmul_naive(&x, &w, &mut exact, rows, ind, outd);
        for (e, b) in exact
            .iter_mut()
            .zip(&bias.iter().cycle().take(rows * outd).copied().collect::<Vec<_>>())
        {
            *e += b;
        }
        let mut max_err = 0.0f32;
        let mut scale = 0.0f32;
        for (a, e) in out.iter().zip(&exact) {
            max_err = max_err.max((a - e).abs());
            scale = scale.max(e.abs());
        }
        // 8-bit symmetric quantization of both operands at d=48 stays
        // within a couple of percent of the exact product.
        assert!(max_err <= 0.05 * scale.max(1.0), "max_err {max_err} vs scale {scale}");
    }

    #[test]
    fn f16_linear_matches_simd_gemm_on_decoded_weights() {
        let (rows, ind, outd) = (5, 40, 24);
        let w = pseudo_data(ind * outd, 21);
        let bias = pseudo_data(outd, 22);
        let x = pseudo_data(rows * ind, 23);
        let f16 = F16Linear::encode(&w, &bias, ind, outd);
        let mut out = vec![0.0f32; rows * outd];
        let mut wbuf = Vec::new();
        f16.forward(&x, &mut out, rows, &mut wbuf);
        // Reference: decode then run the same SIMD kernel + bias add.
        let mut wdec = vec![0.0f32; ind * outd];
        decode_f16(&encode_f16(&w), &mut wdec);
        let mut reference = vec![0.0f32; rows * outd];
        crate::kernels::matmul_simd(&x, &wdec, &mut reference, rows, ind, outd);
        for r in 0..rows {
            for (o, &b) in reference[r * outd..(r + 1) * outd].iter_mut().zip(&bias) {
                *o += b;
            }
        }
        let same = out.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "F16Linear must equal SIMD GEMM over decoded weights bitwise");
    }

    #[test]
    fn zero_weight_rows_quantize_without_nan() {
        let (ind, outd) = (8, 4);
        let mut w = pseudo_data(ind * outd, 31);
        for i in 0..ind {
            w[i * outd + 2] = 0.0; // zero out one output column
        }
        let bias = vec![0.25f32; outd];
        let q = QuantLinear::quantize(&w, &bias, ind, outd, 0.0); // zero act scale too
        let x = pseudo_data(ind, 32);
        let mut out = vec![0.0f32; outd];
        let mut qx = QuantScratch::default();
        q.forward(&x, &mut out, 1, &mut qx);
        assert!(out.iter().all(|v| v.is_finite()));
        // With a zero activation scale every activation quantizes to 0, so
        // the output is exactly the bias.
        assert_eq!(out, vec![0.25f32; outd]);
    }
}
