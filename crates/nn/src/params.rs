//! Parameter storage decoupled from the autograd tape.
//!
//! A [`ParamStore`] owns the trainable tensors of a model together with
//! their accumulated gradients. Each training step builds a fresh
//! [`Graph`](crate::Graph), mounts parameters into it by [`ParamId`], runs
//! `backward`, and the gradients land back here where the optimizer
//! ([`Adam`](crate::Adam)) consumes them.

use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a parameter within its [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub usize);

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// Owns all trainable parameters of a model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an explicit initial value.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let (r, c) = value.shape();
        self.entries.push(ParamEntry { name: name.into(), grad: Tensor::zeros(r, c), value });
        ParamId(self.entries.len() - 1)
    }

    /// Registers a Xavier-initialized parameter.
    pub fn add_xavier(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut impl Rng,
    ) -> ParamId {
        self.add(name, Tensor::xavier(rows, cols, rng))
    }

    /// Registers a zero-initialized parameter (biases, LayerNorm β).
    pub fn add_zeros(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::zeros(rows, cols))
    }

    /// Registers a one-initialized parameter (LayerNorm γ).
    pub fn add_ones(&mut self, name: impl Into<String>, rows: usize, cols: usize) -> ParamId {
        self.add(name, Tensor::full(rows, cols, 1.0))
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights.
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// The parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable parameter value (used by the optimizer).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// The accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Accumulates `delta` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.entries[id.0].grad.add_scaled(delta, 1.0);
    }

    /// The parameter's registration name (debugging / introspection).
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zeroes all gradients (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill_zero();
        }
    }

    /// Global L2 norm of all gradients, for clipping and diagnostics.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| e.grad.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let factor = max_norm / norm;
            for e in &mut self.entries {
                for g in e.grad.data_mut() {
                    *g *= factor;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = store.add_zeros("b", 1, 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.scalar_count(), 6);
        assert_eq!(store.value(w).get(1, 0), 3.0);
        assert_eq!(store.value(b).data(), &[0., 0.]);
        assert_eq!(store.name(w), "w");
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 2));
        store.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![1., 2.]));
        store.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![1., 2.]));
        assert_eq!(store.grad(w).data(), &[2., 4.]);
        store.zero_grads();
        assert_eq!(store.grad(w).data(), &[0., 0.]);
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, 2));
        store.accumulate_grad(w, &Tensor::from_vec(1, 2, vec![3., 4.]));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.clip_grad_norm(10.0);
        assert!((store.grad_norm() - 5.0).abs() < 1e-6); // unchanged
        store.clip_grad_norm(1.0);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn serde_round_trip_preserves_values() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        store.accumulate_grad(w, &Tensor::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]));
        let json = serde_json::to_string(&store).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.value(w), store.value(w));
        assert_eq!(back.grad(w), store.grad(w));
        assert_eq!(back.name(w), "w");
    }

    #[test]
    fn ones_and_xavier_initializers() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = store.add_ones("gamma", 1, 4);
        let w = store.add_xavier("w", 4, 4, &mut rng);
        assert!(store.value(g).data().iter().all(|&v| v == 1.0));
        assert!(store.value(w).data().iter().any(|&v| v != 0.0));
    }
}
