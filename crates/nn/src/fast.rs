//! Graph-free inference for the **frozen** encoder.
//!
//! The autograd [`Graph`](crate::Graph) re-mounts every parameter tensor
//! into its arena on every forward (`Graph::param` copies ~10⁵ floats per
//! pooled encoding at the experiment scale) because training needs
//! per-node gradient slots. Inference over a frozen encoder needs none of
//! that, so a [`FastEncoder`] compiles the encoder + [`ParamStore`]
//! weights once into a flat plan and runs the whole pooled forward over
//! borrowed slices: no tape, no parameter copies, weight panels pre-packed
//! into tile strips at compile time ([`PackedGemm`]), attention heads run
//! as register-tile k-outer GEMMs over padded strips, and softmax/GELU use
//! the lane-parallel polynomial kernels ([`softmax_rows`], [`gelu_lanes`])
//! instead of per-element libm calls.
//!
//! Three storage/compute backends share the plan:
//!
//! * [`FastBackend::Simd`] — f32 weights, fma-class SIMD kernels.
//! * [`FastBackend::Int8`] — [`QuantLinear`] affine layers calibrated
//!   one-shot over the pre-training corpus ([`FastEncoder::to_int8`]).
//! * [`FastBackend::F16`] — f16-storage weights decoded on the fly.
//!
//! All three are **opt-in**: the paper-faithful f32 graph path stays the
//! default, and its exact-class rounding is untouched. Each backend is a
//! pure function of (weights, input): bitwise-identical across runs and
//! thread counts (the fast path is single-threaded per sequence — the
//! featurizer parallelizes across sequences, which composes with the
//! per-sequence determinism).

use crate::bert::BertEncoder;
use crate::kernels::{
    dot_lanes, gelu_lanes, kouter_pad, matmul_kouter_padded, reduce_sum_lanes, softmax_rows,
    PackedGemm,
};
use crate::layers::{Embedding, LayerNorm, Linear};
use crate::params::ParamStore;
use crate::quant::{self, F16Linear, QuantLinear, QuantScratch};
use crate::tensor::Tensor;

/// Storage/compute backend of a compiled [`FastEncoder`] plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastBackend {
    /// f32 weights through the SIMD microkernels (fma rounding class).
    Simd,
    /// int8 weights + activations with a dequant epilogue.
    Int8,
    /// f16-storage weights, decoded to f32 before the SIMD GEMM.
    F16,
}

impl FastBackend {
    /// Stable snake-case name (benchmark tables, smoke logs).
    pub fn name(self) -> &'static str {
        match self {
            FastBackend::Simd => "simd",
            FastBackend::Int8 => "int8",
            FastBackend::F16 => "f16",
        }
    }

    /// Per-backend span name for pooled forwards, so perf_report's
    /// pipeline-stage table separates simd/int8/f16 latency histograms.
    pub fn span_name(self) -> &'static str {
        match self {
            FastBackend::Simd => "nn.encoder.pooled_fast.simd",
            FastBackend::Int8 => "nn.encoder.pooled_fast.int8",
            FastBackend::F16 => "nn.encoder.pooled_fast.f16",
        }
    }
}

/// f32 affine layer of the plan (`w` is `[in][out]` row-major — the SIMD
/// GEMM's B layout). The weight panel is packed once at plan-compile time
/// ([`PackedGemm`]); the raw `w` is kept for the `to_int8`/`to_f16`
/// conversions.
#[derive(Debug, Clone)]
struct DenseF32 {
    w: Vec<f32>,
    packed: PackedGemm,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl DenseF32 {
    fn new(w: Vec<f32>, bias: Vec<f32>, in_dim: usize, out_dim: usize) -> Self {
        let packed = PackedGemm::pack(&w, in_dim, out_dim);
        DenseF32 { w, packed, bias, in_dim, out_dim }
    }

    fn forward(&self, x: &[f32], out: &mut [f32], rows: usize) {
        self.packed.run(x, out, rows);
        for r in 0..rows {
            let or = &mut out[r * self.out_dim..(r + 1) * self.out_dim];
            for (o, &b) in or.iter_mut().zip(&self.bias) {
                *o += b;
            }
        }
    }
}

/// One affine layer in any of the three storage formats.
#[derive(Debug, Clone)]
enum FastLinear {
    F32(DenseF32),
    F16(F16Linear),
    Int8(QuantLinear),
}

impl FastLinear {
    fn out_dim(&self) -> usize {
        match self {
            FastLinear::F32(l) => l.out_dim,
            FastLinear::F16(l) => l.out_dim,
            FastLinear::Int8(l) => l.out_dim,
        }
    }

    /// The scratch pieces are passed individually (not as `&mut Scratch`)
    /// so call sites can borrow other scratch fields as inputs/outputs in
    /// the same expression.
    fn forward(
        &self,
        x: &[f32],
        out: &mut [f32],
        rows: usize,
        quant: &mut QuantScratch,
        wbuf: &mut Vec<f32>,
    ) {
        match self {
            FastLinear::F32(l) => l.forward(x, out, rows),
            FastLinear::F16(l) => l.forward(x, out, rows, wbuf),
            FastLinear::Int8(l) => l.forward(x, out, rows, quant),
        }
    }
}

/// LayerNorm parameters (always f32 — they are `2·d` floats per site).
#[derive(Debug, Clone)]
struct FastNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
}

/// An embedding table in f32 or f16 storage.
#[derive(Debug, Clone)]
enum FastTable {
    F32 { data: Vec<f32>, dim: usize },
    F16 { data: Vec<u16>, dim: usize },
}

impl FastTable {
    fn rows(&self) -> usize {
        match self {
            FastTable::F32 { data, dim } => data.len() / dim,
            FastTable::F16 { data, dim } => data.len() / dim,
        }
    }

    /// `dst += table[idx]`.
    fn add_row(&self, idx: usize, dst: &mut [f32]) {
        match self {
            FastTable::F32 { data, dim } => {
                for (d, &s) in dst.iter_mut().zip(&data[idx * dim..(idx + 1) * dim]) {
                    *d += s;
                }
            }
            FastTable::F16 { data, dim } => {
                for (d, &s) in dst.iter_mut().zip(&data[idx * dim..(idx + 1) * dim]) {
                    *d += quant::f16_bits_to_f32(s);
                }
            }
        }
    }
}

/// One transformer block of the plan.
#[derive(Debug, Clone)]
struct FastBlock {
    wq: FastLinear,
    wk: FastLinear,
    wv: FastLinear,
    wo: FastLinear,
    attn_norm: FastNorm,
    ff1: FastLinear,
    ff2: FastLinear,
    ff_norm: FastNorm,
}

/// Per-call scratch buffers; every forward reuses the same allocations
/// within the call, and the struct is cheap enough to build per call (a
/// dozen empty `Vec`s), which keeps [`FastEncoder::pooled`] `&self` and
/// `Sync`.
#[derive(Default)]
struct Scratch {
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    scores: Vec<f32>,
    concat: Vec<f32>,
    ff: Vec<f32>,
    tmp: Vec<f32>,
    centered: Vec<f32>,
    /// Packed per-head query block, `[seq][dh]`, pre-scaled by `1/√dh`.
    qh: Vec<f32>,
    /// Per-head transposed key block, `[dh][npq]` (`npq`-padded rows).
    kt: Vec<f32>,
    /// Packed per-head value block, `[seq][npv]` (`npv`-padded rows).
    vh: Vec<f32>,
    /// Per-head attention output, `[seq][npv]`.
    av: Vec<f32>,
    /// Quantized-activation buffers for int8 layers.
    quant: QuantScratch,
    /// Decoded-weight panel for f16 layers.
    wbuf: Vec<f32>,
}

/// Row-wise layer normalization over `[rows][d]`, lane-reduced.
fn layer_norm_rows(h: &mut [f32], rows: usize, d: usize, norm: &FastNorm, centered: &mut Vec<f32>) {
    centered.clear();
    centered.resize(d, 0.0);
    for r in 0..rows {
        let row = &mut h[r * d..(r + 1) * d];
        let mean = reduce_sum_lanes(row) / d as f32;
        for (c, &x) in centered.iter_mut().zip(row.iter()) {
            *c = x - mean;
        }
        let var = dot_lanes(centered, centered) / d as f32;
        let inv_std = 1.0 / (var + crate::graph::LN_EPS).sqrt();
        for ((y, &c), (&g, &b)) in
            row.iter_mut().zip(centered.iter()).zip(norm.gamma.iter().zip(&norm.beta))
        {
            *y = g * (c * inv_std) + b;
        }
    }
}

/// Calibration-site observer: records the absmax of each quantized
/// layer's input activations. Site layout: `4·block + {0: attention
/// input, 1: head-concat (wo input), 2: ff1 input, 3: ff2 input}`, then
/// one final site for the pooler input.
fn observe(sites: &mut Option<&mut [f32]>, site: usize, x: &[f32]) {
    if let Some(s) = sites.as_deref_mut() {
        s[site] = s[site].max(quant::absmax(x));
    }
}

/// A compiled, immutable inference plan for a frozen [`BertEncoder`].
#[derive(Debug, Clone)]
pub struct FastEncoder {
    backend: FastBackend,
    d: usize,
    heads: usize,
    max_seq: usize,
    tok: FastTable,
    pos: FastTable,
    emb_norm: FastNorm,
    blocks: Vec<FastBlock>,
    pooler: FastLinear,
}

fn dense(store: &ParamStore, lin: &Linear) -> DenseF32 {
    DenseF32::new(
        store.value(lin.weight_id()).data().to_vec(),
        store.value(lin.bias_id()).data().to_vec(),
        lin.in_dim,
        lin.out_dim,
    )
}

fn norm(store: &ParamStore, ln: &LayerNorm) -> FastNorm {
    FastNorm {
        gamma: store.value(ln.gamma_id()).data().to_vec(),
        beta: store.value(ln.beta_id()).data().to_vec(),
    }
}

fn table(store: &ParamStore, emb: &Embedding) -> FastTable {
    FastTable::F32 { data: store.value(emb.table_id()).data().to_vec(), dim: emb.dim }
}

impl FastEncoder {
    /// Compiles the f32 SIMD plan from a trained encoder. The plan copies
    /// the weights once; the encoder and store are not borrowed after
    /// construction.
    pub fn from_bert(enc: &BertEncoder, store: &ParamStore) -> Self {
        let (token_emb, pos_emb, emb_norm, blocks, pooler) = enc.fast_parts();
        FastEncoder {
            backend: FastBackend::Simd,
            d: enc.config.d_model,
            heads: enc.config.n_heads,
            max_seq: enc.config.max_seq,
            tok: table(store, token_emb),
            pos: table(store, pos_emb),
            emb_norm: norm(store, emb_norm),
            blocks: blocks
                .iter()
                .map(|b| FastBlock {
                    wq: FastLinear::F32(dense(store, &b.wq)),
                    wk: FastLinear::F32(dense(store, &b.wk)),
                    wv: FastLinear::F32(dense(store, &b.wv)),
                    wo: FastLinear::F32(dense(store, &b.wo)),
                    attn_norm: norm(store, &b.attn_norm),
                    ff1: FastLinear::F32(dense(store, &b.ff1)),
                    ff2: FastLinear::F32(dense(store, &b.ff2)),
                    ff_norm: norm(store, &b.ff_norm),
                })
                .collect(),
            pooler: FastLinear::F32(dense(store, &pooler)),
        }
    }

    /// The plan's backend.
    pub fn backend(&self) -> FastBackend {
        self.backend
    }

    /// Hidden width of the plan.
    pub fn d_model(&self) -> usize {
        self.d
    }

    /// One-shot int8 quantization: runs the f32 plan over `calib` (token
    /// sequences from the pre-training corpus, already CLS/SEP-prepped),
    /// records per-site activation ranges, then quantizes every affine
    /// layer per-output-row. Embedding tables and LayerNorm parameters
    /// stay f32. Must be called on the [`FastBackend::Simd`] plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan is not the f32 SIMD plan or `calib` contains no
    /// non-empty sequence.
    pub fn to_int8(&self, calib: &[Vec<u32>]) -> Self {
        assert_eq!(self.backend, FastBackend::Simd, "quantize from the f32 SIMD plan");
        let n_sites = 4 * self.blocks.len() + 1;
        let mut sites = vec![0.0f32; n_sites];
        let mut seen = 0usize;
        for seq in calib {
            if seq.is_empty() {
                continue;
            }
            seen += 1;
            self.pooled_raw(seq, Some(sites.as_mut_slice()));
        }
        assert!(seen > 0, "int8 calibration requires a non-empty corpus");

        let quantize = |lin: &FastLinear, site: usize| -> FastLinear {
            let FastLinear::F32(l) = lin else { unreachable!("Simd plan holds f32 layers") };
            FastLinear::Int8(QuantLinear::quantize(&l.w, &l.bias, l.in_dim, l.out_dim, sites[site]))
        };
        FastEncoder {
            backend: FastBackend::Int8,
            blocks: self
                .blocks
                .iter()
                .enumerate()
                .map(|(i, b)| FastBlock {
                    wq: quantize(&b.wq, 4 * i),
                    wk: quantize(&b.wk, 4 * i),
                    wv: quantize(&b.wv, 4 * i),
                    wo: quantize(&b.wo, 4 * i + 1),
                    attn_norm: b.attn_norm.clone(),
                    ff1: quantize(&b.ff1, 4 * i + 2),
                    ff2: quantize(&b.ff2, 4 * i + 3),
                    ff_norm: b.ff_norm.clone(),
                })
                .collect(),
            pooler: quantize(&self.pooler, n_sites - 1),
            tok: self.tok.clone(),
            pos: self.pos.clone(),
            emb_norm: self.emb_norm.clone(),
            d: self.d,
            heads: self.heads,
            max_seq: self.max_seq,
        }
    }

    /// Re-encodes the plan with f16-storage weights and embedding tables
    /// (biases and LayerNorm parameters stay f32). Must be called on the
    /// [`FastBackend::Simd`] plan.
    pub fn to_f16(&self) -> Self {
        assert_eq!(self.backend, FastBackend::Simd, "encode f16 from the f32 SIMD plan");
        let f16 = |lin: &FastLinear| -> FastLinear {
            let FastLinear::F32(l) = lin else { unreachable!("Simd plan holds f32 layers") };
            FastLinear::F16(F16Linear::encode(&l.w, &l.bias, l.in_dim, l.out_dim))
        };
        let f16_table = |t: &FastTable| -> FastTable {
            let FastTable::F32 { data, dim } = t else {
                unreachable!("Simd plan holds f32 tables")
            };
            FastTable::F16 { data: quant::encode_f16(data), dim: *dim }
        };
        FastEncoder {
            backend: FastBackend::F16,
            blocks: self
                .blocks
                .iter()
                .map(|b| FastBlock {
                    wq: f16(&b.wq),
                    wk: f16(&b.wk),
                    wv: f16(&b.wv),
                    wo: f16(&b.wo),
                    attn_norm: b.attn_norm.clone(),
                    ff1: f16(&b.ff1),
                    ff2: f16(&b.ff2),
                    ff_norm: b.ff_norm.clone(),
                })
                .collect(),
            pooler: f16(&self.pooler),
            tok: f16_table(&self.tok),
            pos: f16_table(&self.pos),
            emb_norm: self.emb_norm.clone(),
            d: self.d,
            heads: self.heads,
            max_seq: self.max_seq,
        }
    }

    /// The pooled `[1, d]` encoding of a token sequence — the graph-free
    /// equivalent of [`BertEncoder::pooled`] under this plan's backend.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence (match the graph path's contract).
    pub fn pooled(&self, ids: &[u32]) -> Tensor {
        let _span = lsm_obs::span(self.backend.span_name());
        lsm_obs::add(lsm_obs::Counter::EncoderForwards, 1);
        Tensor::from_vec(1, self.d, self.pooled_raw(ids, None))
    }

    /// The full forward; `sites` switches on calibration recording.
    fn pooled_raw(&self, ids: &[u32], mut sites: Option<&mut [f32]>) -> Vec<f32> {
        assert!(!ids.is_empty(), "cannot encode an empty sequence");
        let ids = &ids[..ids.len().min(self.max_seq)];
        let (d, seq, heads) = (self.d, ids.len(), self.heads);
        let dh = d / heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut s = Scratch::default();

        // Embedding gather + position add, then the embedding LayerNorm.
        let mut h = vec![0.0f32; seq * d];
        for (i, &id) in ids.iter().enumerate() {
            let row = &mut h[i * d..(i + 1) * d];
            let idx = id as usize;
            assert!(idx < self.tok.rows(), "token id {idx} out of range");
            self.tok.add_row(idx, row);
            self.pos.add_row(i, row);
        }
        layer_norm_rows(&mut h, seq, d, &self.emb_norm, &mut s.centered);

        // Padded row strides for the attention register-tile GEMMs.
        let npq = kouter_pad(seq);
        let npv = kouter_pad(dh);

        for (bi, block) in self.blocks.iter().enumerate() {
            // Multi-head self-attention.
            observe(&mut sites, 4 * bi, &h);
            s.q.clear();
            s.q.resize(seq * d, 0.0);
            s.k.clear();
            s.k.resize(seq * d, 0.0);
            s.v.clear();
            s.v.resize(seq * d, 0.0);
            match (&block.wq, &block.wk, &block.wv) {
                (FastLinear::Int8(lq), FastLinear::Int8(lk), FastLinear::Int8(lv)) => {
                    // Q/K/V calibrate against the same input site, so their
                    // activation scales are identical: quantize + pack `h`
                    // once and stream it through all three integer GEMMs.
                    debug_assert_eq!(lq.act_scale().to_bits(), lk.act_scale().to_bits());
                    debug_assert_eq!(lq.act_scale().to_bits(), lv.act_scale().to_bits());
                    lq.quantize_acts(&h, seq, &mut s.quant);
                    lq.forward_acts(&s.quant, &mut s.q, seq);
                    lk.forward_acts(&s.quant, &mut s.k, seq);
                    lv.forward_acts(&s.quant, &mut s.v, seq);
                }
                _ => {
                    block.wq.forward(&h, &mut s.q, seq, &mut s.quant, &mut s.wbuf);
                    block.wk.forward(&h, &mut s.k, seq, &mut s.quant, &mut s.wbuf);
                    block.wv.forward(&h, &mut s.v, seq, &mut s.quant, &mut s.wbuf);
                }
            }
            s.scores.clear();
            s.scores.resize(seq * npq, 0.0);
            s.concat.clear();
            s.concat.resize(seq * d, 0.0);
            s.qh.clear();
            s.qh.resize(seq * dh, 0.0);
            s.kt.clear();
            s.kt.resize(dh * npq, 0.0);
            s.vh.clear();
            s.vh.resize(seq * npv, 0.0);
            s.av.clear();
            s.av.resize(seq * npv, 0.0);
            for hd in 0..heads {
                let (c0, c1) = (hd * dh, (hd + 1) * dh);
                // Pack this head: Q rows pre-scaled by 1/√dh (folding the
                // score scale into the cheaper [seq][dh] operand), K
                // transposed into npq-padded rows, V into npv-padded rows.
                // The zero pad lanes keep the register-tile GEMM's extra
                // lanes at exactly 0.0, so both attention products run with
                // their accumulator rows fully in vector registers.
                for r in 0..seq {
                    for (dst, &qv) in
                        s.qh[r * dh..(r + 1) * dh].iter_mut().zip(&s.q[r * d + c0..r * d + c1])
                    {
                        *dst = qv * scale;
                    }
                    s.vh[r * npv..r * npv + dh].copy_from_slice(&s.v[r * d + c0..r * d + c1]);
                    for (p, &kv) in s.k[r * d + c0..r * d + c1].iter().enumerate() {
                        s.kt[p * npq + r] = kv;
                    }
                }
                matmul_kouter_padded(&s.qh, dh, &s.kt, &mut s.scores, seq, dh, npq);
                softmax_rows(&mut s.scores, seq, seq, npq);
                matmul_kouter_padded(&s.scores, npq, &s.vh, &mut s.av, seq, seq, npv);
                for r in 0..seq {
                    s.concat[r * d + c0..r * d + c1].copy_from_slice(&s.av[r * npv..r * npv + dh]);
                }
            }
            observe(&mut sites, 4 * bi + 1, &s.concat);
            s.tmp.clear();
            s.tmp.resize(seq * d, 0.0);
            block.wo.forward(&s.concat, &mut s.tmp, seq, &mut s.quant, &mut s.wbuf);
            for (hv, &p) in h.iter_mut().zip(&s.tmp) {
                *hv += p; // residual
            }
            layer_norm_rows(&mut h, seq, d, &block.attn_norm, &mut s.centered);

            // Feed-forward.
            observe(&mut sites, 4 * bi + 2, &h);
            let d_ff = block.ff1.out_dim();
            s.ff.clear();
            s.ff.resize(seq * d_ff, 0.0);
            block.ff1.forward(&h, &mut s.ff, seq, &mut s.quant, &mut s.wbuf);
            gelu_lanes(&mut s.ff);
            observe(&mut sites, 4 * bi + 3, &s.ff);
            block.ff2.forward(&s.ff, &mut s.tmp, seq, &mut s.quant, &mut s.wbuf);
            for (hv, &p) in h.iter_mut().zip(&s.tmp) {
                *hv += p; // residual
            }
            layer_norm_rows(&mut h, seq, d, &block.ff_norm, &mut s.centered);
        }

        // Pool: tanh(W · E'[CLS] + b).
        let cls = &h[..d];
        observe(&mut sites, 4 * self.blocks.len(), cls);
        let mut pooled = vec![0.0f32; d];
        self.pooler.forward(cls, &mut pooled, 1, &mut s.quant, &mut s.wbuf);
        for v in pooled.iter_mut() {
            *v = v.tanh();
        }
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::BertConfig;
    use crate::graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(seed: u64) -> (BertEncoder, ParamStore) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let enc = BertEncoder::new(BertConfig::tiny(30), &mut store, &mut rng);
        (enc, store)
    }

    fn graph_pooled(enc: &BertEncoder, store: &ParamStore, ids: &[u32]) -> Vec<f32> {
        let mut g = Graph::for_inference();
        let p = enc.pooled(&mut g, store, ids);
        g.value(p).data().to_vec()
    }

    #[test]
    fn simd_plan_tracks_graph_path_closely() {
        let (enc, store) = setup(7);
        let fast = FastEncoder::from_bert(&enc, &store);
        for ids in [vec![1u32, 7, 8, 2], vec![3], (0..30u32).map(|i| i % 29).collect()] {
            let reference = graph_pooled(&enc, &store, &ids);
            let got = fast.pooled(&ids);
            assert_eq!(got.shape(), (1, enc.config.d_model));
            for (a, b) in reference.iter().zip(got.data()) {
                // Same math, different rounding class: tight but not bitwise.
                assert!((a - b).abs() < 1e-4, "graph {a} vs fast {b}");
            }
        }
    }

    #[test]
    fn simd_plan_is_deterministic_across_runs() {
        let (enc, store) = setup(8);
        let fast = FastEncoder::from_bert(&enc, &store);
        let fast2 = FastEncoder::from_bert(&enc, &store);
        let ids = vec![1u32, 9, 4, 2, 2, 17];
        let a = fast.pooled(&ids);
        let b = fast2.pooled(&ids);
        let c = fast.pooled(&ids);
        assert!(a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(a.data().iter().zip(c.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn int8_plan_is_deterministic_and_close() {
        let (enc, store) = setup(9);
        let fast = FastEncoder::from_bert(&enc, &store);
        let calib: Vec<Vec<u32>> = (0..8).map(|i| vec![1, 3 + i, 5, 2 + i, 2]).collect();
        let q = fast.to_int8(&calib);
        assert_eq!(q.backend(), FastBackend::Int8);
        let ids = vec![1u32, 5, 7, 2];
        let a = q.pooled(&ids);
        // Re-quantize from scratch: calibration and quantization are pure.
        let q2 = fast.to_int8(&calib);
        let b = q2.pooled(&ids);
        assert!(a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
        // tanh-pooled outputs live in [-1, 1]; int8 noise stays small.
        let f = fast.pooled(&ids);
        for (x, y) in f.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 0.15, "f32 {x} vs int8 {y}");
        }
    }

    #[test]
    fn f16_plan_is_deterministic_and_close() {
        let (enc, store) = setup(10);
        let fast = FastEncoder::from_bert(&enc, &store);
        let h = fast.to_f16();
        assert_eq!(h.backend(), FastBackend::F16);
        let ids = vec![1u32, 6, 3, 11, 2];
        let a = h.pooled(&ids);
        let b = fast.to_f16().pooled(&ids);
        assert!(a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
        let f = fast.pooled(&ids);
        for (x, y) in f.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 2e-2, "f32 {x} vs f16 {y}");
        }
    }

    #[test]
    fn truncates_to_max_seq_like_the_graph_path() {
        let (enc, store) = setup(11);
        let fast = FastEncoder::from_bert(&enc, &store);
        let long: Vec<u32> = (0..100).map(|i| 5 + (i % 20)).collect();
        let truncated = &long[..enc.config.max_seq];
        let a = fast.pooled(&long);
        let b = fast.pooled(truncated);
        assert!(a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn rejects_empty_sequences() {
        let (enc, store) = setup(12);
        FastEncoder::from_bert(&enc, &store).pooled(&[]);
    }

    #[test]
    #[should_panic(expected = "non-empty corpus")]
    fn int8_requires_calibration_data() {
        let (enc, store) = setup(13);
        FastEncoder::from_bert(&enc, &store).to_int8(&[]);
    }
}
