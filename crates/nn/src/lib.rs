//! # lsm-nn
//!
//! A minimal, dependency-light neural-network library: 2-D tensors, a
//! tape-based reverse-mode autograd graph, Adam, and a mini-BERT
//! transformer encoder with WordPiece-style subword tokenization and
//! masked-language-model pre-training.
//!
//! This crate is the substrate for the paper's *BERT featurizer*
//! (Section IV-C1). The real system fine-tunes a 110M-parameter BERT
//! pre-trained on Books+Wikipedia; our substitution is a from-scratch
//! transformer of the same architecture family (token+position embeddings →
//! stacked self-attention blocks → `[CLS]` pooler → classifier head),
//! MLM-pre-trained on the synthetic domain corpus of `lsm-lexicon`. Both the
//! pre-training objective and the downstream pair-classification interface
//! match the paper; only the scale differs.
//!
//! Design notes:
//!
//! * Tensors are dense 2-D `f32` matrices — sequences are `[seq, d]`,
//!   batches are looped. At the model sizes this repo uses (d ≈ 64,
//!   seq ≤ 48) this is faster than shape bookkeeping would be.
//! * Autograd is a flat tape ([`graph::Graph`]) with an explicit `Op`
//!   enum; `backward` walks the tape in reverse. No shared-ownership
//!   indirection, fully checkable by finite differences (see the property
//!   tests in `graph::tests`).
//! * Parameters live outside the tape in a [`params::ParamStore`], so one
//!   model can be run through many forward graphs (one per step) while the
//!   optimizer state persists.
//! * The GEMM under everything is a cache-blocked, register-tiled kernel
//!   ([`kernels`]) with a row-partitioned multithreaded driver that is
//!   bitwise-identical to the serial path at every thread count; graphs
//!   support arena reuse ([`graph::Graph::reset`]) and a forward-only
//!   inference mode for the featurizer hot path.
//! * The *frozen* encoder additionally compiles into a graph-free
//!   [`fast::FastEncoder`] plan (SIMD f32, one-shot-calibrated int8, or
//!   f16 storage — see [`quant`]); the paper-faithful f32 graph path stays
//!   the default and keeps its exact rounding class.

#![forbid(unsafe_code)]

pub mod bert;
pub mod bpe;
pub mod fast;
pub mod graph;
pub mod kernels;
pub mod layers;
pub mod mlm;
pub mod optim;
pub mod params;
pub mod quant;
pub mod tensor;

pub use bert::{BertConfig, BertEncoder, PairClassifier};
pub use bpe::{BpeVocab, SpecialToken};
pub use fast::{FastBackend, FastEncoder};
pub use graph::{Graph, NodeId};
pub use kernels::{KernelVariant, RoundingClass};
pub use mlm::{MlmConfig, MlmTrainer};
pub use optim::{Adam, AdamConfig};
pub use params::{ParamId, ParamStore};
pub use quant::{F16Linear, QuantLinear, QuantScratch};
pub use tensor::Tensor;
