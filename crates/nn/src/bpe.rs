//! Byte-pair-encoding subword vocabulary (WordPiece surrogate).
//!
//! BERT's WordPiece tokenizer lets the model handle words it never saw —
//! the critical property for customer abbreviations like `qty` or `ean`.
//! We train a classic character-level BPE on the synthetic domain corpus:
//! start from single characters, repeatedly merge the most frequent adjacent
//! pair. At encode time a word is split into characters and merges are
//! replayed in rank order, so any in-alphabet word gets *some* subword
//! decomposition and out-of-alphabet characters map to `[UNK]`.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// The special tokens, with fixed ids `0..=4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialToken {
    /// Padding.
    Pad,
    /// Sequence-start classifier token.
    Cls,
    /// Separator between sentence segments.
    Sep,
    /// Masked-token placeholder for MLM.
    Mask,
    /// Unknown character fallback.
    Unk,
}

impl SpecialToken {
    /// The token id.
    pub fn id(self) -> u32 {
        match self {
            SpecialToken::Pad => 0,
            SpecialToken::Cls => 1,
            SpecialToken::Sep => 2,
            SpecialToken::Mask => 3,
            SpecialToken::Unk => 4,
        }
    }

    /// The surface form.
    pub fn piece(self) -> &'static str {
        match self {
            SpecialToken::Pad => "[PAD]",
            SpecialToken::Cls => "[CLS]",
            SpecialToken::Sep => "[SEP]",
            SpecialToken::Mask => "[MASK]",
            SpecialToken::Unk => "[UNK]",
        }
    }

    /// All special tokens in id order.
    pub const ALL: [SpecialToken; 5] = [
        SpecialToken::Pad,
        SpecialToken::Cls,
        SpecialToken::Sep,
        SpecialToken::Mask,
        SpecialToken::Unk,
    ];
}

/// A trained BPE vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "BpeVocabData", into = "BpeVocabData")]
pub struct BpeVocab {
    /// piece string → id. Lookup-only, so hash order never observable.
    piece_to_id: HashMap<String, u32>,
    /// id → piece string.
    id_to_piece: Vec<String>,
    /// `(left, right) → rank`; lower rank merges first. Ordered so that
    /// serialization and vocabulary assembly iterate deterministically.
    merge_ranks: BTreeMap<(String, String), usize>,
}

/// Serialization form of a [`BpeVocab`]: the piece list and the merge
/// operations in rank order (JSON maps cannot key on tuples).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeVocabData {
    /// id → piece.
    pub pieces: Vec<String>,
    /// Merge operations, lowest rank first.
    pub merges: Vec<(String, String)>,
}

impl From<BpeVocab> for BpeVocabData {
    fn from(v: BpeVocab) -> Self {
        let mut merges: Vec<((String, String), usize)> = v.merge_ranks.into_iter().collect();
        merges.sort_by_key(|&(_, rank)| rank);
        BpeVocabData {
            pieces: v.id_to_piece,
            merges: merges.into_iter().map(|(pair, _)| pair).collect(),
        }
    }
}

impl From<BpeVocabData> for BpeVocab {
    fn from(d: BpeVocabData) -> Self {
        let piece_to_id = d.pieces.iter().enumerate().map(|(i, p)| (p.clone(), i as u32)).collect();
        let merge_ranks =
            d.merges.into_iter().enumerate().map(|(rank, pair)| (pair, rank)).collect();
        BpeVocab { piece_to_id, id_to_piece: d.pieces, merge_ranks }
    }
}

impl BpeVocab {
    /// Trains a BPE vocabulary on tokenized sentences.
    ///
    /// `merges` bounds the number of merge operations (vocabulary size is
    /// roughly `5 + |alphabet| + merges`).
    pub fn train<S: AsRef<str>>(corpus: &[Vec<S>], merges: usize) -> Self {
        // Word frequency table, each word as a symbol sequence. Ordered maps
        // throughout training: pair selection and vocabulary assembly
        // iterate these tables, and bucket order must not leak into ranks.
        let mut word_freqs: BTreeMap<Vec<String>, usize> = BTreeMap::new();
        for sent in corpus {
            for word in sent {
                let symbols: Vec<String> = word.as_ref().chars().map(|c| c.to_string()).collect();
                if !symbols.is_empty() {
                    *word_freqs.entry(symbols).or_insert(0) += 1;
                }
            }
        }

        let mut merge_ranks: BTreeMap<(String, String), usize> = BTreeMap::new();
        for rank in 0..merges {
            // Count adjacent pairs.
            let mut pair_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
            for (word, &freq) in &word_freqs {
                for w in word.windows(2) {
                    *pair_counts.entry((w[0].clone(), w[1].clone())).or_insert(0) += freq;
                }
            }
            // Deterministic best pair: max count, ties by lexicographic order.
            let Some((best_pair, best_count)) =
                pair_counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            else {
                break;
            };
            if best_count < 2 {
                break; // no productive merges left
            }
            merge_ranks.insert(best_pair.clone(), rank);
            // Apply the merge to every word.
            let merged_symbol = format!("{}{}", best_pair.0, best_pair.1);
            let mut next: BTreeMap<Vec<String>, usize> = BTreeMap::new();
            for (word, freq) in word_freqs {
                let mut out: Vec<String> = Vec::with_capacity(word.len());
                let mut i = 0;
                while i < word.len() {
                    if i + 1 < word.len() && word[i] == best_pair.0 && word[i + 1] == best_pair.1 {
                        out.push(merged_symbol.clone());
                        i += 2;
                    } else {
                        out.push(word[i].clone());
                        i += 1;
                    }
                }
                *next.entry(out).or_insert(0) += freq;
            }
            word_freqs = next;
        }

        // Assemble the vocabulary: specials, then alphabet + merge products,
        // sorted for determinism.
        let mut pieces: Vec<String> = Vec::new();
        for word in word_freqs.keys() {
            for s in word {
                if !pieces.contains(s) {
                    pieces.push(s.clone());
                }
            }
        }
        // Single characters that were fully merged away still need entries
        // (encode starts from characters).
        let mut chars: Vec<String> = Vec::new();
        for (a, b) in merge_ranks.keys() {
            for s in [a, b] {
                if s.chars().count() == 1 && !chars.contains(s) {
                    chars.push(s.clone());
                }
            }
        }
        for (a, b) in merge_ranks.keys() {
            let m = format!("{a}{b}");
            if !pieces.contains(&m) {
                pieces.push(m);
            }
        }
        for c in chars {
            if !pieces.contains(&c) {
                pieces.push(c);
            }
        }
        pieces.sort_unstable();
        pieces.dedup();

        let mut id_to_piece: Vec<String> =
            SpecialToken::ALL.iter().map(|s| s.piece().to_string()).collect();
        id_to_piece.extend(pieces);
        let piece_to_id =
            id_to_piece.iter().enumerate().map(|(i, p)| (p.clone(), i as u32)).collect();
        BpeVocab { piece_to_id, id_to_piece, merge_ranks }
    }

    /// Vocabulary size including specials.
    pub fn size(&self) -> usize {
        self.id_to_piece.len()
    }

    /// The piece string for an id.
    pub fn piece(&self, id: u32) -> &str {
        &self.id_to_piece[id as usize]
    }

    /// The id of an exact piece, if present.
    pub fn id_of(&self, piece: &str) -> Option<u32> {
        self.piece_to_id.get(piece).copied()
    }

    /// Splits one word into subword pieces by replaying merges in rank
    /// order. Characters outside the alphabet become `[UNK]`.
    pub fn encode_word(&self, word: &str) -> Vec<u32> {
        let mut symbols: Vec<String> = word.chars().map(|c| c.to_string()).collect();
        if symbols.is_empty() {
            return Vec::new();
        }
        loop {
            // Find the adjacent pair with the lowest merge rank.
            let mut best: Option<(usize, usize)> = None; // (position, rank)
            for i in 0..symbols.len() - 1 {
                if let Some(&rank) =
                    self.merge_ranks.get(&(symbols[i].clone(), symbols[i + 1].clone()))
                {
                    if best.is_none_or(|(_, r)| rank < r) {
                        best = Some((i, rank));
                    }
                }
            }
            let Some((pos, _)) = best else { break };
            let merged = format!("{}{}", symbols[pos], symbols[pos + 1]);
            symbols.splice(pos..pos + 2, [merged]);
        }
        symbols.iter().map(|s| self.id_of(s).unwrap_or(SpecialToken::Unk.id())).collect()
    }

    /// Encodes a sequence of words, concatenating their subword pieces.
    pub fn encode_words<S: AsRef<str>>(&self, words: &[S]) -> Vec<u32> {
        words.iter().flat_map(|w| self.encode_word(w.as_ref())).collect()
    }

    /// Ids that are real content pieces (not special tokens); used to sample
    /// random replacement tokens during MLM.
    pub fn content_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (SpecialToken::ALL.len() as u32..self.size() as u32).filter(move |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<&'static str>> {
        vec![
            vec!["the", "order", "total", "amount"],
            vec!["the", "order", "line", "amount"],
            vec!["total", "order", "amount", "order"],
            vec!["quantity", "of", "the", "order"],
            vec!["amount", "and", "quantity"],
        ]
    }

    #[test]
    fn special_tokens_have_fixed_ids() {
        let v = BpeVocab::train(&corpus(), 20);
        assert_eq!(v.id_of("[CLS]"), Some(1));
        assert_eq!(v.id_of("[MASK]"), Some(3));
        assert_eq!(v.piece(0), "[PAD]");
    }

    #[test]
    fn frequent_words_become_single_pieces() {
        let v = BpeVocab::train(&corpus(), 200);
        // "order" appears 6 times — after enough merges it is one piece.
        let ids = v.encode_word("order");
        assert_eq!(
            ids.len(),
            1,
            "pieces: {:?}",
            ids.iter().map(|&i| v.piece(i)).collect::<Vec<_>>()
        );
        assert_eq!(v.piece(ids[0]), "order");
    }

    #[test]
    fn unseen_words_decompose_into_subwords() {
        let v = BpeVocab::train(&corpus(), 200);
        // "reorder" was never seen but shares subword structure.
        let ids = v.encode_word("reorder");
        assert!(!ids.is_empty());
        assert!(ids.iter().all(|&i| v.piece(i) != "[UNK]"));
        let joined: String = ids.iter().map(|&i| v.piece(i)).collect();
        assert_eq!(joined, "reorder");
    }

    #[test]
    fn out_of_alphabet_chars_are_unk() {
        let v = BpeVocab::train(&corpus(), 20);
        let ids = v.encode_word("ça");
        assert!(ids.contains(&SpecialToken::Unk.id()));
    }

    #[test]
    fn encoding_round_trips_characters() {
        let v = BpeVocab::train(&corpus(), 50);
        for word in ["order", "total", "quantity", "amount", "ordertotal"] {
            let ids = v.encode_word(word);
            let joined: String = ids.iter().map(|&i| v.piece(i)).collect();
            assert_eq!(joined, word);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = BpeVocab::train(&corpus(), 30);
        let b = BpeVocab::train(&corpus(), 30);
        assert_eq!(a.size(), b.size());
        assert_eq!(a.encode_word("quantity"), b.encode_word("quantity"));
    }

    #[test]
    fn encode_words_concatenates() {
        let v = BpeVocab::train(&corpus(), 100);
        let joined = v.encode_words(&["order", "amount"]);
        let separate: Vec<u32> =
            v.encode_word("order").into_iter().chain(v.encode_word("amount")).collect();
        assert_eq!(joined, separate);
    }

    #[test]
    fn serde_round_trip_preserves_encoding() {
        let v = BpeVocab::train(&corpus(), 100);
        let json = serde_json::to_string(&v).unwrap();
        let back: BpeVocab = serde_json::from_str(&json).unwrap();
        assert_eq!(back.size(), v.size());
        for word in ["order", "quantity", "reorder", "zzz"] {
            assert_eq!(back.encode_word(word), v.encode_word(word), "{word}");
        }
    }

    #[test]
    fn empty_word_is_empty() {
        let v = BpeVocab::train(&corpus(), 10);
        assert!(v.encode_word("").is_empty());
    }
}
