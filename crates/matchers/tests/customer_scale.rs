//! Baselines against a generated customer at reduced scale: the Section III
//! failure modes must show up — scores are valid, but top-3 accuracy on a
//! hard customer stays far from the near-perfect public-schema regime.

use lsm_baselines::coma::Coma;
use lsm_baselines::cupid::Cupid;
use lsm_baselines::flooding::SimilarityFlooding;
use lsm_baselines::mlm::Mlm;
use lsm_baselines::smatch::SMatch;
use lsm_baselines::tune::grid_search;
use lsm_baselines::{MatchContext, Matcher};
use lsm_datasets::customers::{generate_customer, CustomerSpec};
use lsm_datasets::iss::{generate_retail_iss, IssConfig};
use lsm_datasets::rename::{NamingStyle, RenameMix};
use lsm_datasets::Dataset;
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::full_lexicon;
use lsm_schema::AttrId;

fn customer() -> (lsm_lexicon::Lexicon, Dataset) {
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::small());
    let spec = CustomerSpec {
        name: "Scale Customer",
        entities: 4,
        attributes: 28,
        foreign_keys: 3,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0x5ca1e,
    };
    let d = generate_customer(&iss, &lexicon, spec, 21);
    (lexicon, d)
}

#[test]
fn all_baselines_produce_valid_scores_on_a_customer() {
    let (lexicon, d) = customer();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let sources: Vec<AttrId> = d.source.attr_ids().collect();
    let matchers: Vec<(&str, lsm_schema::ScoreMatrix)> = vec![
        ("CUPID", Cupid::new(0.2).score(&ctx, &d.source, &d.target)),
        (
            "COMA",
            Coma::new(lsm_baselines::coma::Aggregation::Max).score(&ctx, &d.source, &d.target),
        ),
        ("SM", SMatch.score(&ctx, &d.source, &d.target)),
        ("SF", SimilarityFlooding::default().score(&ctx, &d.source, &d.target)),
        ("MLM", Mlm::default().score(&ctx, &d.source, &d.target)),
    ];
    for (name, m) in &matchers {
        let acc = m.top_k_accuracy(&d.ground_truth, &sources, 3);
        assert!((0.0..=1.0).contains(&acc), "{name}: {acc}");
        // The customer regime: nobody gets close to the public-schema 1.0.
        assert!(acc < 0.9, "{name} suspiciously perfect on a hard customer: {acc}");
        // MRR is consistent with top-1 accuracy as a lower bound.
        let mrr = m.mean_reciprocal_rank(&d.ground_truth, &sources);
        let top1 = m.top_k_accuracy(&d.ground_truth, &sources, 1);
        assert!(mrr + 1e-9 >= top1, "{name}: mrr {mrr} < top-1 {top1}");
    }
}

#[test]
fn grid_search_never_hurts() {
    let (lexicon, d) = customer();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let sources: Vec<AttrId> = d.source.attr_ids().collect();
    let fixed = Cupid::new(0.0).score(&ctx, &d.source, &d.target);
    let fixed_acc = fixed.top_k_accuracy(&d.ground_truth, &sources, 3);
    let tuned = grid_search(Cupid::grid(), &ctx, &d.source, &d.target, &d.ground_truth, 3);
    assert!(tuned.accuracy + 1e-9 >= fixed_acc);
}

#[test]
fn one_to_one_extraction_is_injective_on_customer_scores() {
    let (lexicon, d) = customer();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let m = Cupid::new(0.2).score(&ctx, &d.source, &d.target);
    let pairs = m.extract_one_to_one(0.0);
    let mut seen_s = std::collections::HashSet::new();
    let mut seen_t = std::collections::HashSet::new();
    for (s, t, _) in &pairs {
        assert!(seen_s.insert(*s), "source {s} reused");
        assert!(seen_t.insert(*t), "target {t} reused");
    }
    // Every source can be assigned (targets outnumber sources).
    assert_eq!(pairs.len(), d.source.attr_count());
}
