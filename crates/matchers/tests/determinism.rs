//! Property-based determinism tests for the scoring paths the static
//! analysis guards (lint rule R1): training and scoring twice on the same
//! inputs must produce bitwise-identical matrices. The float folds inside
//! LSD's naive-Bayes normalization and the TF-IDF embedding would break
//! this under `HashMap` iteration, whose order differs between instances
//! even within one process.

use lsm_baselines::coma::{Aggregation, Coma};
use lsm_baselines::cupid::Cupid;
use lsm_baselines::lsd::Lsd;
use lsm_baselines::{MatchContext, Matcher};
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::{full_lexicon, Lexicon};
use lsm_schema::{AttrId, DataType, Schema, ScoreMatrix};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The embedding space is expensive; share one across all cases.
fn shared() -> &'static (Lexicon, EmbeddingSpace) {
    static SHARED: OnceLock<(Lexicon, EmbeddingSpace)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let lexicon = full_lexicon();
        let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
        (lexicon, embedding)
    })
}

/// Word pool for generated attribute names and descriptions; overlapping
/// words across attributes exercise the shared TF-IDF/NB vocabulary.
const WORDS: &[&str] = &[
    "order", "total", "customer", "city", "price", "item", "date", "name", "status", "amount",
    "zip", "phone", "email", "quantity",
];

/// One generated attribute: two word indices and whether it has a
/// description.
type AttrGene = (usize, usize, bool);

fn schema_from(name: &str, attrs: &[AttrGene]) -> Schema {
    let mut b = Schema::builder(name).entity("E");
    for (i, &(w1, w2, described)) in attrs.iter().enumerate() {
        let a = WORDS[w1 % WORDS.len()];
        let b_word = WORDS[w2 % WORDS.len()];
        let attr_name = format!("{a}_{b_word}_{i}");
        if described {
            let desc = format!("the {b_word} {a} recorded for this row");
            b = b.attr_desc(attr_name, DataType::Text, desc);
        } else {
            b = b.attr(attr_name, DataType::Text);
        }
    }
    b.build().expect("generated schema is valid")
}

/// All matrix entries as raw bits, so comparison is exact (no epsilon).
fn bits(m: &ScoreMatrix, s: &Schema, t: &Schema) -> Vec<u64> {
    let mut out = Vec::new();
    for a in s.attr_ids() {
        for b in t.attr_ids() {
            out.push(m.get(a, b).to_bits());
        }
    }
    out
}

fn pair_strategy() -> impl Strategy<Value = (Vec<AttrGene>, Vec<AttrGene>, Vec<(usize, usize)>)> {
    let gene = || (0usize..WORDS.len(), 0usize..WORDS.len(), proptest::bool::ANY);
    (
        proptest::collection::vec(gene(), 1..6),
        proptest::collection::vec(gene(), 1..5),
        proptest::collection::vec((0usize..16, 0usize..16), 1..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lsd_scores_are_bitwise_reproducible(
        (src, tgt, raw_examples) in pair_strategy()
    ) {
        let (lexicon, embedding) = shared();
        let ctx = MatchContext { embedding, lexicon };
        let source = schema_from("s", &src);
        let target = schema_from("t", &tgt);
        let src_ids: Vec<AttrId> = source.attr_ids().collect();
        let tgt_ids: Vec<AttrId> = target.attr_ids().collect();
        let examples: Vec<(AttrId, AttrId)> = raw_examples
            .iter()
            .map(|&(a, b)| (src_ids[a % src_ids.len()], tgt_ids[b % tgt_ids.len()]))
            .collect();

        let run = || {
            let mut lsd = Lsd::new();
            lsd.train(&ctx, &source, &target, &examples);
            lsd.score(&ctx, &source, &target)
        };
        let first = run();
        let second = run();
        prop_assert_eq!(
            bits(&first, &source, &target),
            bits(&second, &source, &target),
            "LSD scores must not depend on map iteration order"
        );
    }

    #[test]
    fn unsupervised_matcher_scores_are_bitwise_reproducible(
        (src, tgt, _) in pair_strategy()
    ) {
        let (lexicon, embedding) = shared();
        let ctx = MatchContext { embedding, lexicon };
        let source = schema_from("s", &src);
        let target = schema_from("t", &tgt);

        let coma = Coma::new(Aggregation::TopTwoAverage);
        prop_assert_eq!(
            bits(&coma.score(&ctx, &source, &target), &source, &target),
            bits(&coma.score(&ctx, &source, &target), &source, &target)
        );
        let cupid = Cupid::new(0.5);
        prop_assert_eq!(
            bits(&cupid.score(&ctx, &source, &target), &source, &target),
            bits(&cupid.score(&ctx, &source, &target), &source, &target)
        );
    }
}
