//! MLM: schema featurization + k-means clustering (Sahay et al., 2019).
//!
//! MLM "featurizes the candidate matches using both the schema
//! specifications and the data records", then clusters with k-means.
//! Adapted to the data-free setting (as the paper does), the features are
//! schema-level only: an embedding of the attribute name plus structural
//! features (name length, token count, dtype family, key-ness). All source
//! and target attributes are embedded into the same feature space and
//! clustered; a pair's score combines cluster co-membership and feature
//! distance.

use crate::{MatchContext, Matcher};
use lsm_schema::{DataType, Schema, ScoreMatrix};
use lsm_text::tokenize;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// MLM with a fixed cluster count and seed.
#[derive(Debug, Clone, Copy)]
pub struct Mlm {
    /// Number of k-means clusters.
    pub clusters: usize,
    /// k-means iterations.
    pub iterations: usize,
    /// PRNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for Mlm {
    fn default() -> Self {
        Mlm { clusters: 12, iterations: 15, seed: 0x31a7 }
    }
}

fn dtype_onehot(d: DataType) -> [f32; 4] {
    use lsm_schema::dtype::TypeFamily::*;
    let mut v = [0.0; 4];
    let idx = match d.family() {
        Numeric => 0,
        Textual => 1,
        Temporal => 2,
        Binary => 3,
    };
    v[idx] = 1.0;
    v
}

fn featurize(ctx: &MatchContext<'_>, schema: &Schema, a: lsm_schema::AttrId) -> Vec<f32> {
    let attr = schema.attr(a);
    let mut v = ctx.embedding.identifier_vector(&attr.name);
    let tokens = tokenize(&attr.name);
    v.push(attr.name.len() as f32 / 32.0);
    v.push(tokens.len() as f32 / 6.0);
    v.extend(dtype_onehot(attr.dtype));
    v.push(if schema.entity_of(a).is_key(a) { 1.0 } else { 0.0 });
    v
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Plain k-means over row vectors; returns per-point assignments.
fn kmeans(points: &[Vec<f32>], k: usize, iterations: usize, seed: u64) -> Vec<usize> {
    assert!(!points.is_empty());
    let k = k.min(points.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f32>> = idx[..k].iter().map(|&i| points[i].clone()).collect();
    let dim = points[0].len();
    let mut assign = vec![0usize; points.len()];
    for _ in 0..iterations {
        // Assign.
        for (pi, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (ci, c) in centroids.iter().enumerate() {
                let d = sq_dist(p, c);
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            assign[pi] = best;
        }
        // Update.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (pi, p) in points.iter().enumerate() {
            counts[assign[pi]] += 1;
            for (s, &x) in sums[assign[pi]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for ci in 0..k {
            if counts[ci] > 0 {
                for s in &mut sums[ci] {
                    *s /= counts[ci] as f32;
                }
                centroids[ci] = sums[ci].clone();
            }
        }
    }
    assign
}

impl Matcher for Mlm {
    fn name(&self) -> String {
        format!("MLM(k={})", self.clusters)
    }

    fn score(&self, ctx: &MatchContext<'_>, source: &Schema, target: &Schema) -> ScoreMatrix {
        let _span = lsm_obs::span("baseline.mlm");
        let s_feats: Vec<Vec<f32>> = source.attr_ids().map(|a| featurize(ctx, source, a)).collect();
        let t_feats: Vec<Vec<f32>> = target.attr_ids().map(|a| featurize(ctx, target, a)).collect();
        let mut all = s_feats.clone();
        all.extend(t_feats.iter().cloned());
        let assign = kmeans(&all, self.clusters, self.iterations, self.seed);
        let (s_assign, t_assign) = assign.split_at(s_feats.len());

        let mut m = ScoreMatrix::zeros(source.attr_count(), target.attr_count());
        for s in source.attr_ids() {
            for t in target.attr_ids() {
                let proximity =
                    1.0 / (1.0 + sq_dist(&s_feats[s.index()], &t_feats[t.index()]) as f64);
                let same_cluster =
                    if s_assign[s.index()] == t_assign[t.index()] { 1.0 } else { 0.0 };
                m.set(s, t, 0.5 * proximity + 0.5 * same_cluster * proximity);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_schema::{AttrId, DataType};

    fn fixtures() -> (lsm_lexicon::Lexicon, EmbeddingSpace) {
        let lex = full_lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        (lex, emb)
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + i as f32 * 0.01, 0.0]);
            points.push(vec![10.0 + i as f32 * 0.01, 10.0]);
        }
        let assign = kmeans(&points, 2, 10, 1);
        // Even indices together, odd indices together.
        let a0 = assign[0];
        let a1 = assign[1];
        assert_ne!(a0, a1);
        for i in 0..10 {
            assert_eq!(assign[2 * i], a0);
            assert_eq!(assign[2 * i + 1], a1);
        }
    }

    #[test]
    fn kmeans_handles_k_larger_than_points() {
        let points = vec![vec![0.0], vec![1.0]];
        let assign = kmeans(&points, 10, 5, 0);
        assert_eq!(assign.len(), 2);
    }

    #[test]
    fn mlm_scores_same_name_highest() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let source =
            Schema::builder("s").entity("E").attr("unit_price", DataType::Decimal).build().unwrap();
        let target = Schema::builder("t")
            .entity("F")
            .attr("unit_price", DataType::Decimal)
            .attr("city", DataType::Text)
            .build()
            .unwrap();
        let m = Mlm::default().score(&ctx, &source, &target);
        assert!(m.get(AttrId(0), AttrId(0)) > m.get(AttrId(0), AttrId(1)));
    }

    #[test]
    fn mlm_is_deterministic() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let source = Schema::builder("s")
            .entity("E")
            .attr("a", DataType::Text)
            .attr("b", DataType::Integer)
            .build()
            .unwrap();
        let target = source.clone();
        let m1 = Mlm::default().score(&ctx, &source, &target);
        let m2 = Mlm::default().score(&ctx, &source, &target);
        assert_eq!(m1, m2);
    }
}
