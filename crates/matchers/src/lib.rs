//! # lsm-baselines
//!
//! From-scratch implementations of the six baseline schema matchers the
//! paper evaluates against (Section III):
//!
//! | Module | Method | Core idea |
//! |---|---|---|
//! | [`cupid`] | CUPID (Madhavan et al., VLDB'01) | linguistic + structural weighted sum |
//! | [`coma`] | COMA (Do & Rahm, VLDB'02) | library of name matchers + aggregation |
//! | [`smatch`] | S-MATCH (Giunchiglia et al., ESWS'04) | synset (WordNet-surrogate) relations |
//! | [`flooding`] | Similarity Flooding (Melnik et al., ICDE'02) | fixpoint propagation on the pairwise connectivity graph |
//! | [`lsd`] | LSD (Doan et al., 2000) | multi-strategy learning from labeled examples |
//! | [`mlm`] | MLM (Sahay et al., 2019) | schema featurization + k-means clustering |
//!
//! All matchers implement the [`Matcher`] trait: given the source and target
//! schemata (and the shared [`MatchContext`] carrying the pre-trained
//! embedding space and the synset lexicon) they emit a
//! [`ScoreMatrix`] over all candidate pairs.
//! [`tune`] provides the grid-search the paper applies to every baseline,
//! and [`interactive`] the label-pinning interactive mode used in the
//! end-to-end comparison (Section V-C).

#![forbid(unsafe_code)]

pub mod coma;
pub mod cupid;
pub mod flooding;
pub mod interactive;
pub mod lsd;
pub mod mlm;
pub mod smatch;
pub mod tune;

use lsm_embedding::EmbeddingSpace;
use lsm_lexicon::Lexicon;
use lsm_schema::{AttrId, Schema, ScoreMatrix};

/// Shared read-only context: the pre-trained embedding space (FastText
/// surrogate) and the lexicon (WordNet surrogate).
pub struct MatchContext<'a> {
    /// Pre-trained word embeddings.
    pub embedding: &'a EmbeddingSpace,
    /// Synset lexicon.
    pub lexicon: &'a Lexicon,
}

/// A schema matcher: scores every (source, target) attribute pair.
pub trait Matcher {
    /// Human-readable name (may include the configuration, e.g.
    /// `"COMA(max)"`).
    fn name(&self) -> String;

    /// Incorporates labeled examples `(source, target)` where available.
    /// Most baselines ignore labels; LSD trains on them. The default is a
    /// no-op.
    fn train(
        &mut self,
        _ctx: &MatchContext<'_>,
        _source: &Schema,
        _target: &Schema,
        _examples: &[(AttrId, AttrId)],
    ) {
    }

    /// Produces the score matrix over `source × target` attributes.
    fn score(&self, ctx: &MatchContext<'_>, source: &Schema, target: &Schema) -> ScoreMatrix;
}
