//! Similarity Flooding: fixpoint propagation on the pairwise connectivity
//! graph.
//!
//! Nodes of the propagation graph are pairs `(x, y)` of source/target schema
//! elements (entities and attributes). Two pair-nodes are connected when
//! their components are neighbours in their respective schema graphs
//! (entity–attribute membership and FK edges). Similarities start from
//! embedding similarity of names ("we use embedding similarities as the
//! initial scores") and are propagated along edges until fixpoint.

use crate::{MatchContext, Matcher};
use lsm_schema::{Schema, ScoreMatrix};

/// Similarity Flooding with a fixed iteration budget.
#[derive(Debug, Clone, Copy)]
pub struct SimilarityFlooding {
    /// Number of propagation rounds (the original uses convergence
    /// detection; a small fixed budget reaches the same fixpoint on schemas
    /// this size).
    pub iterations: usize,
    /// Damping factor: how much propagated mass is added to the initial
    /// similarity each round.
    pub damping: f64,
}

impl Default for SimilarityFlooding {
    fn default() -> Self {
        SimilarityFlooding { iterations: 8, damping: 0.7 }
    }
}

/// A schema as a flat node/edge graph: nodes are entities then attributes.
struct SchemaGraph {
    /// node id → neighbours.
    adjacency: Vec<Vec<usize>>,
    /// Number of entity nodes (attributes follow).
    entity_count: usize,
}

fn schema_graph(schema: &Schema) -> SchemaGraph {
    let ne = schema.entity_count();
    let n = ne + schema.attr_count();
    let mut adjacency = vec![Vec::new(); n];
    // Entity ↔ attribute membership.
    for e in &schema.entities {
        for &a in &e.attrs {
            let an = ne + a.index();
            adjacency[e.id.index()].push(an);
            adjacency[an].push(e.id.index());
        }
    }
    // Entity ↔ entity FK edges.
    for fk in &schema.foreign_keys {
        let (a, b) = (fk.from_entity.index(), fk.to_entity.index());
        if a != b {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
    }
    SchemaGraph { adjacency, entity_count: ne }
}

impl Matcher for SimilarityFlooding {
    fn name(&self) -> String {
        "SF".to_string()
    }

    fn score(&self, ctx: &MatchContext<'_>, source: &Schema, target: &Schema) -> ScoreMatrix {
        let _span = lsm_obs::span("baseline.sf");
        let sg = schema_graph(source);
        let tg = schema_graph(target);
        let ns = sg.adjacency.len();
        let nt = tg.adjacency.len();

        // Node display names for the initial similarity.
        let name_of = |schema: &Schema, g: &SchemaGraph, i: usize| -> String {
            if i < g.entity_count {
                schema.entities[i].name.clone()
            } else {
                schema.attributes[i - g.entity_count].name.clone()
            }
        };

        // σ⁰: embedding similarity (clamped to non-negative).
        let mut sigma = vec![0.0f64; ns * nt];
        let mut sigma0 = vec![0.0f64; ns * nt];
        for i in 0..ns {
            let sname = name_of(source, &sg, i);
            for j in 0..nt {
                let tname = name_of(target, &tg, j);
                let sim = ctx.embedding.name_similarity(&sname, &tname).max(0.0);
                sigma0[i * nt + j] = sim;
                sigma[i * nt + j] = sim;
            }
        }

        // Fixpoint iteration: σ^{k+1}(x,y) = σ⁰(x,y) + damping · Σ over
        // neighbour pairs, normalized by the maximum each round.
        for _ in 0..self.iterations {
            let mut next = sigma0.clone();
            for i in 0..ns {
                for j in 0..nt {
                    let mut flow = 0.0;
                    for &in_ in &sg.adjacency[i] {
                        for &jn in &tg.adjacency[j] {
                            let fan = (sg.adjacency[in_].len() * tg.adjacency[jn].len()) as f64;
                            flow += sigma[in_ * nt + jn] / fan.max(1.0);
                        }
                    }
                    next[i * nt + j] += self.damping * flow;
                }
            }
            let max = next.iter().copied().fold(0.0f64, f64::max);
            if max > 0.0 {
                for v in &mut next {
                    *v /= max;
                }
            }
            sigma = next;
        }

        // Extract attribute-pair scores.
        let mut m = ScoreMatrix::zeros(source.attr_count(), target.attr_count());
        for s in source.attr_ids() {
            let i = sg.entity_count + s.index();
            for t in target.attr_ids() {
                let j = tg.entity_count + t.index();
                m.set(s, t, sigma[i * nt + j]);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_schema::{AttrId, DataType};

    fn fixtures() -> (lsm_lexicon::Lexicon, EmbeddingSpace) {
        let lex = full_lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        (lex, emb)
    }

    fn pair() -> (Schema, Schema) {
        let source = Schema::builder("s")
            .entity("Customer")
            .attr("customer_id", DataType::Integer)
            .attr("name", DataType::Text)
            .entity("Order")
            .attr("order_id", DataType::Integer)
            .attr("customer_id", DataType::Integer)
            .foreign_key("Order", "customer_id", "Customer", "customer_id")
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("Client")
            .attr("client_id", DataType::Integer)
            .attr("client_name", DataType::Text)
            .entity("Purchase")
            .attr("purchase_id", DataType::Integer)
            .attr("client_id", DataType::Integer)
            .foreign_key("Purchase", "client_id", "Client", "client_id")
            .build()
            .unwrap();
        (source, target)
    }

    #[test]
    fn flooding_produces_bounded_scores() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = pair();
        let m = SimilarityFlooding::default().score(&ctx, &s, &t);
        for a in s.attr_ids() {
            for b in t.attr_ids() {
                let v = m.get(a, b);
                assert!((0.0..=1.0 + 1e-9).contains(&v), "score {v}");
            }
        }
    }

    /// Structure matters: Customer.name should align with Client.client_name
    /// better than with Purchase.purchase_id because their *entities* align.
    #[test]
    fn flooding_uses_structure() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = pair();
        let m = SimilarityFlooding::default().score(&ctx, &s, &t);
        // name = s attr 1; client_name = t attr 1; purchase_id = t attr 2.
        assert!(m.get(AttrId(1), AttrId(1)) > m.get(AttrId(1), AttrId(2)));
    }

    #[test]
    fn zero_iterations_returns_initial_similarity() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = pair();
        let m0 = SimilarityFlooding { iterations: 0, damping: 0.7 }.score(&ctx, &s, &t);
        // Initial similarity: an *_id name wins the customer_id row (both
        // client_id columns tie; ties break to the lower id).
        let (best, _) = m0.best(AttrId(0)).unwrap();
        assert_eq!(best, AttrId(0), "customer_id ↔ client_id initial best");
    }
}
