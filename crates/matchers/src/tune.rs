//! Grid-search tuning, as the paper applies to every baseline.
//!
//! "We tune the baselines by performing a grid search of their
//! hyper-parameters" — the tuner runs each configuration and keeps the one
//! with the highest top-3 accuracy against the ground truth. (As Section VI
//! of the paper discusses, this gives the baselines an *optimistic* edge a
//! real deployment would not have.)

use crate::{MatchContext, Matcher};
use lsm_schema::{AttrId, GroundTruth, Schema, ScoreMatrix};

/// The outcome of a grid search: the winning matcher's name, its score
/// matrix, and the accuracy it achieved.
pub struct Tuned {
    /// Winning configuration name.
    pub name: String,
    /// Its score matrix on the dataset.
    pub scores: ScoreMatrix,
    /// Its top-k accuracy.
    pub accuracy: f64,
}

/// Runs every variant and returns the best by top-`k` accuracy.
pub fn grid_search<M: Matcher>(
    variants: Vec<M>,
    ctx: &MatchContext<'_>,
    source: &Schema,
    target: &Schema,
    truth: &GroundTruth,
    k: usize,
) -> Tuned {
    assert!(!variants.is_empty(), "grid search needs at least one variant");
    let sources: Vec<AttrId> = source.attr_ids().collect();
    let mut best: Option<Tuned> = None;
    for v in variants {
        let scores = v.score(ctx, source, target);
        let accuracy = scores.top_k_accuracy(truth, &sources, k);
        if best.as_ref().is_none_or(|b| accuracy > b.accuracy) {
            best = Some(Tuned { name: v.name(), scores, accuracy });
        }
    }
    best.expect("at least one variant ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coma::Coma;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_schema::DataType;

    #[test]
    fn grid_search_picks_highest_accuracy() {
        let lex = full_lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let source = Schema::builder("s")
            .entity("E")
            .attr("unit_price", DataType::Decimal)
            .attr("order_date", DataType::Date)
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("F")
            .attr("unit_price", DataType::Decimal)
            .attr("order_date", DataType::Date)
            .attr("noise_one", DataType::Text)
            .attr("noise_two", DataType::Text)
            .build()
            .unwrap();
        let truth = GroundTruth::from_pairs([(AttrId(0), AttrId(0)), (AttrId(1), AttrId(1))]);
        let tuned = grid_search(Coma::grid(), &ctx, &source, &target, &truth, 1);
        assert_eq!(tuned.accuracy, 1.0);
        assert!(tuned.name.starts_with("COMA"));
    }
}
