//! CUPID: linguistic + structural weighted-sum matching.
//!
//! Following the paper's re-implementation: "we use the pre-trained word
//! embedding from FastText as the synonym dictionary and generate the
//! similarity score using cosine similarity. For each customer schema, we
//! search the best-performing weights for the weighted sum" — i.e. the
//! linguistic component is embedding cosine over attribute names, the
//! structural component compares the surrounding entities, and the final
//! score is `(1 - w) · lsim + w · ssim` with `w` grid-searched.

use crate::{MatchContext, Matcher};
use lsm_schema::{AttrId, Schema, ScoreMatrix};

/// CUPID with a fixed structural weight.
#[derive(Debug, Clone, Copy)]
pub struct Cupid {
    /// Weight of the structural component in `[0, 1]`.
    pub structural_weight: f64,
}

impl Cupid {
    /// Creates CUPID with the given structural weight.
    pub fn new(structural_weight: f64) -> Self {
        assert!((0.0..=1.0).contains(&structural_weight));
        Cupid { structural_weight }
    }

    /// The grid the tuner searches, mirroring the paper's per-schema weight
    /// search.
    pub fn grid() -> Vec<Cupid> {
        [0.0, 0.2, 0.4, 0.6].iter().map(|&w| Cupid::new(w)).collect()
    }
}

impl Matcher for Cupid {
    fn name(&self) -> String {
        format!("CUPID(w_s={})", self.structural_weight)
    }

    fn score(&self, ctx: &MatchContext<'_>, source: &Schema, target: &Schema) -> ScoreMatrix {
        let _span = lsm_obs::span("baseline.cupid");
        let ns = source.attr_count();
        let nt = target.attr_count();
        let mut m = ScoreMatrix::zeros(ns, nt);

        // Entity-level structural similarity: embedding similarity of the
        // entity names plus the mean best linguistic similarity of their
        // attributes (a lightweight rendition of CUPID's structure pass,
        // appropriate for flat relational schemata).
        let s_entities = source.entity_count();
        let t_entities = target.entity_count();
        // Pre-compute linguistic sims.
        let mut lsim = vec![vec![0.0f64; nt]; ns];
        for s in source.attr_ids() {
            for t in target.attr_ids() {
                lsim[s.index()][t.index()] =
                    ctx.embedding.name_similarity(&source.attr(s).name, &target.attr(t).name);
            }
        }
        let mut esim = vec![vec![0.0f64; t_entities]; s_entities];
        for se in source.entity_ids() {
            for te in target.entity_ids() {
                let name_sim =
                    ctx.embedding.name_similarity(&source.entity(se).name, &target.entity(te).name);
                // Mean over source attrs of their best counterpart in te.
                let attrs = &source.entity(se).attrs;
                let content_sim = if attrs.is_empty() {
                    0.0
                } else {
                    attrs
                        .iter()
                        .map(|sa| {
                            target
                                .entity(te)
                                .attrs
                                .iter()
                                .map(|ta| lsim[sa.index()][ta.index()])
                                .fold(0.0f64, f64::max)
                        })
                        .sum::<f64>()
                        / attrs.len() as f64
                };
                esim[se.index()][te.index()] = 0.5 * name_sim + 0.5 * content_sim;
            }
        }

        for s in source.attr_ids() {
            let se = source.attr(s).entity;
            for t in target.attr_ids() {
                let te = target.attr(t).entity;
                let structural = esim[se.index()][te.index()];
                let linguistic = lsim[s.index()][t.index()];
                let score = (1.0 - self.structural_weight) * linguistic
                    + self.structural_weight * structural;
                m.set(AttrId(s.0), AttrId(t.0), score);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_schema::DataType;

    fn ctx_parts() -> (lsm_lexicon::Lexicon, EmbeddingSpace) {
        let lex = full_lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        (lex, emb)
    }

    fn toy_pair() -> (Schema, Schema) {
        let source = Schema::builder("s")
            .entity("Orders")
            .attr("order_id", DataType::Integer)
            .attr("unit_count", DataType::Integer)
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("TransactionLine")
            .attr("transaction_line_id", DataType::Integer)
            .attr("quantity", DataType::Integer)
            .entity("Store")
            .attr("store_id", DataType::Integer)
            .attr("city", DataType::Text)
            .build()
            .unwrap();
        (source, target)
    }

    #[test]
    fn cupid_prefers_synonym_over_unrelated() {
        let (lex, emb) = ctx_parts();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = toy_pair();
        let m = Cupid::new(0.0).score(&ctx, &s, &t);
        // unit_count (s: a1) should match quantity (t: a1) over city (t: a3).
        assert!(m.get(AttrId(1), AttrId(1)) > m.get(AttrId(1), AttrId(3)));
    }

    #[test]
    fn structural_weight_shifts_scores() {
        let (lex, emb) = ctx_parts();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = toy_pair();
        let pure_ling = Cupid::new(0.0).score(&ctx, &s, &t);
        let heavy_struct = Cupid::new(0.6).score(&ctx, &s, &t);
        // Scores must differ somewhere once structure dominates.
        let differs = s.attr_ids().any(|a| {
            t.attr_ids().any(|b| (pure_ling.get(a, b) - heavy_struct.get(a, b)).abs() > 1e-9)
        });
        assert!(differs);
    }

    #[test]
    fn grid_has_multiple_configs() {
        assert!(Cupid::grid().len() >= 3);
    }

    #[test]
    #[should_panic]
    fn invalid_weight_panics() {
        Cupid::new(1.5);
    }
}
