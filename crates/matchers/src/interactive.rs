//! Interactive mode for the baselines (Section V-C comparison).
//!
//! The paper runs COMA and CUPID "in interactive mode" and gives every
//! baseline the same smart attribute-selection strategy as LSM. For these
//! systems user feedback *pins* matches but does not retrain a model: a
//! labeled correct pair gets maximal score (and its row is settled), labeled
//! incorrect pairs are suppressed. This is precisely why their curves in
//! Fig. 5 converge to the manual-labeling diagonal — each label fixes one
//! attribute and generalizes to nothing else.

use lsm_schema::{AttrId, ScoreMatrix};

/// The labels collected from the user so far.
#[derive(Debug, Clone, Default)]
pub struct PinnedLabels {
    /// Confirmed correct pairs.
    pub positive: Vec<(AttrId, AttrId)>,
    /// Confirmed incorrect pairs.
    pub negative: Vec<(AttrId, AttrId)>,
}

impl PinnedLabels {
    /// Creates an empty label set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a confirmed match.
    pub fn confirm(&mut self, source: AttrId, target: AttrId) {
        if !self.positive.contains(&(source, target)) {
            self.positive.push((source, target));
        }
    }

    /// Records a rejected pair.
    pub fn reject(&mut self, source: AttrId, target: AttrId) {
        if !self.negative.contains(&(source, target)) {
            self.negative.push((source, target));
        }
    }

    /// Applies the pins onto a base score matrix: positives saturate to a
    /// score above everything else, negatives drop to the floor. The
    /// sentinels are finite ([`ScoreMatrix::PINNED_MIN`]/[`PINNED_MAX`]) so
    /// exp-based consumers such as `softmax_confidence` stay finite.
    ///
    /// [`PINNED_MAX`]: ScoreMatrix::PINNED_MAX
    pub fn apply(&self, base: &ScoreMatrix) -> ScoreMatrix {
        let mut out = base.clone();
        for &(s, t) in &self.negative {
            out.set(s, t, ScoreMatrix::PINNED_MIN);
        }
        for &(s, t) in &self.positive {
            // Clear the row, then pin.
            for v in out.row_mut(s) {
                *v = ScoreMatrix::PINNED_MIN;
            }
            out.set(s, t, ScoreMatrix::PINNED_MAX);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScoreMatrix {
        let mut m = ScoreMatrix::zeros(2, 3);
        m.set(AttrId(0), AttrId(0), 0.9);
        m.set(AttrId(0), AttrId(1), 0.5);
        m.set(AttrId(1), AttrId(2), 0.8);
        m
    }

    #[test]
    fn positive_pin_wins_its_row() {
        let mut labels = PinnedLabels::new();
        labels.confirm(AttrId(0), AttrId(1));
        let m = labels.apply(&base());
        assert_eq!(m.best(AttrId(0)).unwrap().0, AttrId(1));
        // Other rows untouched.
        assert_eq!(m.best(AttrId(1)).unwrap().0, AttrId(2));
    }

    #[test]
    fn negative_pin_suppresses_pair() {
        let mut labels = PinnedLabels::new();
        labels.reject(AttrId(0), AttrId(0));
        let m = labels.apply(&base());
        assert_eq!(m.best(AttrId(0)).unwrap().0, AttrId(1));
    }

    #[test]
    fn pinned_rows_keep_finite_confidence() {
        let mut labels = PinnedLabels::new();
        labels.confirm(AttrId(0), AttrId(1));
        labels.reject(AttrId(1), AttrId(2));
        let m = labels.apply(&base());
        for s in [AttrId(0), AttrId(1)] {
            let c = m.softmax_confidence(s);
            assert!(c.is_finite(), "row {s:?} confidence must be finite, got {c}");
        }
        assert!(m.softmax_confidence(AttrId(0)) > 0.99);
    }

    #[test]
    fn pins_are_idempotent() {
        let mut labels = PinnedLabels::new();
        labels.confirm(AttrId(0), AttrId(1));
        labels.confirm(AttrId(0), AttrId(1));
        labels.reject(AttrId(1), AttrId(0));
        labels.reject(AttrId(1), AttrId(0));
        assert_eq!(labels.positive.len(), 1);
        assert_eq!(labels.negative.len(), 1);
    }
}
