//! LSD: multi-strategy learning from labeled examples.
//!
//! LSD learns from provided example matches with several individual
//! learners, then combines their predictions. Following the paper's
//! schema-only adaptation we implement three of its learners (the
//! county-name recognizer has no analogue in our domain):
//!
//! 1. **WHIRL** — nearest-neighbour over TF-IDF encodings of attribute
//!    name + description text,
//! 2. **Naive Bayes** — multinomial NB over description tokens,
//! 3. **Name matcher** — similarity of the attribute name to the names of
//!    labeled examples.
//!
//! Each learner scores `P(target t | source s)` by analogy to labeled
//! examples; the meta-combiner averages them. The structural weakness the
//! paper exposes is inherent: a learner can only predict *target attributes
//! it has seen labels for*, so with 50 % training labels the other half of
//! the target space is unreachable — hence LSD's near-zero accuracy on
//! unseen customers.

use crate::{MatchContext, Matcher};
use lsm_schema::{AttrId, Schema, ScoreMatrix};
use lsm_text::tfidf::{TfIdfSpace, TfIdfVector};
use lsm_text::tokenize::tokenize_text;
use lsm_text::{metrics::edit_similarity, tokenize};
use std::collections::BTreeMap;

/// LSD with its training state.
#[derive(Debug, Default)]
pub struct Lsd {
    /// Labeled examples: (source attr, target attr).
    examples: Vec<(AttrId, AttrId)>,
}

impl Lsd {
    /// Creates an untrained LSD.
    pub fn new() -> Self {
        Self::default()
    }

    fn attr_text(schema: &Schema, a: AttrId) -> Vec<String> {
        let attr = schema.attr(a);
        let mut toks = tokenize(&attr.name);
        toks.extend(tokenize_text(attr.desc_or_empty()));
        toks
    }
}

impl Matcher for Lsd {
    fn name(&self) -> String {
        "LSD".to_string()
    }

    fn train(
        &mut self,
        _ctx: &MatchContext<'_>,
        _source: &Schema,
        _target: &Schema,
        examples: &[(AttrId, AttrId)],
    ) {
        self.examples = examples.to_vec();
    }

    fn score(&self, _ctx: &MatchContext<'_>, source: &Schema, target: &Schema) -> ScoreMatrix {
        let _span = lsm_obs::span("baseline.lsd");
        let mut m = ScoreMatrix::zeros(source.attr_count(), target.attr_count());
        if self.examples.is_empty() {
            return m; // untrained LSD predicts nothing
        }

        // ---- WHIRL: TF-IDF space over all labeled source texts ----
        let corpus: Vec<Vec<String>> =
            self.examples.iter().map(|&(s, _)| Self::attr_text(source, s)).collect();
        let space = TfIdfSpace::fit(&corpus);
        let example_vectors: Vec<(TfIdfVector, AttrId)> = self
            .examples
            .iter()
            .zip(&corpus)
            .map(|(&(_, t), text)| (space.embed(text), t))
            .collect();

        // ---- Naive Bayes over description tokens ----
        // P(token | target) with Laplace smoothing, over labeled examples.
        // BTreeMaps keyed by AttrId: the class map is iterated when scoring,
        // and the float summation below must not depend on bucket order.
        let mut class_token_counts: BTreeMap<AttrId, BTreeMap<String, usize>> = BTreeMap::new();
        let mut class_totals: BTreeMap<AttrId, usize> = BTreeMap::new();
        let mut vocab: Vec<String> = Vec::new();
        for (&(s, t), _) in self.examples.iter().zip(&corpus) {
            let tokens = tokenize_text(source.attr(s).desc_or_empty());
            let entry = class_token_counts.entry(t).or_default();
            for tok in tokens {
                *entry.entry(tok.clone()).or_insert(0) += 1;
                *class_totals.entry(t).or_insert(0) += 1;
                if !vocab.contains(&tok) {
                    vocab.push(tok);
                }
            }
        }

        // ---- scoring ----
        for s in source.attr_ids() {
            let text = Self::attr_text(source, s);
            let vec = space.embed(&text);
            // WHIRL: nearest labeled neighbour votes for its target.
            let mut whirl: BTreeMap<AttrId, f64> = BTreeMap::new();
            for (ev, t) in &example_vectors {
                let sim = vec.cosine(ev);
                let best = whirl.entry(*t).or_insert(0.0);
                if sim > *best {
                    *best = sim;
                }
            }
            // Naive Bayes: log-likelihood of the description under each
            // labeled class, converted to a normalized score.
            let desc_tokens = tokenize_text(source.attr(s).desc_or_empty());
            let mut nb: BTreeMap<AttrId, f64> = BTreeMap::new();
            if !desc_tokens.is_empty() && !vocab.is_empty() {
                let mut lls: Vec<(AttrId, f64)> = Vec::new();
                for (&t, counts) in &class_token_counts {
                    let total = class_totals[&t] as f64;
                    let mut ll = 0.0;
                    for tok in &desc_tokens {
                        let c = counts.get(tok).copied().unwrap_or(0) as f64;
                        ll += ((c + 1.0) / (total + vocab.len() as f64)).ln();
                    }
                    lls.push((t, ll));
                }
                let max = lls.iter().map(|&(_, l)| l).fold(f64::NEG_INFINITY, f64::max);
                let z: f64 = lls.iter().map(|&(_, l)| (l - max).exp()).sum();
                for (t, l) in lls {
                    nb.insert(t, (l - max).exp() / z);
                }
            }
            // Name matcher: best name similarity to a labeled example of
            // each target.
            let mut namer: BTreeMap<AttrId, f64> = BTreeMap::new();
            for &(es, t) in &self.examples {
                let sim = edit_similarity(&source.attr(s).name, &source.attr(es).name);
                let best = namer.entry(t).or_insert(0.0);
                if sim > *best {
                    *best = sim;
                }
            }

            for t in target.attr_ids() {
                let w = whirl.get(&t).copied().unwrap_or(0.0);
                let n = nb.get(&t).copied().unwrap_or(0.0);
                let nm = namer.get(&t).copied().unwrap_or(0.0);
                m.set(s, t, (w + n + nm) / 3.0);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_schema::DataType;

    fn fixtures() -> (lsm_lexicon::Lexicon, EmbeddingSpace) {
        let lex = full_lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        (lex, emb)
    }

    fn pair() -> (Schema, Schema) {
        let source = Schema::builder("s")
            .entity("E")
            .attr_desc("order_total", DataType::Decimal, "total money value of the order")
            .attr_desc(
                "order_total_2023",
                DataType::Decimal,
                "total money value of the order last year",
            )
            .attr_desc("customer_city", DataType::Text, "city where the customer lives")
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("F")
            .attr("grand_total", DataType::Decimal)
            .attr("city", DataType::Text)
            .attr("unrelated", DataType::Text)
            .build()
            .unwrap();
        (source, target)
    }

    #[test]
    fn untrained_lsd_scores_zero() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = pair();
        let m = Lsd::new().score(&ctx, &s, &t);
        for a in s.attr_ids() {
            for b in t.attr_ids() {
                assert_eq!(m.get(a, b), 0.0);
            }
        }
    }

    #[test]
    fn lsd_generalizes_to_similar_labeled_text() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = pair();
        let mut lsd = Lsd::new();
        // Label order_total → grand_total and customer_city → city.
        lsd.train(&ctx, &s, &t, &[(AttrId(0), AttrId(0)), (AttrId(2), AttrId(1))]);
        let m = lsd.score(&ctx, &s, &t);
        // order_total_2023 resembles the order_total example.
        assert!(m.get(AttrId(1), AttrId(0)) > m.get(AttrId(1), AttrId(1)));
        assert!(m.get(AttrId(1), AttrId(0)) > m.get(AttrId(1), AttrId(2)));
    }

    /// LSD's structural blindness: targets never seen in training get zero
    /// mass — the cause of its near-zero customer accuracy in the paper.
    #[test]
    fn lsd_cannot_predict_unseen_targets() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let (s, t) = pair();
        let mut lsd = Lsd::new();
        lsd.train(&ctx, &s, &t, &[(AttrId(0), AttrId(0))]);
        let m = lsd.score(&ctx, &s, &t);
        for a in s.attr_ids() {
            assert_eq!(m.get(a, AttrId(2)), 0.0, "unseen target must stay at zero");
        }
    }
}
