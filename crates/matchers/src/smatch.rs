//! S-MATCH: semantic matching through a synset dictionary.
//!
//! S-MATCH "uses WordNet to understand the meaning of the nodes ... and
//! identify synonyms". Restricted to attribute equivalence (the paper does
//! the same), the algorithm becomes: map each name's tokens/phrases onto
//! synsets via the dictionary and score the overlap of the resulting concept
//! sets. Customer jargon and abbreviations are out-of-dictionary — exactly
//! the WordNet blind spot the paper documents.

use crate::{MatchContext, Matcher};
use lsm_lexicon::{ConceptId, Lexicon};
use lsm_schema::{Schema, ScoreMatrix};
use lsm_text::tokenize;

/// S-MATCH over the lexicon's public synset view.
#[derive(Debug, Clone, Copy, Default)]
pub struct SMatch;

/// The "meaning" of an identifier: the synsets of its whole phrase and of
/// each token, plus the raw tokens for out-of-dictionary fallback.
#[derive(Debug, Clone)]
struct Meaning {
    concepts: Vec<ConceptId>,
    tokens: Vec<String>,
}

fn meaning(lexicon: &Lexicon, identifier: &str) -> Meaning {
    let tokens = tokenize(identifier);
    let mut concepts: Vec<ConceptId> = Vec::new();
    // Whole-phrase synsets first (multi-word concepts), then per-token.
    for c in lexicon.public_synsets_of(&tokens.join(" ")) {
        if !concepts.contains(&c) {
            concepts.push(c);
        }
    }
    for t in &tokens {
        for &c in lexicon.public_concepts_of_token(t) {
            if !concepts.contains(&c) {
                concepts.push(c);
            }
        }
    }
    Meaning { concepts, tokens }
}

fn jaccard<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let shared = a.iter().filter(|x| b.contains(x)).count();
    let union = a.len() + b.len() - shared;
    if union == 0 {
        0.0
    } else {
        shared as f64 / union as f64
    }
}

impl Matcher for SMatch {
    fn name(&self) -> String {
        "S-MATCH".to_string()
    }

    fn score(&self, ctx: &MatchContext<'_>, source: &Schema, target: &Schema) -> ScoreMatrix {
        let _span = lsm_obs::span("baseline.smatch");
        let s_meanings: Vec<Meaning> =
            source.attributes.iter().map(|a| meaning(ctx.lexicon, &a.name)).collect();
        let t_meanings: Vec<Meaning> =
            target.attributes.iter().map(|a| meaning(ctx.lexicon, &a.name)).collect();
        let mut m = ScoreMatrix::zeros(source.attr_count(), target.attr_count());
        for s in source.attr_ids() {
            for t in target.attr_ids() {
                let sm = &s_meanings[s.index()];
                let tm = &t_meanings[t.index()];
                // Semantic overlap dominates; raw-token overlap is the
                // fallback for out-of-dictionary names.
                let semantic = jaccard(&sm.concepts, &tm.concepts);
                let literal = jaccard(&sm.tokens, &tm.tokens);
                m.set(s, t, 0.7 * semantic + 0.3 * literal);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_schema::{AttrId, DataType};

    fn fixtures() -> (lsm_lexicon::Lexicon, EmbeddingSpace) {
        let lex = full_lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        (lex, emb)
    }

    #[test]
    fn smatch_finds_dictionary_synonyms() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let source =
            Schema::builder("s").entity("E").attr("zip_code", DataType::Text).build().unwrap();
        let target = Schema::builder("t")
            .entity("F")
            .attr("postal_code", DataType::Text)
            .attr("unit_price", DataType::Decimal)
            .build()
            .unwrap();
        let m = SMatch.score(&ctx, &source, &target);
        assert!(m.get(AttrId(0), AttrId(0)) > m.get(AttrId(0), AttrId(1)));
    }

    #[test]
    fn smatch_misses_private_jargon() {
        let (lex, emb) = fixtures();
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let source = Schema::builder("s")
            .entity("E")
            .attr("discount", DataType::Decimal) // private jargon for price change percentage
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("F")
            .attr("price_change_percentage", DataType::Decimal)
            .attr("discount_percentage", DataType::Decimal) // lexical trap
            .build()
            .unwrap();
        let m = SMatch.score(&ctx, &source, &target);
        // The dictionary cannot connect discount → price change percentage;
        // the literal-token trap wins. This is the documented failure mode.
        assert!(m.get(AttrId(0), AttrId(1)) > m.get(AttrId(0), AttrId(0)));
    }

    #[test]
    fn jaccard_properties() {
        assert_eq!(jaccard::<u32>(&[], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }
}
