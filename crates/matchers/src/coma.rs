//! COMA: a library of name matchers combined by an aggregation function.
//!
//! "The matchers cover a broad spectrum of similarity metrics such as affix,
//! n-gram, Soundex, edit distance, etc. To combine the similarities, COMA
//! can choose from various aggregation functions such as min, max, average."
//! We implement exactly that library over normalized attribute names (and
//! token-soundex for the phonetic matcher) and let the tuner pick the
//! aggregation, as the paper does.

use crate::{MatchContext, Matcher};
use lsm_schema::{Schema, ScoreMatrix};
use lsm_text::metrics::{affix_similarity, edit_similarity, soundex, trigram_similarity};
use lsm_text::{normalize_join, tokenize};

/// How individual matcher scores are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Maximum of the individual scores (optimistic).
    Max,
    /// Mean of the individual scores.
    Average,
    /// Minimum of the individual scores (pessimistic).
    Min,
    /// Mean of the two largest scores — COMA's "harmonise" flavour.
    TopTwoAverage,
}

impl Aggregation {
    fn combine(self, scores: &[f64]) -> f64 {
        match self {
            Aggregation::Max => scores.iter().copied().fold(0.0, f64::max),
            Aggregation::Average => scores.iter().sum::<f64>() / scores.len() as f64,
            Aggregation::Min => scores.iter().copied().fold(1.0, f64::min),
            Aggregation::TopTwoAverage => {
                let mut sorted = scores.to_vec();
                sorted.sort_by(|a, b| b.total_cmp(a));
                (sorted[0] + sorted.get(1).copied().unwrap_or(sorted[0])) / 2.0
            }
        }
    }
}

/// COMA with one aggregation strategy.
#[derive(Debug, Clone, Copy)]
pub struct Coma {
    /// The aggregation function combining the matcher library.
    pub aggregation: Aggregation,
}

impl Coma {
    /// Creates COMA with the given aggregation.
    pub fn new(aggregation: Aggregation) -> Self {
        Coma { aggregation }
    }

    /// The strategies the tuner searches.
    pub fn grid() -> Vec<Coma> {
        vec![
            Coma::new(Aggregation::Max),
            Coma::new(Aggregation::Average),
            Coma::new(Aggregation::TopTwoAverage),
            Coma::new(Aggregation::Min),
        ]
    }

    /// The individual matcher scores for a pair of raw attribute names.
    pub fn matcher_scores(a: &str, b: &str) -> Vec<f64> {
        let na = normalize_join(a);
        let nb = normalize_join(b);
        // Token-level Soundex: fraction of source tokens with a phonetic
        // counterpart on the other side.
        let ta = tokenize(a);
        let tb = tokenize(b);
        let phonetic = if ta.is_empty() || tb.is_empty() {
            0.0
        } else {
            let tb_codes: Vec<String> = tb.iter().map(|t| soundex(t)).collect();
            ta.iter().filter(|t| tb_codes.contains(&soundex(t))).count() as f64 / ta.len() as f64
        };
        vec![
            affix_similarity(&na, &nb),
            trigram_similarity(&na, &nb),
            edit_similarity(&na, &nb),
            phonetic,
        ]
    }
}

impl Matcher for Coma {
    fn name(&self) -> String {
        format!("COMA({:?})", self.aggregation)
    }

    fn score(&self, _ctx: &MatchContext<'_>, source: &Schema, target: &Schema) -> ScoreMatrix {
        let _span = lsm_obs::span("baseline.coma");
        let mut m = ScoreMatrix::zeros(source.attr_count(), target.attr_count());
        for s in source.attr_ids() {
            for t in target.attr_ids() {
                let scores = Coma::matcher_scores(&source.attr(s).name, &target.attr(t).name);
                m.set(s, t, self.aggregation.combine(&scores));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
    use lsm_lexicon::full_lexicon;
    use lsm_schema::{AttrId, DataType};

    #[test]
    fn aggregations_combine_sanely() {
        let scores = [0.2, 0.8, 0.5];
        assert_eq!(Aggregation::Max.combine(&scores), 0.8);
        assert_eq!(Aggregation::Min.combine(&scores), 0.2);
        assert!((Aggregation::Average.combine(&scores) - 0.5).abs() < 1e-12);
        assert!((Aggregation::TopTwoAverage.combine(&scores) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn matcher_scores_are_bounded() {
        for (a, b) in [("order_id", "OrderKey"), ("discount", "price_change"), ("", "x")] {
            for s in Coma::matcher_scores(a, b) {
                assert!((0.0..=1.0).contains(&s), "{a} vs {b}: {s}");
            }
        }
    }

    #[test]
    fn identical_names_score_one_under_max() {
        let scores = Coma::matcher_scores("unit_price", "unit_price");
        assert_eq!(Aggregation::Max.combine(&scores), 1.0);
    }

    /// Reproduces the paper's COMA failure mode: edit-distance style
    /// matchers pull `item_amount` toward `product_item_price_amount`
    /// rather than the correct `quantity`.
    #[test]
    fn coma_failure_mode_on_figure_one_example() {
        let lex = full_lexicon();
        let emb = EmbeddingSpace::new(&lex, EmbeddingConfig::default());
        let ctx = MatchContext { embedding: &emb, lexicon: &lex };
        let source = Schema::builder("s")
            .entity("Orders")
            .attr("item_amount", DataType::Integer)
            .build()
            .unwrap();
        let target = Schema::builder("t")
            .entity("TransactionLine")
            .attr("quantity", DataType::Integer)
            .attr("product_item_price_amount", DataType::Decimal)
            .build()
            .unwrap();
        let m = Coma::new(Aggregation::Max).score(&ctx, &source, &target);
        assert!(
            m.get(AttrId(0), AttrId(1)) > m.get(AttrId(0), AttrId(0)),
            "COMA should (wrongly) prefer the lexically-overlapping name"
        );
    }

    #[test]
    fn grid_has_all_aggregations() {
        assert_eq!(Coma::grid().len(), 4);
    }
}
