//! # lsm-lexicon
//!
//! A curated, multi-domain concept lexicon plus a synthetic-corpus
//! generator. Together they stand in for the *world knowledge* the paper's
//! pre-trained artifacts carry:
//!
//! * Real **FastText** embeddings know that `discount` and `markdown` are
//!   distributionally similar → our embedding surrogate reads the lexicon's
//!   *public synonyms*.
//! * Real **WordNet** (used by S-MATCH) stores synsets of common English →
//!   our synset view exposes canonical forms + public synonyms only.
//! * Real **BERT** (pre-trained on Books+Wikipedia) has seen paraphrases and
//!   co-occurrences far beyond dictionary synonymy → our mini-BERT is
//!   MLM-pre-trained on the [`corpus`] generated from the lexicon, which
//!   additionally verbalizes *private* (customer-style) phrasings and
//!   concept relations.
//!
//! The split between public and private surface forms is the load-bearing
//! dial of the reproduction: customer schemata rename >30 % of attributes to
//! forms that only contextual pre-training can connect back to the ISS
//! vocabulary — exactly the regime where the paper shows dictionary-based
//! baselines collapse and LSM keeps working.

#![forbid(unsafe_code)]

pub mod concept;
pub mod corpus;
pub mod domains;
pub mod lexicon;

pub use concept::{Concept, ConceptBuilder, ConceptDtype, ConceptId, ConceptKind, Domain};

/// Qualifier tokens that schema designers prepend to attribute names
/// (`total_amount`, `estimated_delivery_date`, ...). Shared by the ISS
/// generator and by the language-model pre-training so that qualified names
/// are in-distribution for both.
pub const QUALIFIERS: &[&str] = &[
    "total",
    "net",
    "gross",
    "estimated",
    "actual",
    "primary",
    "secondary",
    "original",
    "current",
    "previous",
    "minimum",
    "maximum",
    "average",
    "expected",
    "first",
    "last",
];
pub use corpus::{CorpusConfig, CorpusGenerator};
pub use domains::full_lexicon;
pub use lexicon::{Lexicon, SurfaceForm};
