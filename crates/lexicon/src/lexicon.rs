//! The [`Lexicon`] container: assembled concepts with phrase and token
//! indexes, plus the public *synset view* used as the WordNet surrogate.

use crate::concept::{Concept, ConceptBuilder, ConceptId, ConceptKind, Domain};
use std::collections::HashMap;

/// Which surface form a phrase lookup hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurfaceForm {
    /// The canonical ISS-style phrase.
    Canonical,
    /// A dictionary-grade synonym (public knowledge).
    PublicSynonym,
    /// Customer jargon (corpus-only knowledge).
    PrivateSynonym,
    /// A whole-concept abbreviation token.
    Abbreviation,
}

impl SurfaceForm {
    /// Whether this form is visible to the public synset/embedding
    /// surrogates (FastText/WordNet analogue).
    pub fn is_public(self) -> bool {
        matches!(self, SurfaceForm::Canonical | SurfaceForm::PublicSynonym)
    }
}

/// An assembled, indexed lexicon.
#[derive(Debug, Clone)]
pub struct Lexicon {
    concepts: Vec<Concept>,
    /// space-joined lowercase phrase → (concept, form) hits.
    phrase_index: HashMap<String, Vec<(ConceptId, SurfaceForm)>>,
    /// single token → concepts mentioning it in a *public* phrasing.
    public_token_index: HashMap<String, Vec<ConceptId>>,
}

impl Lexicon {
    /// Assembles a lexicon from concept builders, assigning ids in order and
    /// resolving `related` references by canonical phrase.
    ///
    /// # Panics
    ///
    /// Panics if a `related` reference names an unknown canonical phrase or
    /// if two concepts share a canonical phrase — both indicate a bug in the
    /// curated tables, not runtime input.
    pub fn assemble(builders: Vec<ConceptBuilder>) -> Self {
        let mut concepts = Vec::with_capacity(builders.len());
        let mut pending_related = Vec::with_capacity(builders.len());
        for (i, b) in builders.into_iter().enumerate() {
            let (c, related) = b.finish(ConceptId(i as u32));
            concepts.push(c);
            pending_related.push(related);
        }
        // Resolve related references.
        let by_canonical: HashMap<String, ConceptId> = {
            let mut m = HashMap::new();
            for c in &concepts {
                let key = c.canonical_phrase();
                assert!(
                    m.insert(key.clone(), c.id).is_none(),
                    "duplicate canonical phrase in lexicon: {key:?}"
                );
            }
            m
        };
        for (c, related) in concepts.iter_mut().zip(pending_related) {
            for name in related {
                let id = *by_canonical
                    .get(&name)
                    .unwrap_or_else(|| panic!("related reference to unknown concept {name:?}"));
                c.related.push(id);
            }
        }
        // Build indexes.
        let mut phrase_index: HashMap<String, Vec<(ConceptId, SurfaceForm)>> = HashMap::new();
        let mut public_token_index: HashMap<String, Vec<ConceptId>> = HashMap::new();
        for c in &concepts {
            let mut add = |phrase: &[String], form: SurfaceForm| {
                phrase_index.entry(phrase.join(" ")).or_default().push((c.id, form));
            };
            add(&c.canonical, SurfaceForm::Canonical);
            for s in &c.public_synonyms {
                add(s, SurfaceForm::PublicSynonym);
            }
            for s in &c.private_synonyms {
                add(s, SurfaceForm::PrivateSynonym);
            }
            for a in &c.abbreviations {
                add(std::slice::from_ref(a), SurfaceForm::Abbreviation);
            }
            for phrasing in c.public_phrasings() {
                for token in phrasing {
                    let entry = public_token_index.entry(token.clone()).or_default();
                    if !entry.contains(&c.id) {
                        entry.push(c.id);
                    }
                }
            }
        }
        Lexicon { concepts, phrase_index, public_token_index }
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True when the lexicon holds no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// The concept with this id.
    pub fn concept(&self, id: ConceptId) -> &Concept {
        &self.concepts[id.index()]
    }

    /// All concepts in id order.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Concepts of one domain (plus none others).
    pub fn of_domain(&self, domain: Domain) -> impl Iterator<Item = &Concept> {
        self.concepts.iter().filter(move |c| c.domain == domain)
    }

    /// Concepts of one kind within a domain; [`Domain::Generic`] concepts
    /// are shared across verticals, so they are included for any requested
    /// domain.
    pub fn usable_in(&self, domain: Domain, kind: ConceptKind) -> Vec<&Concept> {
        self.concepts
            .iter()
            .filter(|c| c.kind == kind && (c.domain == domain || c.domain == Domain::Generic))
            .collect()
    }

    /// All `(concept, form)` hits for a space-joined lowercase phrase.
    pub fn lookup_phrase(&self, phrase: &str) -> &[(ConceptId, SurfaceForm)] {
        self.phrase_index.get(phrase).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The concept whose canonical phrase is `phrase`, if any.
    pub fn find_canonical(&self, phrase: &str) -> Option<ConceptId> {
        self.lookup_phrase(phrase)
            .iter()
            .find(|(_, f)| *f == SurfaceForm::Canonical)
            .map(|&(id, _)| id)
    }

    /// WordNet-surrogate synset lookup: the concepts for which `phrase` is a
    /// *public* surface form (canonical or dictionary synonym). Private
    /// jargon and abbreviations are invisible here, exactly as customer
    /// terminology is invisible to WordNet.
    pub fn public_synsets_of(&self, phrase: &str) -> Vec<ConceptId> {
        self.lookup_phrase(phrase)
            .iter()
            .filter(|(_, f)| f.is_public())
            .map(|&(id, _)| id)
            .collect()
    }

    /// Whether two phrases share a public synset.
    pub fn are_public_synonyms(&self, a: &str, b: &str) -> bool {
        let sa = self.public_synsets_of(a);
        if sa.is_empty() {
            return false;
        }
        self.public_synsets_of(b).iter().any(|id| sa.contains(id))
    }

    /// Concepts whose public phrasings mention `token`.
    pub fn public_concepts_of_token(&self, token: &str) -> &[ConceptId] {
        self.public_token_index.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every distinct token across all phrasings and descriptions — the raw
    /// vocabulary the corpus generator and tokenizers draw from.
    pub fn vocabulary(&self) -> Vec<String> {
        let mut vocab: Vec<String> = Vec::new();
        let mut push = |t: &str| {
            if !vocab.iter().any(|v| v == t) {
                vocab.push(t.to_string());
            }
        };
        for c in &self.concepts {
            for p in c.all_phrasings() {
                for t in p {
                    push(t);
                }
            }
            for a in &c.abbreviations {
                push(a);
            }
            for t in c.description.split_whitespace() {
                push(&t.to_lowercase());
            }
        }
        vocab.sort_unstable();
        vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::{ConceptBuilder, ConceptDtype};

    fn tiny() -> Lexicon {
        Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "price change percentage")
                .syn("discount")
                .private("promo cut")
                .abbr("pcp")
                .desc("fractional price reduction")
                .dtype(ConceptDtype::Decimal)
                .related("quantity"),
            ConceptBuilder::attribute(Domain::Retail, "quantity")
                .syn("count")
                .private("item amount")
                .abbr("qty")
                .desc("number of units"),
            ConceptBuilder::entity(Domain::Retail, "transaction line").syn("order line"),
        ])
    }

    #[test]
    fn assemble_assigns_ids_and_resolves_related() {
        let lex = tiny();
        assert_eq!(lex.len(), 3);
        assert_eq!(lex.concept(ConceptId(0)).related, vec![ConceptId(1)]);
        assert!(lex.concept(ConceptId(1)).related.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown concept")]
    fn unknown_related_reference_panics() {
        Lexicon::assemble(vec![ConceptBuilder::attribute(Domain::Retail, "a").related("nope")]);
    }

    #[test]
    #[should_panic(expected = "duplicate canonical")]
    fn duplicate_canonical_panics() {
        Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "a"),
            ConceptBuilder::attribute(Domain::Movie, "a"),
        ]);
    }

    #[test]
    fn public_synsets_exclude_private_forms() {
        let lex = tiny();
        assert_eq!(lex.public_synsets_of("discount"), vec![ConceptId(0)]);
        assert_eq!(lex.public_synsets_of("price change percentage"), vec![ConceptId(0)]);
        assert!(lex.public_synsets_of("promo cut").is_empty());
        assert!(lex.public_synsets_of("pcp").is_empty());
    }

    #[test]
    fn are_public_synonyms_links_canonical_and_syn() {
        let lex = tiny();
        assert!(lex.are_public_synonyms("discount", "price change percentage"));
        assert!(!lex.are_public_synonyms("discount", "quantity"));
        assert!(!lex.are_public_synonyms("promo cut", "price change percentage"));
        assert!(!lex.are_public_synonyms("zebra", "discount"));
    }

    #[test]
    fn lookup_phrase_reports_form() {
        let lex = tiny();
        assert_eq!(lex.lookup_phrase("qty"), &[(ConceptId(1), SurfaceForm::Abbreviation)]);
        assert_eq!(
            lex.lookup_phrase("item amount"),
            &[(ConceptId(1), SurfaceForm::PrivateSynonym)]
        );
        assert!(lex.lookup_phrase("nothing here").is_empty());
    }

    #[test]
    fn token_index_covers_public_phrasings_only() {
        let lex = tiny();
        assert_eq!(lex.public_concepts_of_token("price"), &[ConceptId(0)]);
        assert_eq!(lex.public_concepts_of_token("line"), &[ConceptId(2)]);
        // "promo" appears only in a private phrasing.
        assert!(lex.public_concepts_of_token("promo").is_empty());
    }

    #[test]
    fn usable_in_includes_generic() {
        let lex = Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "discount rate"),
            ConceptBuilder::attribute(Domain::Generic, "identifier"),
            ConceptBuilder::attribute(Domain::Movie, "runtime"),
        ]);
        let retail = lex.usable_in(Domain::Retail, ConceptKind::Attribute);
        let phrases: Vec<_> = retail.iter().map(|c| c.canonical_phrase()).collect();
        assert!(phrases.contains(&"discount rate".to_string()));
        assert!(phrases.contains(&"identifier".to_string()));
        assert!(!phrases.contains(&"runtime".to_string()));
    }

    #[test]
    fn vocabulary_is_sorted_and_deduped() {
        let lex = tiny();
        let vocab = lex.vocabulary();
        let mut sorted = vocab.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(vocab, sorted);
        assert!(vocab.contains(&"discount".to_string()));
        assert!(vocab.contains(&"promo".to_string())); // corpus needs private tokens
        assert!(vocab.contains(&"units".to_string())); // description tokens too
    }
}
