//! Concepts: the atomic units of meaning in the lexicon.
//!
//! A concept bundles every surface form under which a single idea — "the
//! fractional price reduction applied to a sale" — can appear in a schema:
//! its canonical (ISS-style) token sequence, dictionary synonyms, customer
//! jargon, and abbreviations, plus a natural-language description, a typical
//! data type, and relations to adjacent concepts.

use serde::{Deserialize, Serialize};

/// The data type a concept's attribute typically carries.
///
/// Mirrors `lsm_schema::DataType`; kept as a plain string-free enum here so
/// the lexicon crate stays independent of the schema crate (conversion lives
/// in `lsm-datasets`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConceptDtype {
    /// Whole numbers.
    Integer,
    /// Binary floating point.
    Float,
    /// Exact decimals (prices, percentages).
    Decimal,
    /// Character data.
    Text,
    /// Booleans / flags.
    Boolean,
    /// Calendar dates.
    Date,
    /// Points in time.
    Timestamp,
}

/// Identifier of a concept within a [`Lexicon`](crate::Lexicon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// Dense index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The industry vertical a concept belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Retail (the paper's customer schemata and ISS).
    Retail,
    /// Movies (MovieLens-IMDB public dataset).
    Movie,
    /// Healthcare (IPFQR public dataset).
    Health,
    /// Cross-domain concepts: identifiers, names, codes, timestamps.
    Generic,
}

/// Whether a concept names an entity (table) or an attribute (column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConceptKind {
    /// Entity/table-level concept, e.g. *transaction line*.
    Entity,
    /// Attribute/column-level concept, e.g. *price change percentage*.
    Attribute,
}

/// A single concept with all its surface forms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Concept {
    /// Identifier within the owning lexicon.
    pub id: ConceptId,
    /// Entity or attribute concept.
    pub kind: ConceptKind,
    /// Industry vertical.
    pub domain: Domain,
    /// Canonical token sequence, ISS naming style
    /// (e.g. `["price", "change", "percentage"]`).
    pub canonical: Vec<String>,
    /// Dictionary-grade synonymous phrasings. Visible to the embedding and
    /// synset surrogates (≈ FastText / WordNet knowledge).
    pub public_synonyms: Vec<Vec<String>>,
    /// Customer-specific phrasings and jargon. Visible *only* to the MLM
    /// pre-training corpus (≈ BERT's contextual knowledge).
    pub private_synonyms: Vec<Vec<String>>,
    /// Short forms of the whole concept (e.g. `"pcp"`, `"qty"`).
    pub abbreviations: Vec<String>,
    /// One-sentence natural-language description (ISS documentation style).
    pub description: String,
    /// Typical data type of an attribute carrying this concept.
    pub dtype: ConceptDtype,
    /// Adjacent concepts (same semantic neighbourhood); verbalized in the
    /// pre-training corpus.
    pub related: Vec<ConceptId>,
}

impl Concept {
    /// Canonical form joined with spaces.
    pub fn canonical_phrase(&self) -> String {
        self.canonical.join(" ")
    }

    /// Every surface form: canonical + public + private synonyms, in that
    /// order. Abbreviations are excluded (they are single tokens, not
    /// phrases).
    pub fn all_phrasings(&self) -> impl Iterator<Item = &Vec<String>> {
        std::iter::once(&self.canonical)
            .chain(self.public_synonyms.iter())
            .chain(self.private_synonyms.iter())
    }

    /// Surface forms visible to the public synset/embedding surrogates.
    pub fn public_phrasings(&self) -> impl Iterator<Item = &Vec<String>> {
        std::iter::once(&self.canonical).chain(self.public_synonyms.iter())
    }
}

/// Fluent construction of a [`Concept`]; used by the curated domain tables.
#[derive(Debug, Clone)]
pub struct ConceptBuilder {
    kind: ConceptKind,
    domain: Domain,
    canonical: Vec<String>,
    public_synonyms: Vec<Vec<String>>,
    private_synonyms: Vec<Vec<String>>,
    abbreviations: Vec<String>,
    description: String,
    dtype: ConceptDtype,
    related_names: Vec<String>,
}

fn split(phrase: &str) -> Vec<String> {
    phrase.split_whitespace().map(str::to_string).collect()
}

impl ConceptBuilder {
    /// Starts an attribute concept with the given space-separated canonical
    /// phrase.
    pub fn attribute(domain: Domain, canonical: &str) -> Self {
        ConceptBuilder {
            kind: ConceptKind::Attribute,
            domain,
            canonical: split(canonical),
            public_synonyms: Vec::new(),
            private_synonyms: Vec::new(),
            abbreviations: Vec::new(),
            description: String::new(),
            dtype: ConceptDtype::Text,
            related_names: Vec::new(),
        }
    }

    /// Starts an entity concept.
    pub fn entity(domain: Domain, canonical: &str) -> Self {
        let mut b = Self::attribute(domain, canonical);
        b.kind = ConceptKind::Entity;
        b
    }

    /// Adds a public (dictionary-grade) synonym phrase.
    pub fn syn(mut self, phrase: &str) -> Self {
        self.public_synonyms.push(split(phrase));
        self
    }

    /// Adds a private (customer-jargon) phrase.
    pub fn private(mut self, phrase: &str) -> Self {
        self.private_synonyms.push(split(phrase));
        self
    }

    /// Adds an abbreviation token.
    pub fn abbr(mut self, token: &str) -> Self {
        self.abbreviations.push(token.to_string());
        self
    }

    /// Sets the description.
    pub fn desc(mut self, text: &str) -> Self {
        self.description = text.to_string();
        self
    }

    /// Sets the typical data type.
    pub fn dtype(mut self, dtype: ConceptDtype) -> Self {
        self.dtype = dtype;
        self
    }

    /// Declares a related concept by canonical phrase; resolved when the
    /// lexicon is assembled.
    pub fn related(mut self, canonical: &str) -> Self {
        self.related_names.push(canonical.to_string());
        self
    }

    /// Finishes the builder. `id` and resolved `related` ids are filled in
    /// by [`Lexicon::assemble`](crate::Lexicon::assemble).
    pub(crate) fn finish(self, id: ConceptId) -> (Concept, Vec<String>) {
        (
            Concept {
                id,
                kind: self.kind,
                domain: self.domain,
                canonical: self.canonical,
                public_synonyms: self.public_synonyms,
                private_synonyms: self.private_synonyms,
                abbreviations: self.abbreviations,
                description: self.description,
                dtype: self.dtype,
                related: Vec::new(),
            },
            self.related_names,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_splits_phrases_into_tokens() {
        let (c, related) = ConceptBuilder::attribute(Domain::Retail, "price change percentage")
            .syn("discount")
            .syn("markdown rate")
            .private("promo cut")
            .abbr("pcp")
            .desc("fractional price reduction applied at sale time")
            .dtype(ConceptDtype::Decimal)
            .related("sale price")
            .finish(ConceptId(0));
        assert_eq!(c.canonical, vec!["price", "change", "percentage"]);
        assert_eq!(c.canonical_phrase(), "price change percentage");
        assert_eq!(c.public_synonyms.len(), 2);
        assert_eq!(c.public_synonyms[1], vec!["markdown", "rate"]);
        assert_eq!(c.private_synonyms, vec![vec!["promo", "cut"]]);
        assert_eq!(c.abbreviations, vec!["pcp"]);
        assert_eq!(c.dtype, ConceptDtype::Decimal);
        assert_eq!(related, vec!["sale price"]);
    }

    #[test]
    fn phrasing_iterators_respect_visibility() {
        let (c, _) = ConceptBuilder::attribute(Domain::Retail, "quantity")
            .syn("count")
            .private("item amount")
            .finish(ConceptId(1));
        assert_eq!(c.all_phrasings().count(), 3);
        assert_eq!(c.public_phrasings().count(), 2);
        // Private phrasing is not among the public ones.
        assert!(c.public_phrasings().all(|p| p != &vec!["item".to_string(), "amount".to_string()]));
    }

    #[test]
    fn entity_builder_sets_kind() {
        let (c, _) =
            ConceptBuilder::entity(Domain::Retail, "transaction line").finish(ConceptId(2));
        assert_eq!(c.kind, ConceptKind::Entity);
    }
}
