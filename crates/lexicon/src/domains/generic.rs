//! Cross-domain concepts: identifiers, names, codes, timestamps, contact
//! details. These appear in every vertical's schemata.

use crate::concept::{ConceptBuilder, ConceptDtype, Domain};

/// The generic attribute concepts.
pub fn concepts() -> Vec<ConceptBuilder> {
    use ConceptDtype::*;
    let d = Domain::Generic;
    vec![
        ConceptBuilder::attribute(d, "identifier")
            .syn("id")
            .syn("key")
            .private("record ref")
            .abbr("id")
            .dtype(Integer)
            .desc("surrogate key uniquely identifying a record"),
        ConceptBuilder::attribute(d, "name")
            .syn("title")
            .syn("label")
            .private("caption text")
            .dtype(Text)
            .desc("human readable name of the record"),
        ConceptBuilder::attribute(d, "code")
            .syn("short code")
            .private("sys tag")
            .abbr("cd")
            .dtype(Text)
            .desc("short alphanumeric code classifying the record"),
        ConceptBuilder::attribute(d, "status")
            .syn("state")
            .private("lifecycle stage")
            .abbr("stat")
            .dtype(Text)
            .desc("current lifecycle status of the record"),
        ConceptBuilder::attribute(d, "description")
            .syn("comment")
            .syn("remarks")
            .private("free text note")
            .abbr("desc")
            .dtype(Text)
            .desc("long form description of the record"),
        ConceptBuilder::attribute(d, "created timestamp")
            .syn("creation time")
            .private("row inserted at")
            .abbr("ctime")
            .dtype(Timestamp)
            .desc("point in time when the record was created"),
        ConceptBuilder::attribute(d, "updated timestamp")
            .syn("modification time")
            .syn("last modified")
            .private("row touched at")
            .abbr("mtime")
            .dtype(Timestamp)
            .desc("point in time when the record was last updated"),
        ConceptBuilder::attribute(d, "start date")
            .syn("effective date")
            .syn("valid from")
            .private("kick off day")
            .dtype(Date)
            .desc("first day on which the record is effective"),
        ConceptBuilder::attribute(d, "end date")
            .syn("expiration date")
            .syn("valid to")
            .private("sunset day")
            .dtype(Date)
            .desc("last day on which the record is effective")
            .related("start date"),
        ConceptBuilder::attribute(d, "email address")
            .syn("email")
            .syn("electronic mail")
            .private("contact mailbox")
            .dtype(Text)
            .desc("email address used to contact the person"),
        ConceptBuilder::attribute(d, "phone number")
            .syn("telephone")
            .syn("contact number")
            .private("call line")
            .abbr("phone")
            .dtype(Text)
            .desc("telephone number used to contact the person"),
        ConceptBuilder::attribute(d, "street address")
            .syn("address line")
            .private("mailing locale")
            .abbr("addr")
            .dtype(Text)
            .desc("street and house number of a postal address"),
        ConceptBuilder::attribute(d, "city")
            .syn("town")
            .syn("municipality")
            .private("urban area name")
            .dtype(Text)
            .desc("city portion of a postal address"),
        ConceptBuilder::attribute(d, "postal code")
            .syn("zip code")
            .syn("zip")
            .private("mail routing code")
            .dtype(Text)
            .desc("postal routing code of an address")
            .related("city"),
        ConceptBuilder::attribute(d, "country")
            .syn("nation")
            .private("geo region iso")
            .dtype(Text)
            .desc("country portion of a postal address"),
        ConceptBuilder::attribute(d, "state province")
            .syn("region")
            .syn("province")
            .private("admin district")
            .dtype(Text)
            .desc("state or province of a postal address")
            .related("country"),
        ConceptBuilder::attribute(d, "currency code")
            .syn("currency")
            .private("money unit iso")
            .abbr("ccy")
            .dtype(Text)
            .desc("iso currency code the monetary values are expressed in"),
        ConceptBuilder::attribute(d, "type")
            .syn("category kind")
            .syn("kind")
            .private("class bucket")
            .dtype(Text)
            .desc("classification of the record into a kind"),
        ConceptBuilder::attribute(d, "active flag")
            .syn("enabled")
            .syn("is active")
            .private("live switch")
            .dtype(Boolean)
            .desc("whether the record is currently active"),
        ConceptBuilder::attribute(d, "url")
            .syn("web address")
            .syn("link")
            .private("homepage locator")
            .dtype(Text)
            .desc("web address associated with the record"),
        ConceptBuilder::attribute(d, "sequence number")
            .syn("ordinal")
            .syn("position")
            .private("sort slot")
            .abbr("seq")
            .dtype(Integer)
            .desc("ordinal position of the record within its parent"),
        ConceptBuilder::attribute(d, "version number")
            .syn("revision")
            .private("change iteration")
            .abbr("ver")
            .dtype(Integer)
            .desc("monotonically increasing revision of the record"),
        ConceptBuilder::attribute(d, "first name")
            .syn("given name")
            .private("forename text")
            .dtype(Text)
            .desc("given name of a person"),
        ConceptBuilder::attribute(d, "last name")
            .syn("family name")
            .syn("surname")
            .private("kin name")
            .dtype(Text)
            .desc("family name of a person")
            .related("first name"),
        ConceptBuilder::attribute(d, "birth date")
            .syn("date of birth")
            .private("natal day")
            .abbr("dob")
            .dtype(Date)
            .desc("date on which the person was born"),
        ConceptBuilder::attribute(d, "note")
            .syn("annotation")
            .private("scribble text")
            .dtype(Text)
            .desc("free form annotation attached to the record"),
        ConceptBuilder::attribute(d, "external reference")
            .syn("external id")
            .private("partner handle")
            .abbr("xref")
            .dtype(Text)
            .desc("identifier of the record in an external system"),
        ConceptBuilder::attribute(d, "language code")
            .syn("locale")
            .private("tongue iso")
            .abbr("lang")
            .dtype(Text)
            .desc("iso language code of textual content"),
        ConceptBuilder::attribute(d, "latitude")
            .private("geo north coord")
            .abbr("lat")
            .dtype(Float)
            .desc("geographic latitude in decimal degrees"),
        ConceptBuilder::attribute(d, "longitude")
            .private("geo east coord")
            .abbr("lon")
            .dtype(Float)
            .desc("geographic longitude in decimal degrees")
            .related("latitude"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    #[test]
    fn generic_table_assembles_alone() {
        let lex = Lexicon::assemble(concepts());
        assert!(lex.len() >= 30);
        assert!(lex.find_canonical("identifier").is_some());
        assert!(lex.are_public_synonyms("zip code", "postal code"));
    }
}
