//! Healthcare concepts backing the IPFQR public dataset (Inpatient
//! Psychiatric Facility Quality Reporting).
//!
//! The paper uses the IPFQR *state* file as source and *national* file as
//! target; both are single flat entities whose columns are quality-measure
//! rates. Matches are overwhelmingly near-lexical, which is why every
//! baseline scores ≈1.0 on it (Table III). We therefore curate concepts
//! whose alternative forms stay lexically close.

use crate::concept::{ConceptBuilder, ConceptDtype, Domain};

/// Health attribute and entity concepts.
pub fn concepts() -> Vec<ConceptBuilder> {
    use ConceptDtype::*;
    let d = Domain::Health;
    vec![
        // entities
        ConceptBuilder::entity(d, "facility")
            .syn("provider")
            .desc("an inpatient psychiatric facility"),
        ConceptBuilder::entity(d, "measure response")
            .syn("measure data")
            .desc("reported values for one quality measure"),
        // attributes
        ConceptBuilder::attribute(d, "facility name")
            .syn("provider name")
            .dtype(Text)
            .desc("name of the reporting facility"),
        ConceptBuilder::attribute(d, "facility identifier")
            .syn("provider number")
            .syn("ccn")
            .dtype(Text)
            .desc("cms certification number of the facility"),
        ConceptBuilder::attribute(d, "measure code")
            .syn("measure identifier")
            .dtype(Text)
            .desc("code of the quality measure"),
        ConceptBuilder::attribute(d, "measure description")
            .syn("measure name")
            .dtype(Text)
            .desc("description of the quality measure")
            .related("measure code"),
        ConceptBuilder::attribute(d, "numerator")
            .syn("numerator count")
            .dtype(Integer)
            .desc("numerator of the measure rate"),
        ConceptBuilder::attribute(d, "denominator")
            .syn("denominator count")
            .dtype(Integer)
            .desc("denominator of the measure rate")
            .related("numerator"),
        ConceptBuilder::attribute(d, "measure rate")
            .syn("rate percent")
            .syn("percentage rate")
            .dtype(Decimal)
            .desc("reported rate of the quality measure"),
        ConceptBuilder::attribute(d, "state average rate")
            .syn("state rate")
            .dtype(Decimal)
            .desc("average measure rate across the state"),
        ConceptBuilder::attribute(d, "national average rate")
            .syn("national rate")
            .dtype(Decimal)
            .desc("average measure rate across the nation")
            .related("state average rate"),
        ConceptBuilder::attribute(d, "reporting quarter")
            .syn("quarter")
            .dtype(Text)
            .desc("calendar quarter the data covers"),
        ConceptBuilder::attribute(d, "reporting year")
            .syn("data year")
            .dtype(Integer)
            .desc("calendar year the data covers")
            .related("reporting quarter"),
        ConceptBuilder::attribute(d, "footnote")
            .syn("footnote text")
            .dtype(Text)
            .desc("footnote qualifying the reported value"),
        ConceptBuilder::attribute(d, "sample size")
            .syn("patient count")
            .dtype(Integer)
            .desc("number of patients in the measured sample"),
        ConceptBuilder::attribute(d, "survey response rate")
            .syn("response rate percent")
            .dtype(Decimal)
            .desc("fraction of surveyed patients who responded"),
        ConceptBuilder::attribute(d, "screening rate")
            .syn("screening percent")
            .dtype(Decimal)
            .desc("rate of patients screened for the condition"),
        ConceptBuilder::attribute(d, "readmission rate")
            .syn("readmit rate")
            .dtype(Decimal)
            .desc("rate of patients readmitted after discharge"),
        ConceptBuilder::attribute(d, "restraint hours")
            .syn("restraint use hours")
            .dtype(Float)
            .desc("hours of physical restraint use per thousand patient hours"),
        ConceptBuilder::attribute(d, "seclusion hours")
            .syn("seclusion use hours")
            .dtype(Float)
            .desc("hours of seclusion use per thousand patient hours")
            .related("restraint hours"),
        ConceptBuilder::attribute(d, "discharge count")
            .syn("discharges")
            .dtype(Integer)
            .desc("number of patient discharges in the period"),
        ConceptBuilder::attribute(d, "medication continuation rate")
            .syn("medication adherence rate")
            .dtype(Decimal)
            .desc("rate of patients continuing medication after discharge"),
        ConceptBuilder::attribute(d, "follow up rate")
            .syn("followup percent")
            .dtype(Decimal)
            .desc("rate of patients receiving timely follow up care"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    #[test]
    fn health_table_assembles() {
        let lex = Lexicon::assemble(concepts());
        assert!(lex.len() >= 20);
        assert!(lex.are_public_synonyms("readmit rate", "readmission rate"));
    }

    /// IPFQR matches must stay easy: no private synonyms in this domain.
    #[test]
    fn health_concepts_have_no_private_jargon() {
        let lex = Lexicon::assemble(concepts());
        for c in lex.concepts() {
            assert!(
                c.private_synonyms.is_empty(),
                "{:?} should not have private synonyms",
                c.canonical_phrase()
            );
        }
    }
}
