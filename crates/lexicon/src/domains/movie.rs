//! Movie-domain concepts backing the MovieLens-IMDB public dataset.
//!
//! The paper reports moderate baseline accuracy (~0.54-0.72 top-3) on this
//! pair: the schemata are small but some matches need light semantics (e.g.
//! MovieLens `rating` vs IMDB `averageRating`). We model that regime with
//! mostly public synonyms and a few private phrasings.

use crate::concept::{ConceptBuilder, ConceptDtype, Domain};

/// Movie attribute and entity concepts.
pub fn concepts() -> Vec<ConceptBuilder> {
    use ConceptDtype::*;
    let d = Domain::Movie;
    vec![
        // entities
        ConceptBuilder::entity(d, "movie")
            .syn("film")
            .syn("title basics")
            .desc("a released motion picture"),
        ConceptBuilder::entity(d, "rating")
            .syn("title rating")
            .desc("aggregate user ratings for a movie"),
        ConceptBuilder::entity(d, "person")
            .syn("name basics")
            .private("talent")
            .desc("an actor director or crew member"),
        ConceptBuilder::entity(d, "cast member")
            .syn("principal")
            .desc("a person credited on a movie"),
        ConceptBuilder::entity(d, "genre link")
            .syn("movie genre")
            .desc("association of a movie with a genre"),
        ConceptBuilder::entity(d, "user").syn("reviewer").desc("a platform user who rates movies"),
        ConceptBuilder::entity(d, "tag").syn("keyword").desc("a free text tag applied to a movie"),
        ConceptBuilder::entity(d, "episode").syn("tv episode").desc("an episode of a series"),
        // attributes
        ConceptBuilder::attribute(d, "movie identifier")
            .syn("movie id")
            .private("tconst")
            .private("title const")
            .dtype(Text)
            .desc("unique identifier of a movie title"),
        ConceptBuilder::attribute(d, "person identifier")
            .syn("person id")
            .private("nconst")
            .private("name const")
            .dtype(Text)
            .desc("unique identifier of a person")
            .related("movie identifier"),
        ConceptBuilder::attribute(d, "movie title")
            .syn("primary title")
            .syn("film name")
            .private("marquee text")
            .dtype(Text)
            .desc("the display title of the movie"),
        ConceptBuilder::attribute(d, "original title")
            .syn("native title")
            .dtype(Text)
            .desc("title in the original language")
            .related("movie title"),
        ConceptBuilder::attribute(d, "release year")
            .syn("start year")
            .syn("premiere year")
            .private("vintage")
            .dtype(Integer)
            .desc("year the movie was first released"),
        ConceptBuilder::attribute(d, "runtime minutes")
            .syn("duration")
            .syn("length minutes")
            .private("sit time")
            .dtype(Integer)
            .desc("running time of the movie in minutes"),
        ConceptBuilder::attribute(d, "genre list")
            .syn("genres")
            .syn("category tags")
            .dtype(Text)
            .desc("pipe separated list of genres"),
        ConceptBuilder::attribute(d, "average rating")
            .syn("mean score")
            .syn("user rating")
            .private("crowd verdict")
            .dtype(Float)
            .desc("mean of all user ratings for the movie"),
        ConceptBuilder::attribute(d, "vote count")
            .syn("number of votes")
            .syn("ratings count")
            .private("ballot tally")
            .dtype(Integer)
            .desc("number of user ratings received")
            .related("average rating"),
        ConceptBuilder::attribute(d, "rating value")
            .syn("score given")
            .syn("stars")
            .dtype(Float)
            .desc("the score one user gave one movie"),
        ConceptBuilder::attribute(d, "rating timestamp")
            .syn("rated at")
            .private("clocked moment")
            .dtype(Timestamp)
            .desc("time the user submitted the rating"),
        ConceptBuilder::attribute(d, "adult flag")
            .syn("is adult")
            .dtype(Boolean)
            .desc("whether the movie is adult only content"),
        ConceptBuilder::attribute(d, "director name")
            .syn("directed by")
            .private("helmer")
            .dtype(Text)
            .desc("name of the movie director"),
        ConceptBuilder::attribute(d, "actor name")
            .syn("performer name")
            .private("screen talent")
            .dtype(Text)
            .desc("name of a credited actor"),
        ConceptBuilder::attribute(d, "character name")
            .syn("role name")
            .dtype(Text)
            .desc("name of the character played")
            .related("actor name"),
        ConceptBuilder::attribute(d, "birth year")
            .syn("year of birth")
            .dtype(Integer)
            .desc("year the person was born"),
        ConceptBuilder::attribute(d, "death year")
            .syn("year of death")
            .dtype(Integer)
            .desc("year the person died if deceased")
            .related("birth year"),
        ConceptBuilder::attribute(d, "primary profession")
            .syn("main occupation")
            .dtype(Text)
            .desc("comma separated main professions of the person"),
        ConceptBuilder::attribute(d, "known for titles")
            .syn("famous works")
            .dtype(Text)
            .desc("titles the person is best known for"),
        ConceptBuilder::attribute(d, "tag text")
            .syn("keyword text")
            .dtype(Text)
            .desc("the text of the applied tag"),
        ConceptBuilder::attribute(d, "tag relevance")
            .syn("keyword relevance")
            .dtype(Float)
            .desc("relevance weight of the tag for the movie")
            .related("tag text"),
        ConceptBuilder::attribute(d, "season number")
            .syn("season")
            .dtype(Integer)
            .desc("season the episode belongs to"),
        ConceptBuilder::attribute(d, "episode number")
            .syn("episode ordinal")
            .dtype(Integer)
            .desc("position of the episode within its season")
            .related("season number"),
        ConceptBuilder::attribute(d, "job category")
            .syn("credit category")
            .dtype(Text)
            .desc("credit category of the cast member"),
        ConceptBuilder::attribute(d, "ordering")
            .syn("billing order")
            .dtype(Integer)
            .desc("billing position of the credit"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    #[test]
    fn movie_table_assembles() {
        let lex = Lexicon::assemble(concepts());
        assert!(lex.len() >= 25);
        assert!(lex.are_public_synonyms("duration", "runtime minutes"));
        assert!(lex.are_public_synonyms("mean score", "average rating"));
    }
}
