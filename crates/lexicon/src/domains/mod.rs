//! Curated concept tables, one module per industry vertical.
//!
//! These tables are the reproduction's stand-in for proprietary knowledge:
//! the Microsoft retail ISS vocabulary, the naming habits of real customers,
//! and the public datasets' schemata. Each concept lists the canonical
//! ISS-style phrase, dictionary synonyms (public), customer jargon
//! (private), abbreviations, a description, a data type, and its semantic
//! neighbours.

pub mod generic;
pub mod health;
pub mod movie;
pub mod retail;

use crate::concept::ConceptBuilder;
use crate::lexicon::Lexicon;

/// Assembles the full multi-domain lexicon used throughout the repo.
pub fn full_lexicon() -> Lexicon {
    let mut builders: Vec<ConceptBuilder> = Vec::new();
    builders.extend(generic::concepts());
    builders.extend(retail::attribute_concepts());
    builders.extend(retail::entity_concepts());
    builders.extend(movie::concepts());
    builders.extend(health::concepts());
    Lexicon::assemble(builders)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::{ConceptKind, Domain};

    #[test]
    fn full_lexicon_assembles() {
        let lex = full_lexicon();
        assert!(lex.len() > 150, "expected a rich lexicon, got {}", lex.len());
    }

    #[test]
    fn full_lexicon_has_all_domains() {
        let lex = full_lexicon();
        for d in [Domain::Retail, Domain::Movie, Domain::Health, Domain::Generic] {
            assert!(lex.of_domain(d).count() > 0, "missing domain {d:?}");
        }
    }

    #[test]
    fn retail_has_entity_and_attribute_concepts() {
        let lex = full_lexicon();
        let entities =
            lex.of_domain(Domain::Retail).filter(|c| c.kind == ConceptKind::Entity).count();
        let attrs =
            lex.of_domain(Domain::Retail).filter(|c| c.kind == ConceptKind::Attribute).count();
        assert!(entities >= 30, "need ≥30 retail entity concepts, got {entities}");
        assert!(attrs >= 80, "need ≥80 retail attribute concepts, got {attrs}");
    }

    #[test]
    fn every_concept_has_a_description() {
        let lex = full_lexicon();
        for c in lex.concepts() {
            assert!(
                !c.description.is_empty(),
                "concept {:?} lacks a description",
                c.canonical_phrase()
            );
        }
    }

    /// The hard-rename channels need material to draw from: a healthy share
    /// of attribute concepts must carry private synonyms, and some public
    /// synonyms must be lexically disjoint from their canonical form.
    #[test]
    fn rename_channels_have_material() {
        let lex = full_lexicon();
        let attrs: Vec<_> =
            lex.concepts().iter().filter(|c| c.kind == ConceptKind::Attribute).collect();
        let with_private = attrs.iter().filter(|c| !c.private_synonyms.is_empty()).count();
        let with_public = attrs.iter().filter(|c| !c.public_synonyms.is_empty()).count();
        let with_abbr = attrs.iter().filter(|c| !c.abbreviations.is_empty()).count();
        assert!(
            with_private * 3 >= attrs.len(),
            "≥1/3 of attribute concepts need private synonyms"
        );
        assert!(with_public * 2 >= attrs.len(), "≥1/2 need public synonyms");
        assert!(with_abbr * 10 >= attrs.len(), "≥1/10 need abbreviations");
    }
}
