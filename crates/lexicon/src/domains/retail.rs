//! Retail-domain concepts: the vocabulary of the synthetic industry-specific
//! schema (ISS) and of the customer schemata derived from it.
//!
//! Several concepts encode the paper's own running examples: `quantity` vs
//! `item_amount`, `price change percentage` vs `discount`, `european article
//! number` vs `EAN`, `total order line amount` vs `items_subtotal`,
//! `suggested retail price` vs `full_price`, and `promised available
//! curbside pickup timestamp` vs `pick_up_estimated_time`. Whether an
//! alternative form is *public* (dictionary-grade, visible to the
//! FastText/WordNet surrogates) or *private* (customer jargon, visible only
//! to the MLM pre-training corpus) calibrates how hard each rename is for
//! the baselines — the paper reports that >30 % of real customer matches are
//! of the hard kind.

use crate::concept::{ConceptBuilder, ConceptDtype, Domain};

/// Retail attribute concepts.
pub fn attribute_concepts() -> Vec<ConceptBuilder> {
    use ConceptDtype::*;
    let d = Domain::Retail;
    vec![
        // ----- quantities and amounts (paper examples) -----
        ConceptBuilder::attribute(d, "quantity")
            .syn("unit count")
            .private("item amount")
            .private("pieces sold")
            .abbr("qty")
            .dtype(Integer)
            .desc("number of units of the product in the transaction line"),
        ConceptBuilder::attribute(d, "price change percentage")
            .syn("markdown rate")
            .private("discount")
            .private("promo cut")
            .dtype(Decimal)
            .desc("fractional reduction applied to the list price at sale time"),
        ConceptBuilder::attribute(d, "european article number")
            .syn("international article number")
            .private("barcode digits")
            .abbr("ean")
            .dtype(Text)
            .desc("standardized thirteen digit barcode identifying the product"),
        ConceptBuilder::attribute(d, "total order line amount")
            .syn("line total")
            .private("items subtotal")
            .private("extended price")
            .dtype(Decimal)
            .desc("monetary value of the order line after discounts")
            .related("quantity"),
        ConceptBuilder::attribute(d, "suggested retail price")
            .syn("list price")
            .private("full price")
            .private("sticker value")
            .abbr("msrp")
            .dtype(Decimal)
            .desc("price the manufacturer recommends charging consumers"),
        ConceptBuilder::attribute(d, "promised available curbside pickup timestamp")
            .syn("curbside pickup time")
            .private("pick up estimated time")
            .dtype(Timestamp)
            .desc("time at which the curbside pickup order is promised to be ready"),
        // ----- pricing -----
        ConceptBuilder::attribute(d, "unit price")
            .syn("price per unit")
            .private("each cost")
            .dtype(Decimal)
            .desc("price charged for a single unit of the product"),
        ConceptBuilder::attribute(d, "product item price amount")
            .syn("item price")
            .private("ticket value")
            .dtype(Decimal)
            .desc("monetary price of the product item on the price list"),
        ConceptBuilder::attribute(d, "wholesale price")
            .syn("trade price")
            .private("bulk buy rate")
            .dtype(Decimal)
            .desc("price charged to resellers buying in bulk"),
        ConceptBuilder::attribute(d, "cost of goods")
            .syn("unit cost")
            .private("landed spend")
            .abbr("cogs")
            .dtype(Decimal)
            .desc("direct cost incurred to acquire or produce the product"),
        ConceptBuilder::attribute(d, "margin percentage")
            .syn("profit margin")
            .private("take rate")
            .dtype(Decimal)
            .desc("fraction of the sale price retained as profit")
            .related("cost of goods"),
        ConceptBuilder::attribute(d, "tax amount")
            .syn("sales tax")
            .private("levy charge")
            .dtype(Decimal)
            .desc("tax collected on the transaction"),
        ConceptBuilder::attribute(d, "tax rate")
            .syn("tax percentage")
            .private("levy fraction")
            .dtype(Decimal)
            .desc("fractional tax applied to the taxable amount")
            .related("tax amount"),
        ConceptBuilder::attribute(d, "net amount")
            .syn("amount excluding tax")
            .private("pre levy sum")
            .dtype(Decimal)
            .desc("monetary amount before taxes are applied"),
        ConceptBuilder::attribute(d, "gross amount")
            .syn("amount including tax")
            .private("all in sum")
            .dtype(Decimal)
            .desc("monetary amount after taxes are applied")
            .related("net amount"),
        ConceptBuilder::attribute(d, "shipping cost")
            .syn("delivery fee")
            .private("freight charge")
            .dtype(Decimal)
            .desc("fee charged for delivering the order"),
        ConceptBuilder::attribute(d, "refund amount")
            .syn("reimbursement")
            .private("give back sum")
            .dtype(Decimal)
            .desc("monetary amount returned to the customer"),
        ConceptBuilder::attribute(d, "deposit amount")
            .syn("down payment")
            .private("upfront stake")
            .dtype(Decimal)
            .desc("amount paid in advance to reserve goods"),
        ConceptBuilder::attribute(d, "loyalty points balance")
            .syn("reward points")
            .private("perk credits")
            .dtype(Integer)
            .desc("accumulated loyalty program points of the customer"),
        ConceptBuilder::attribute(d, "promotion budget")
            .syn("campaign budget")
            .private("ad war chest")
            .dtype(Decimal)
            .desc("monetary budget allocated to the promotion"),
        ConceptBuilder::attribute(d, "coupon code")
            .syn("voucher code")
            .private("deal token")
            .dtype(Text)
            .desc("alphanumeric code the customer redeems for a discount"),
        ConceptBuilder::attribute(d, "redemption count")
            .syn("uses count")
            .private("burn tally")
            .dtype(Integer)
            .desc("number of times the coupon has been redeemed")
            .related("coupon code"),
        // ----- product catalog -----
        ConceptBuilder::attribute(d, "stock keeping unit")
            .syn("product code")
            .private("shelf tag code")
            .abbr("sku")
            .dtype(Text)
            .desc("retailer specific code identifying the sellable item"),
        ConceptBuilder::attribute(d, "universal product code")
            .syn("product barcode")
            .private("scan digits")
            .abbr("upc")
            .dtype(Text)
            .desc("twelve digit barcode used in north american retail"),
        ConceptBuilder::attribute(d, "brand name")
            .syn("make")
            .private("marque label")
            .dtype(Text)
            .desc("brand under which the product is marketed"),
        ConceptBuilder::attribute(d, "product category")
            .syn("merchandise group")
            .private("range bucket")
            .dtype(Text)
            .desc("category of the merchandise hierarchy the product sits in"),
        ConceptBuilder::attribute(d, "product weight")
            .syn("item weight")
            .private("heft grams")
            .dtype(Float)
            .desc("weight of a single unit of the product"),
        ConceptBuilder::attribute(d, "product color")
            .syn("colour")
            .private("shade finish")
            .dtype(Text)
            .desc("color variant of the product"),
        ConceptBuilder::attribute(d, "product size")
            .syn("size label")
            .private("fit spec")
            .dtype(Text)
            .desc("size variant of the product"),
        ConceptBuilder::attribute(d, "warranty period months")
            .syn("guarantee duration")
            .private("cover span")
            .dtype(Integer)
            .desc("number of months the product warranty lasts"),
        ConceptBuilder::attribute(d, "launch date")
            .syn("release date")
            .private("street day")
            .dtype(Date)
            .desc("date the product became available for sale"),
        ConceptBuilder::attribute(d, "discontinued flag")
            .syn("end of life")
            .private("sunset mark")
            .dtype(Boolean)
            .desc("whether the product is no longer sold"),
        ConceptBuilder::attribute(d, "seasonal flag")
            .syn("seasonal item")
            .private("holiday only mark")
            .dtype(Boolean)
            .desc("whether the product is sold only in certain seasons"),
        ConceptBuilder::attribute(d, "clearance flag")
            .syn("closeout")
            .private("rack out mark")
            .dtype(Boolean)
            .desc("whether the product is being cleared from inventory"),
        // ----- inventory -----
        ConceptBuilder::attribute(d, "stock level")
            .syn("on hand quantity")
            .private("shelf depth")
            .dtype(Integer)
            .desc("number of units currently available in inventory"),
        ConceptBuilder::attribute(d, "reorder point")
            .syn("replenishment threshold")
            .private("refill trigger")
            .dtype(Integer)
            .desc("stock level at which a replenishment order is placed")
            .related("stock level"),
        ConceptBuilder::attribute(d, "safety stock")
            .syn("buffer stock")
            .private("cushion units")
            .dtype(Integer)
            .desc("extra inventory kept to absorb demand spikes"),
        ConceptBuilder::attribute(d, "warehouse zone")
            .syn("storage zone")
            .private("depot sector")
            .dtype(Text)
            .desc("zone of the warehouse where the product is stored"),
        ConceptBuilder::attribute(d, "bin location")
            .syn("storage bin")
            .private("slot coords")
            .dtype(Text)
            .desc("exact bin within the warehouse zone")
            .related("warehouse zone"),
        ConceptBuilder::attribute(d, "pallet count")
            .syn("pallet quantity")
            .private("skid tally")
            .dtype(Integer)
            .desc("number of pallets of the product in storage"),
        ConceptBuilder::attribute(d, "lot number")
            .syn("batch number")
            .private("production run tag")
            .dtype(Text)
            .desc("identifier of the manufacturing batch"),
        ConceptBuilder::attribute(d, "expiration date")
            .syn("best before date")
            .private("spoil day")
            .dtype(Date)
            .desc("date after which the product should not be sold")
            .related("lot number"),
        ConceptBuilder::attribute(d, "manufacture date")
            .syn("production date")
            .private("made on day")
            .dtype(Date)
            .desc("date the batch was manufactured"),
        ConceptBuilder::attribute(d, "inventory valuation")
            .syn("stock value")
            .private("hoard worth")
            .dtype(Decimal)
            .desc("monetary value of the inventory on hand"),
        // ----- orders and transactions -----
        ConceptBuilder::attribute(d, "order date")
            .syn("purchase date")
            .private("basket day")
            .dtype(Date)
            .desc("date the order was placed"),
        ConceptBuilder::attribute(d, "ship date")
            .syn("dispatch date")
            .private("out the door day")
            .dtype(Date)
            .desc("date the order left the warehouse")
            .related("order date"),
        ConceptBuilder::attribute(d, "delivery date")
            .syn("arrival date")
            .private("doorstep day")
            .dtype(Date)
            .desc("date the order reached the customer")
            .related("ship date"),
        ConceptBuilder::attribute(d, "payment method")
            .syn("payment type")
            .private("tender kind")
            .dtype(Text)
            .desc("instrument used to pay for the transaction"),
        ConceptBuilder::attribute(d, "card last four")
            .syn("card suffix")
            .private("pan tail")
            .dtype(Text)
            .desc("last four digits of the payment card"),
        ConceptBuilder::attribute(d, "authorization code")
            .syn("approval code")
            .private("acquirer stamp")
            .dtype(Text)
            .desc("code returned by the payment processor on approval"),
        ConceptBuilder::attribute(d, "invoice number")
            .syn("bill number")
            .private("ar doc ref")
            .dtype(Text)
            .desc("identifier printed on the invoice document"),
        ConceptBuilder::attribute(d, "receipt number")
            .syn("ticket number")
            .private("till slip ref")
            .dtype(Text)
            .desc("identifier printed on the point of sale receipt"),
        ConceptBuilder::attribute(d, "register number")
            .syn("till number")
            .private("lane box id")
            .dtype(Integer)
            .desc("identifier of the point of sale register"),
        ConceptBuilder::attribute(d, "cashier name")
            .syn("clerk name")
            .private("till operator")
            .dtype(Text)
            .desc("name of the employee operating the register")
            .related("register number"),
        ConceptBuilder::attribute(d, "line number")
            .syn("line sequence")
            .private("row ordinal in basket")
            .dtype(Integer)
            .desc("position of the line within the transaction"),
        ConceptBuilder::attribute(d, "fulfillment status")
            .syn("shipping status")
            .private("parcel stage")
            .dtype(Text)
            .desc("progress of the order through fulfillment"),
        ConceptBuilder::attribute(d, "tracking number")
            .syn("shipment tracking code")
            .private("parcel trace ref")
            .dtype(Text)
            .desc("carrier issued code for tracking the shipment"),
        ConceptBuilder::attribute(d, "carrier name")
            .syn("shipping company")
            .private("haulier label")
            .dtype(Text)
            .desc("company transporting the shipment")
            .related("tracking number"),
        ConceptBuilder::attribute(d, "return reason")
            .syn("refund reason")
            .private("send back cause")
            .dtype(Text)
            .desc("reason the customer returned the goods"),
        ConceptBuilder::attribute(d, "exchange flag")
            .syn("exchanged")
            .private("swap mark")
            .dtype(Boolean)
            .desc("whether the return was resolved as an exchange")
            .related("return reason"),
        ConceptBuilder::attribute(d, "gift wrap flag")
            .syn("gift wrapped")
            .private("bow tie mark")
            .dtype(Boolean)
            .desc("whether the item was gift wrapped"),
        ConceptBuilder::attribute(d, "basket size")
            .syn("items per transaction")
            .private("haul breadth")
            .dtype(Integer)
            .desc("number of distinct items in the transaction"),
        ConceptBuilder::attribute(d, "channel")
            .syn("sales channel")
            .private("route to market")
            .dtype(Text)
            .desc("channel through which the sale was made"),
        ConceptBuilder::attribute(d, "pos terminal identifier")
            .syn("terminal id")
            .private("checkout box ref")
            .dtype(Text)
            .desc("identifier of the point of sale terminal"),
        // ----- customer analytics -----
        ConceptBuilder::attribute(d, "customer segment")
            .syn("customer tier")
            .private("shopper cohort")
            .dtype(Text)
            .desc("marketing segment the customer belongs to"),
        ConceptBuilder::attribute(d, "household size")
            .syn("family size")
            .private("home headcount")
            .dtype(Integer)
            .desc("number of people in the customer household"),
        ConceptBuilder::attribute(d, "annual income")
            .syn("yearly income")
            .private("take home band")
            .dtype(Decimal)
            .desc("estimated yearly income of the customer"),
        ConceptBuilder::attribute(d, "visit frequency")
            .syn("shopping frequency")
            .private("footfall cadence")
            .dtype(Float)
            .desc("average number of store visits per month"),
        ConceptBuilder::attribute(d, "churn risk score")
            .syn("attrition risk")
            .private("walk away odds")
            .dtype(Float)
            .desc("model score predicting customer attrition"),
        ConceptBuilder::attribute(d, "satisfaction rating")
            .syn("csat score")
            .private("smiley tally")
            .dtype(Float)
            .desc("customer reported satisfaction score"),
        ConceptBuilder::attribute(d, "review text")
            .syn("review body")
            .private("shopper verbatim")
            .dtype(Text)
            .desc("free text of the product review"),
        ConceptBuilder::attribute(d, "review score")
            .syn("star rating")
            .private("rave grade")
            .dtype(Float)
            .desc("numeric score of the product review")
            .related("review text"),
        ConceptBuilder::attribute(d, "wish list count")
            .syn("saved items count")
            .private("someday pile size")
            .dtype(Integer)
            .desc("number of items on the customer wish list"),
        ConceptBuilder::attribute(d, "cart abandonment rate")
            .syn("abandonment rate")
            .private("bail fraction")
            .dtype(Float)
            .desc("fraction of carts abandoned before checkout"),
        ConceptBuilder::attribute(d, "opt in flag")
            .syn("marketing consent")
            .private("spam ok mark")
            .dtype(Boolean)
            .desc("whether the customer consented to marketing contact"),
        // ----- store operations -----
        ConceptBuilder::attribute(d, "store area square meters")
            .syn("floor area")
            .private("footprint sqm")
            .dtype(Float)
            .desc("selling floor area of the store"),
        ConceptBuilder::attribute(d, "aisle number")
            .syn("aisle")
            .private("gangway index")
            .dtype(Integer)
            .desc("aisle of the store where the product is displayed"),
        ConceptBuilder::attribute(d, "shelf position")
            .syn("shelf slot")
            .private("planogram spot")
            .dtype(Text)
            .desc("exact shelf placement within the aisle")
            .related("aisle number"),
        ConceptBuilder::attribute(d, "opening hour")
            .syn("opens at")
            .private("doors up time")
            .dtype(Text)
            .desc("time of day the store opens"),
        ConceptBuilder::attribute(d, "closing hour")
            .syn("closes at")
            .private("doors down time")
            .dtype(Text)
            .desc("time of day the store closes")
            .related("opening hour"),
        ConceptBuilder::attribute(d, "headcount")
            .syn("employee count")
            .private("crew size")
            .dtype(Integer)
            .desc("number of employees working at the store"),
        ConceptBuilder::attribute(d, "manager name")
            .syn("store manager")
            .private("site lead")
            .dtype(Text)
            .desc("name of the store manager"),
        ConceptBuilder::attribute(d, "franchise flag")
            .syn("franchised")
            .private("licensee mark")
            .dtype(Boolean)
            .desc("whether the store is operated by a franchisee"),
        // ----- suppliers and purchasing -----
        ConceptBuilder::attribute(d, "supplier name")
            .syn("vendor name")
            .private("source firm")
            .dtype(Text)
            .desc("name of the company supplying the goods"),
        ConceptBuilder::attribute(d, "lead time days")
            .syn("delivery lead time")
            .private("wait window days")
            .dtype(Integer)
            .desc("days between placing and receiving a purchase order"),
        ConceptBuilder::attribute(d, "minimum order quantity")
            .syn("minimum purchase")
            .private("floor batch size")
            .abbr("moq")
            .dtype(Integer)
            .desc("smallest quantity the supplier will accept"),
        ConceptBuilder::attribute(d, "payment terms")
            .syn("credit terms")
            .private("settle window")
            .dtype(Text)
            .desc("contractual terms for paying the supplier"),
        ConceptBuilder::attribute(d, "purchase order number")
            .syn("po number")
            .private("buy docket ref")
            .dtype(Text)
            .desc("identifier of the purchase order document"),
        // ----- promotions -----
        ConceptBuilder::attribute(d, "discount percentage")
            .syn("percent off")
            .private("slash depth")
            .dtype(Decimal)
            .desc("advertised percentage reduction of the promotion"),
        ConceptBuilder::attribute(d, "promotion name")
            .syn("campaign name")
            .private("push moniker")
            .dtype(Text)
            .desc("marketing name of the promotion"),
        ConceptBuilder::attribute(d, "redemption limit")
            .syn("usage limit")
            .private("burn ceiling")
            .dtype(Integer)
            .desc("maximum number of redemptions allowed"),
        ConceptBuilder::attribute(d, "target audience")
            .syn("audience segment")
            .private("aim cohort")
            .dtype(Text)
            .desc("customer segment the promotion targets"),
    ]
}

/// Retail entity (table) concepts.
pub fn entity_concepts() -> Vec<ConceptBuilder> {
    let d = Domain::Retail;
    let e = |canonical: &str| ConceptBuilder::entity(d, canonical);
    vec![
        e("transaction line")
            .syn("sales line")
            .private("orders")
            .desc("one product position within a sales transaction"),
        e("transaction header")
            .syn("sales transaction")
            .private("basket")
            .desc("a completed sales transaction at a point of sale"),
        e("product").syn("item").private("article").desc("a sellable good in the catalog"),
        e("brand").syn("make").private("marque").desc("a brand under which products are sold"),
        e("customer").syn("shopper").private("client account").desc("a person buying goods"),
        e("store").syn("shop").private("outlet site").desc("a physical retail location"),
        e("promotion").syn("campaign").private("deal push").desc("a time bound marketing campaign"),
        e("coupon").syn("voucher").private("deal slip").desc("a redeemable discount instrument"),
        e("supplier").syn("vendor").private("source partner").desc("a company supplying goods"),
        e("warehouse").syn("distribution center").private("depot").desc("a storage facility"),
        e("inventory")
            .syn("stock")
            .private("holding ledger")
            .desc("stock levels per product and site"),
        e("purchase order")
            .syn("procurement order")
            .private("buy docket")
            .desc("an order placed with a supplier"),
        e("shipment").syn("delivery").private("parcel run").desc("a physical movement of goods"),
        e("return").syn("refund case").private("send back").desc("goods returned by a customer"),
        e("payment").syn("tender").private("settlement").desc("a payment applied to a transaction"),
        e("invoice").syn("bill").private("ar document").desc("a billing document for a sale"),
        e("price list").syn("tariff").private("rate card").desc("prices of products over time"),
        e("product related status")
            .syn("product status")
            .private("item state")
            .desc("lifecycle status codes of products"),
        e("category")
            .syn("merchandise category")
            .private("range group")
            .desc("a node of the merchandise hierarchy"),
        e("loyalty program")
            .syn("rewards program")
            .private("perks club")
            .desc("a customer loyalty scheme"),
        e("loyalty account")
            .syn("rewards account")
            .private("perks wallet")
            .desc("a customer membership in a loyalty program"),
        e("employee")
            .syn("staff member")
            .private("crew member")
            .desc("a person employed at a store"),
        e("register").syn("till").private("lane box").desc("a point of sale register"),
        e("gift card")
            .syn("stored value card")
            .private("plastic credit")
            .desc("a prepaid stored value instrument"),
        e("wish list")
            .syn("saved items")
            .private("someday pile")
            .desc("products a customer saved for later"),
        e("review")
            .syn("product review")
            .private("shopper write up")
            .desc("a customer review of a product"),
        e("address").syn("postal address").private("mail point").desc("a postal address record"),
        e("contact")
            .syn("contact detail")
            .private("reach record")
            .desc("contact details for a party"),
        e("currency")
            .syn("currency unit")
            .private("money denomination")
            .desc("a currency and its codes"),
        e("tax jurisdiction")
            .syn("tax region")
            .private("levy zone")
            .desc("a region with its own tax rules"),
        e("planogram")
            .syn("shelf layout")
            .private("display map")
            .desc("the planned shelf layout of a store"),
        e("assortment")
            .syn("product assortment")
            .private("range plan")
            .desc("the set of products a store carries"),
        e("price change")
            .syn("reprice event")
            .private("tag swap")
            .desc("a historical price change event"),
        e("stock movement")
            .syn("inventory movement")
            .private("ledger hop")
            .desc("a movement of stock between locations"),
        e("delivery slot")
            .syn("time window")
            .private("van window")
            .desc("a bookable delivery time window"),
        e("basket item")
            .syn("cart line")
            .private("trolley row")
            .desc("an item placed in an online cart"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::ConceptKind;
    use crate::lexicon::Lexicon;

    fn lex() -> Lexicon {
        let mut b = attribute_concepts();
        b.extend(entity_concepts());
        Lexicon::assemble(b)
    }

    #[test]
    fn retail_table_assembles() {
        let lex = lex();
        assert!(lex.len() >= 120, "got {}", lex.len());
    }

    #[test]
    fn paper_examples_are_present() {
        let lex = lex();
        // quantity vs item_amount: private, so NOT public synonyms.
        assert!(lex.find_canonical("quantity").is_some());
        assert!(!lex.are_public_synonyms("quantity", "item amount"));
        // EAN is an abbreviation — invisible to the synset view.
        assert!(lex.public_synsets_of("ean").is_empty());
        let hits = lex.lookup_phrase("ean");
        assert_eq!(hits.len(), 1);
        // discount is customer jargon for price change percentage.
        assert!(!lex.are_public_synonyms("discount", "price change percentage"));
        assert_eq!(
            lex.lookup_phrase("discount").len(),
            1,
            "discount should be exactly one concept's private synonym"
        );
    }

    #[test]
    fn entity_concepts_are_entities() {
        let lex = lex();
        let tl = lex.find_canonical("transaction line").unwrap();
        assert_eq!(lex.concept(tl).kind, ConceptKind::Entity);
    }

    #[test]
    fn every_attribute_concept_has_private_or_public_synonym_or_abbr() {
        let lex = lex();
        for c in lex.concepts() {
            if c.kind == ConceptKind::Attribute {
                assert!(
                    !c.public_synonyms.is_empty()
                        || !c.private_synonyms.is_empty()
                        || !c.abbreviations.is_empty(),
                    "{:?} has no alternative surface form",
                    c.canonical_phrase()
                );
            }
        }
    }
}
