//! Synthetic domain-corpus generation for MLM pre-training.
//!
//! Real BERT acquires its knowledge from the Toronto Books and Wikipedia
//! corpora; our mini-BERT acquires the equivalent *domain* knowledge from
//! sentences verbalizing the lexicon: synonym statements, descriptions,
//! abbreviation expansions, concept relations, and schema-flavoured chatter.
//! Crucially, the corpus includes the *private* customer phrasings — the
//! paraphrase knowledge that dictionary-based baselines never see — which is
//! precisely the asymmetry the paper attributes to pre-trained language
//! models.

use crate::concept::ConceptKind;
use crate::lexicon::Lexicon;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// PRNG seed; the corpus is fully deterministic given the seed.
    pub seed: u64,
    /// How many sentence variants to emit per (concept, surface form) pair.
    pub repeats_per_form: usize,
    /// Whether private (customer-jargon) phrasings are verbalized. The BERT
    /// corpus sets this to `true`; ablations can turn it off.
    pub include_private: bool,
    /// Number of extra schema-chatter sentences mixing co-domain concepts.
    pub chatter_sentences: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x5eed,
            repeats_per_form: 3,
            include_private: true,
            chatter_sentences: 400,
        }
    }
}

/// Generates tokenized sentences from a lexicon.
#[derive(Debug)]
pub struct CorpusGenerator<'a> {
    lexicon: &'a Lexicon,
    config: CorpusConfig,
}

fn sentence(parts: &[&[String]], glue: &[&str]) -> Vec<String> {
    // Interleave glue words (split on spaces) with token slices:
    // glue[0] parts[0] glue[1] parts[1] ... glue[n].
    let mut out = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        out.extend(glue[i].split_whitespace().map(str::to_string));
        out.extend(part.iter().cloned());
    }
    if glue.len() > parts.len() {
        out.extend(glue[parts.len()].split_whitespace().map(str::to_string));
    }
    out
}

impl<'a> CorpusGenerator<'a> {
    /// Creates a generator over `lexicon` with the given configuration.
    pub fn new(lexicon: &'a Lexicon, config: CorpusConfig) -> Self {
        CorpusGenerator { lexicon, config }
    }

    /// Generates the corpus: a vector of tokenized sentences.
    pub fn generate(&self) -> Vec<Vec<String>> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut corpus: Vec<Vec<String>> = Vec::new();

        let synonym_templates: &[(&str, &str, &str)] = &[
            ("the", "is also called the", ""),
            ("the", "is another name for the", ""),
            ("analysts record the", "as the", ""),
            ("in many schemas the", "column stores the", ""),
            ("people often say", "when they mean the", ""),
        ];
        let desc_templates: &[(&str, &str)] =
            &[("the", "is"), ("a", "denotes"), ("by definition the", "captures")];
        let relation_templates: &[(&str, &str, &str)] = &[
            ("the", "is closely related to the", ""),
            ("a change in the", "usually affects the", ""),
            ("reports often show the", "next to the", ""),
        ];
        let abbr_templates: &[(&str, &str, &str)] = &[
            ("", "is short for", ""),
            ("the abbreviation", "stands for the", ""),
            ("", "abbreviates", ""),
        ];

        for c in self.lexicon.concepts() {
            let canonical = &c.canonical;
            // Synonym statements, public and (optionally) private.
            let mut forms: Vec<&Vec<String>> = c.public_synonyms.iter().collect();
            if self.config.include_private {
                forms.extend(c.private_synonyms.iter());
            }
            for form in forms {
                for _ in 0..self.config.repeats_per_form {
                    let (a, b, z) =
                        *synonym_templates.choose(&mut rng).expect("templates are non-empty");
                    // Emit both directions so the relation is symmetric in
                    // the data.
                    if rng.gen_bool(0.5) {
                        corpus.push(sentence(&[form, canonical], &[a, b, z]));
                    } else {
                        corpus.push(sentence(&[canonical, form], &[a, b, z]));
                    }
                }
            }
            // Description statements.
            if !c.description.is_empty() {
                let desc_tokens: Vec<String> =
                    c.description.split_whitespace().map(|t| t.to_lowercase()).collect();
                for _ in 0..self.config.repeats_per_form {
                    let (a, b) = *desc_templates.choose(&mut rng).expect("non-empty");
                    corpus.push(sentence(&[canonical, &desc_tokens], &[a, b, ""]));
                }
            }
            // Abbreviation expansions.
            for abbr in &c.abbreviations {
                let abbr_tokens = vec![abbr.clone()];
                for _ in 0..self.config.repeats_per_form {
                    let (a, b, z) = *abbr_templates.choose(&mut rng).expect("non-empty");
                    corpus.push(sentence(&[&abbr_tokens, canonical], &[a, b, z]));
                }
            }
            // Relation statements.
            for &rel in &c.related {
                let other = &self.lexicon.concept(rel).canonical;
                let (a, b, z) = *relation_templates.choose(&mut rng).expect("non-empty");
                corpus.push(sentence(&[canonical, other], &[a, b, z]));
            }
        }

        // Schema-flavoured chatter: "each <entity> records the <attr> and
        // the <attr>". Mixes co-domain concepts so attention heads see
        // attribute vocabulary in entity context.
        let entities: Vec<_> =
            self.lexicon.concepts().iter().filter(|c| c.kind == ConceptKind::Entity).collect();
        let attrs: Vec<_> =
            self.lexicon.concepts().iter().filter(|c| c.kind == ConceptKind::Attribute).collect();
        if !entities.is_empty() && attrs.len() >= 2 {
            for _ in 0..self.config.chatter_sentences {
                let e = entities.choose(&mut rng).expect("non-empty");
                let a1 = attrs.choose(&mut rng).expect("non-empty");
                let a2 = attrs.choose(&mut rng).expect("non-empty");
                // Qualified attribute mentions ("the total quantity") keep
                // ISS-style qualifier prefixes in the vocabulary.
                let mut a1_tokens = a1.canonical.clone();
                if rng.gen_bool(0.3) {
                    let q = crate::QUALIFIERS[rng.gen_range(0..crate::QUALIFIERS.len())];
                    a1_tokens.insert(0, q.to_string());
                }
                corpus.push(sentence(
                    &[&e.canonical, &a1_tokens, &a2.canonical],
                    &["each", "record stores the", "and the", ""],
                ));
            }
        }

        corpus.shuffle(&mut rng);
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::{ConceptBuilder, Domain};

    fn lex() -> Lexicon {
        Lexicon::assemble(vec![
            ConceptBuilder::attribute(Domain::Retail, "quantity")
                .syn("unit count")
                .private("item amount")
                .abbr("qty")
                .desc("number of units sold")
                .related("total amount"),
            ConceptBuilder::attribute(Domain::Retail, "total amount").desc("value of the line"),
            ConceptBuilder::entity(Domain::Retail, "transaction line").desc("a sales line"),
        ])
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let l = lex();
        let a = CorpusGenerator::new(&l, CorpusConfig::default()).generate();
        let b = CorpusGenerator::new(&l, CorpusConfig::default()).generate();
        assert_eq!(a, b);
        let c = CorpusGenerator::new(&l, CorpusConfig { seed: 7, ..Default::default() }).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_mentions_private_forms_when_enabled() {
        let l = lex();
        let corpus = CorpusGenerator::new(&l, CorpusConfig::default()).generate();
        let has_private =
            corpus.iter().any(|s| s.windows(2).any(|w| w[0] == "item" && w[1] == "amount"));
        assert!(has_private, "private phrasing should appear in the corpus");
    }

    #[test]
    fn corpus_hides_private_forms_when_disabled() {
        let l = lex();
        let cfg = CorpusConfig { include_private: false, ..Default::default() };
        let corpus = CorpusGenerator::new(&l, cfg).generate();
        let has_private =
            corpus.iter().any(|s| s.windows(2).any(|w| w[0] == "item" && w[1] == "amount"));
        assert!(!has_private);
    }

    #[test]
    fn corpus_covers_abbreviations_and_descriptions() {
        let l = lex();
        let corpus = CorpusGenerator::new(&l, CorpusConfig::default()).generate();
        assert!(corpus.iter().any(|s| s.contains(&"qty".to_string())));
        assert!(corpus.iter().any(|s| s.contains(&"units".to_string())));
    }

    #[test]
    fn chatter_uses_entity_context() {
        let l = lex();
        let corpus = CorpusGenerator::new(&l, CorpusConfig::default()).generate();
        assert!(corpus.iter().any(|s| s.first().is_some_and(|t| t == "each")));
    }

    #[test]
    fn sentences_are_lowercase_tokens() {
        let l = lex();
        let corpus = CorpusGenerator::new(&l, CorpusConfig::default()).generate();
        for s in &corpus {
            assert!(!s.is_empty());
            for t in s {
                assert_eq!(t, &t.to_lowercase(), "token {t:?} should be lowercase");
            }
        }
    }
}
