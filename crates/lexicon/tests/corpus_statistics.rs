//! Statistical properties of the generated corpus over the full lexicon —
//! the MLM substrate must be rich enough to carry the paraphrase knowledge.

use lsm_lexicon::{full_lexicon, ConceptKind, CorpusConfig, CorpusGenerator};
use std::collections::HashSet;

#[test]
fn corpus_is_large_and_diverse() {
    let lexicon = full_lexicon();
    let corpus = CorpusGenerator::new(&lexicon, CorpusConfig::default()).generate();
    assert!(corpus.len() > 2000, "corpus too small: {}", corpus.len());
    let distinct: HashSet<&Vec<String>> = corpus.iter().collect();
    assert!(
        distinct.len() * 10 >= corpus.len() * 7,
        "≥70% of sentences should be distinct: {}/{}",
        distinct.len(),
        corpus.len()
    );
}

#[test]
fn every_attribute_concept_is_mentioned() {
    let lexicon = full_lexicon();
    let corpus = CorpusGenerator::new(&lexicon, CorpusConfig::default()).generate();
    let vocab: HashSet<&str> = corpus.iter().flat_map(|s| s.iter().map(String::as_str)).collect();
    for c in lexicon.concepts() {
        if c.kind == ConceptKind::Attribute {
            for tok in &c.canonical {
                assert!(
                    vocab.contains(tok.as_str()),
                    "token {tok:?} of {:?} never appears",
                    c.canonical_phrase()
                );
            }
            for p in &c.private_synonyms {
                for tok in p {
                    assert!(
                        vocab.contains(tok.as_str()),
                        "private token {tok:?} of {:?} never appears",
                        c.canonical_phrase()
                    );
                }
            }
        }
    }
}

#[test]
fn qualifiers_appear_in_the_corpus() {
    let lexicon = full_lexicon();
    let corpus = CorpusGenerator::new(&lexicon, CorpusConfig::default()).generate();
    let vocab: HashSet<&str> = corpus.iter().flat_map(|s| s.iter().map(String::as_str)).collect();
    let present = lsm_lexicon::QUALIFIERS.iter().filter(|q| vocab.contains(**q)).count();
    assert!(
        present * 2 >= lsm_lexicon::QUALIFIERS.len(),
        "at least half the qualifiers should appear: {present}/{}",
        lsm_lexicon::QUALIFIERS.len()
    );
}
