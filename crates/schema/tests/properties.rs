//! Property-based tests over the schema substrate: score-matrix ranking
//! invariants and join-graph BFS properties on randomized inputs.

use lsm_schema::{AttrId, DataType, EntityId, GroundTruth, Schema, ScoreMatrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = ScoreMatrix> {
    proptest::collection::vec(0.0f64..1.0, rows * cols).prop_map(move |vals| {
        let mut m = ScoreMatrix::zeros(rows, cols);
        for (i, v) in vals.into_iter().enumerate() {
            m.set(AttrId((i / cols) as u32), AttrId((i % cols) as u32), v);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn top_k_is_sorted_and_contains_row_max(m in matrix(4, 9), k in 1usize..12) {
        for r in 0..4u32 {
            let top = m.top_k(AttrId(r), k);
            prop_assert_eq!(top.len(), k.min(9));
            // Descending scores.
            for w in top.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
            // The best element matches the row max.
            let row_max = (0..9u32).map(|c| m.get(AttrId(r), AttrId(c))).fold(f64::MIN, f64::max);
            prop_assert!((top[0].1 - row_max).abs() < 1e-12);
            // Confidence equals the row max.
            prop_assert!((m.confidence(AttrId(r)) - row_max).abs() < 1e-12);
        }
    }

    #[test]
    fn top_k_accuracy_is_monotone_in_k(m in matrix(5, 7)) {
        let truth = GroundTruth::from_pairs((0..5).map(|i| (AttrId(i), AttrId(i % 7))));
        let sources: Vec<AttrId> = (0..5).map(AttrId).collect();
        let mut prev = 0.0;
        for k in 1..=7 {
            let acc = m.top_k_accuracy(&truth, &sources, k);
            prop_assert!(acc >= prev - 1e-12, "accuracy must grow with k");
            prev = acc;
        }
        // k = |targets| always hits 1.0 when all sources have truth.
        prop_assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_confidence_is_probability(m in matrix(3, 6)) {
        for r in 0..3u32 {
            let c = m.softmax_confidence(AttrId(r));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }

    /// Random chain schemas: BFS distances respect the chain structure.
    #[test]
    fn join_graph_distances_on_chains(n in 2usize..10) {
        let mut b = Schema::builder("chain");
        for i in 0..n {
            b = b.entity(format!("E{i}"))
                .attr("pk", DataType::Integer)
                .pk("pk");
            if i > 0 {
                b = b.attr("parent", DataType::Integer);
            }
        }
        for i in 1..n {
            b = b.foreign_key(&format!("E{i}"), "parent", &format!("E{}", i - 1), "pk");
        }
        let schema = b.build().unwrap();
        let g = schema.join_graph();
        for i in 0..n {
            for j in 0..n {
                let d = g.distance(EntityId(i as u32), EntityId(j as u32));
                prop_assert_eq!(d as usize, i.abs_diff(j));
            }
        }
        // Penalty decreases monotonically with distance from entity 0.
        let matched = [EntityId(0)];
        let mut prev = f64::INFINITY;
        for i in 0..n {
            let z = g.entity_penalty(EntityId(i as u32), &matched);
            prop_assert!(z <= prev + 1e-12);
            prop_assert!(z > 0.0 && z <= 1.0);
            prev = z;
        }
    }
}
