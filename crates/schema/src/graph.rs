//! The entity join graph and shortest paths.
//!
//! LSM's prediction step penalizes matches that pull new ISS entities into
//! the result: the penalization term is `z = 1 / (1 + log(1 + sp(at, M)))`,
//! where `sp` is the shortest path *on the join graph of the ISS* between the
//! entity containing the candidate target attribute and the entities already
//! matched (Section IV-D). This module provides that graph and a BFS-based
//! all-pairs distance table.

use crate::ids::EntityId;
use crate::schema::Schema;
use std::collections::VecDeque;

/// Distance value meaning "no path".
pub const UNREACHABLE: u32 = u32::MAX;

/// Undirected entity adjacency induced by PK/FK relationships.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    n: usize,
    adjacency: Vec<Vec<EntityId>>,
}

impl JoinGraph {
    /// Builds the join graph of `schema`: entities are nodes; each PK/FK
    /// relationship contributes an undirected edge.
    pub fn from_schema(schema: &Schema) -> Self {
        let n = schema.entity_count();
        let mut adjacency = vec![Vec::new(); n];
        for fk in &schema.foreign_keys {
            let (a, b) = (fk.from_entity, fk.to_entity);
            if a == b {
                continue;
            }
            if !adjacency[a.index()].contains(&b) {
                adjacency[a.index()].push(b);
            }
            if !adjacency[b.index()].contains(&a) {
                adjacency[b.index()].push(a);
            }
        }
        JoinGraph { n, adjacency }
    }

    /// Number of entities (nodes).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Direct neighbors of an entity.
    pub fn neighbors(&self, e: EntityId) -> &[EntityId] {
        &self.adjacency[e.index()]
    }

    /// BFS distances (in join hops) from `source` to every entity.
    /// Unreachable entities get [`UNREACHABLE`].
    pub fn distances_from(&self, source: EntityId) -> Vec<u32> {
        let mut dist = vec![UNREACHABLE; self.n];
        let mut queue = VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            for &v in &self.adjacency[u.index()] {
                if dist[v.index()] == UNREACHABLE {
                    dist[v.index()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Shortest distance (join hops) between two entities, or
    /// [`UNREACHABLE`].
    pub fn distance(&self, a: EntityId, b: EntityId) -> u32 {
        self.distances_from(a)[b.index()]
    }

    /// `sp(e, M)`: the shortest distance from `e` to any entity in `matched`.
    ///
    /// Edge cases follow LSM's usage: if `matched` is empty there is no
    /// context to be near, so the distance is `0` (no penalty on the very
    /// first match); if `e` is itself in `matched`, the distance is `0`; if
    /// no matched entity is reachable, a large-but-finite fallback of
    /// `node_count` hops is used so that the penalty stays well-defined.
    pub fn distance_to_set(&self, e: EntityId, matched: &[EntityId]) -> u32 {
        if matched.is_empty() {
            return 0;
        }
        if matched.contains(&e) {
            return 0;
        }
        let dist = self.distances_from(e);
        let best = matched.iter().map(|m| dist[m.index()]).min().unwrap_or(UNREACHABLE);
        if best == UNREACHABLE {
            self.n as u32
        } else {
            best
        }
    }

    /// LSM's new-entity penalization term
    /// `z = 1 / (1 + log(1 + sp(e, M)))` (natural log).
    ///
    /// `z = 1` when the entity is already part of the matched set (or the set
    /// is empty), and decays towards zero as the entity moves further away on
    /// the join graph.
    pub fn entity_penalty(&self, e: EntityId, matched: &[EntityId]) -> f64 {
        let sp = self.distance_to_set(e, matched) as f64;
        1.0 / (1.0 + (1.0 + sp).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    /// A -> B -> C chain plus isolated D.
    fn chain() -> Schema {
        Schema::builder("chain")
            .entity("A")
            .attr("a_id", DataType::Integer)
            .pk("a_id")
            .entity("B")
            .attr("b_id", DataType::Integer)
            .attr("a_id", DataType::Integer)
            .pk("b_id")
            .entity("C")
            .attr("c_id", DataType::Integer)
            .attr("b_id", DataType::Integer)
            .pk("c_id")
            .entity("D")
            .attr("d_id", DataType::Integer)
            .pk("d_id")
            .foreign_key("B", "a_id", "A", "a_id")
            .foreign_key("C", "b_id", "B", "b_id")
            .build()
            .unwrap()
    }

    #[test]
    fn distances_follow_bfs() {
        let g = chain().join_graph();
        assert_eq!(g.distance(EntityId(0), EntityId(0)), 0);
        assert_eq!(g.distance(EntityId(0), EntityId(1)), 1);
        assert_eq!(g.distance(EntityId(0), EntityId(2)), 2);
        assert_eq!(g.distance(EntityId(0), EntityId(3)), UNREACHABLE);
    }

    #[test]
    fn distance_is_symmetric() {
        let g = chain().join_graph();
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(
                    g.distance(EntityId(a), EntityId(b)),
                    g.distance(EntityId(b), EntityId(a))
                );
            }
        }
    }

    #[test]
    fn edge_count_ignores_duplicates_and_self_loops() {
        let g = chain().join_graph();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn distance_to_empty_set_is_zero() {
        let g = chain().join_graph();
        assert_eq!(g.distance_to_set(EntityId(2), &[]), 0);
    }

    #[test]
    fn distance_to_set_takes_minimum() {
        let g = chain().join_graph();
        assert_eq!(g.distance_to_set(EntityId(2), &[EntityId(0), EntityId(1)]), 1);
        assert_eq!(g.distance_to_set(EntityId(2), &[EntityId(2)]), 0);
    }

    #[test]
    fn unreachable_entity_gets_finite_fallback() {
        let g = chain().join_graph();
        assert_eq!(g.distance_to_set(EntityId(3), &[EntityId(0)]), 4);
    }

    #[test]
    fn penalty_is_one_for_member_and_decreasing_with_distance() {
        let g = chain().join_graph();
        let z0 = g.entity_penalty(EntityId(0), &[EntityId(0)]);
        let z1 = g.entity_penalty(EntityId(1), &[EntityId(0)]);
        let z2 = g.entity_penalty(EntityId(2), &[EntityId(0)]);
        assert!((z0 - 1.0).abs() < 1e-12);
        assert!(z1 < z0);
        assert!(z2 < z1);
        assert!(z2 > 0.0);
    }
}
