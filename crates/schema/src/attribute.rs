//! Attributes: named, typed columns that belong to exactly one entity.

use crate::dtype::DataType;
use crate::ids::{AttrId, EntityId};
use serde::{Deserialize, Serialize};

/// A single attribute (column) of an entity.
///
/// Per the paper's problem statement, each attribute `a` has a name
/// `a.name`, a data type `a.dtype`, and optionally a natural-language
/// description `a.desc`; it belongs to exactly one entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Identifier, unique within the owning schema.
    pub id: AttrId,
    /// The entity this attribute belongs to.
    pub entity: EntityId,
    /// Raw attribute name as found in the schema (e.g. `promised_ts`).
    pub name: String,
    /// Data type.
    pub dtype: DataType,
    /// Optional natural-language description. Only some customer schemata in
    /// the paper carry these (Table I, column "Desc.").
    pub desc: Option<String>,
}

impl Attribute {
    /// The description if present, or the empty string.
    ///
    /// Featurizers concatenate `name desc`, so an absent description is
    /// equivalent to an empty one.
    pub fn desc_or_empty(&self) -> &str {
        self.desc.as_deref().unwrap_or("")
    }

    /// `name` followed by the description when available, separated by one
    /// space. This is the per-attribute half of the BERT featurizer's input
    /// sentence `[CLS] a.name a.desc [SEP] ...`.
    pub fn text(&self) -> String {
        match &self.desc {
            Some(d) if !d.is_empty() => format!("{} {}", self.name, d),
            _ => self.name.clone(),
        }
    }

    /// Like [`Attribute::text`] but ignoring the description. Used by the
    /// description-ablation experiment (paper Section V-E / Fig. 7).
    pub fn text_name_only(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(desc: Option<&str>) -> Attribute {
        Attribute {
            id: AttrId(0),
            entity: EntityId(0),
            name: "order_id".to_string(),
            dtype: DataType::Integer,
            desc: desc.map(str::to_string),
        }
    }

    #[test]
    fn text_without_description_is_just_name() {
        assert_eq!(attr(None).text(), "order_id");
        assert_eq!(attr(Some("")).text(), "order_id");
    }

    #[test]
    fn text_with_description_appends_it() {
        assert_eq!(
            attr(Some("unique order identifier")).text(),
            "order_id unique order identifier"
        );
    }

    #[test]
    fn desc_or_empty_never_panics() {
        assert_eq!(attr(None).desc_or_empty(), "");
        assert_eq!(attr(Some("x")).desc_or_empty(), "x");
    }
}
