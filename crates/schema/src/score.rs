//! Dense score storage for the source×target candidate-pair matrix, with
//! top-k ranking and the evaluation metrics shared by LSM and all baselines.
//!
//! Every matcher studied in the paper "generates a matching score for each
//! pair of attributes at the source and target schema" (Section III,
//! Methodology). The evaluation then checks "whether the correct target
//! attribute is in the top-3 candidate target attributes list" — top-k
//! accuracy. This module hosts both the matrix and that metric so each
//! matcher implements only the scores.

use crate::ids::AttrId;
use crate::matching::GroundTruth;
use serde::{Deserialize, Serialize};

/// A dense `|As| × |At|` matrix of matching scores.
///
/// Rows are source attributes, columns target attributes, both indexed by
/// their dense [`AttrId`]s. Scores are arbitrary reals; larger means more
/// likely to match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl ScoreMatrix {
    /// Saturating floor used when user feedback *pins* a row: low enough to
    /// lose every comparison against real scores, but finite, so
    /// `exp`-based consumers ([`ScoreMatrix::softmax_confidence`]) stay
    /// finite. (`f64::MIN`/`f64::MAX` overflow `exp` to `0`/`+inf` and turn
    /// softmax denominators into `inf`/NaN.)
    pub const PINNED_MIN: f64 = -64.0;

    /// Saturating ceiling for a pinned-correct pair; see
    /// [`ScoreMatrix::PINNED_MIN`]. `exp(64)` is comfortably finite
    /// (`exp` overflows only past ~709).
    pub const PINNED_MAX: f64 = 64.0;

    /// Creates a matrix of zeros for `rows` source and `cols` target
    /// attributes.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        ScoreMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Number of source attributes (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of target attributes (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, s: AttrId, t: AttrId) -> usize {
        debug_assert!(s.index() < self.rows && t.index() < self.cols);
        s.index() * self.cols + t.index()
    }

    /// The score of pair `(s, t)`.
    #[inline]
    pub fn get(&self, s: AttrId, t: AttrId) -> f64 {
        self.data[self.idx(s, t)]
    }

    /// Sets the score of pair `(s, t)`.
    #[inline]
    pub fn set(&mut self, s: AttrId, t: AttrId, score: f64) {
        let i = self.idx(s, t);
        self.data[i] = score;
    }

    /// Multiplies the score of pair `(s, t)` by `factor` (used by the
    /// new-entity penalty).
    #[inline]
    pub fn scale(&mut self, s: AttrId, t: AttrId, factor: f64) {
        let i = self.idx(s, t);
        self.data[i] *= factor;
    }

    /// Mutable row of scores for one source attribute.
    pub fn row_mut(&mut self, s: AttrId) -> &mut [f64] {
        let start = s.index() * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Immutable row of scores for one source attribute.
    pub fn row(&self, s: AttrId) -> &[f64] {
        let start = s.index() * self.cols;
        &self.data[start..start + self.cols]
    }

    /// The `k` best target attributes for source attribute `s`, best first.
    /// Ties break toward the lower attribute id, making rankings
    /// deterministic.
    pub fn top_k(&self, s: AttrId, k: usize) -> Vec<(AttrId, f64)> {
        let row = self.row(s);
        let mut ranked: Vec<(AttrId, f64)> =
            row.iter().enumerate().map(|(j, &v)| (AttrId(j as u32), v)).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The single best target for `s` (with its score), or `None` for an
    /// empty target side.
    pub fn best(&self, s: AttrId) -> Option<(AttrId, f64)> {
        self.top_k(s, 1).into_iter().next()
    }

    /// The maximum score in row `s` — LSM's *prediction confidence*
    /// `c_s = max_t score(s, t)` (Section IV-D).
    pub fn confidence(&self, s: AttrId) -> f64 {
        self.row(s).iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Softmax-normalized confidence of row `s`, used by the least-confidence
    /// selection strategy (Section IV-E2): the softmax probability of the
    /// best-scoring candidate. A row whose scores are nearly uniform has a
    /// probability near `1/|At|` (uncertain); a row with one dominant score
    /// has probability near 1 (confident).
    pub fn softmax_confidence(&self, s: AttrId) -> f64 {
        let row = self.row(s);
        if row.is_empty() {
            return 0.0;
        }
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let denom: f64 = row.iter().map(|&v| (v - max).exp()).sum();
        1.0 / denom
    }

    /// Mean reciprocal rank of the true target across the given sources
    /// (1.0 = always ranked first; sources without ground truth score 0).
    pub fn mean_reciprocal_rank(&self, truth: &GroundTruth, sources: &[AttrId]) -> f64 {
        if sources.is_empty() {
            return 0.0;
        }
        let total: f64 = sources
            .iter()
            .map(|&s| {
                let Some(correct) = truth.target_of(s) else { return 0.0 };
                let ranked = self.top_k(s, self.cols);
                match ranked.iter().position(|&(t, _)| t == correct) {
                    Some(pos) => 1.0 / (pos + 1) as f64,
                    None => 0.0,
                }
            })
            .sum();
        total / sources.len() as f64
    }

    /// Precision@k: among the `k · |sources|` suggested pairs, the fraction
    /// that are correct. With one true target per source this equals
    /// `top_k_accuracy / k`.
    pub fn precision_at_k(&self, truth: &GroundTruth, sources: &[AttrId], k: usize) -> f64 {
        if sources.is_empty() || k == 0 {
            return 0.0;
        }
        let hits: usize = sources
            .iter()
            .map(|&s| self.top_k(s, k).iter().filter(|&&(t, _)| truth.is_correct(s, t)).count())
            .sum();
        hits as f64 / (k * sources.len()) as f64
    }

    /// Extracts a one-to-one assignment greedily: repeatedly commits the
    /// globally best-scoring pair whose source and target are both still
    /// free, stopping below `threshold`. This realizes Definition 2 of the
    /// paper (each attribute in at most one correspondence) from raw
    /// scores.
    pub fn extract_one_to_one(&self, threshold: f64) -> Vec<(AttrId, AttrId, f64)> {
        let mut pairs: Vec<(AttrId, AttrId, f64)> = (0..self.rows)
            .flat_map(|s| (0..self.cols).map(move |t| (AttrId(s as u32), AttrId(t as u32))))
            .map(|(s, t)| (s, t, self.get(s, t)))
            .filter(|&(_, _, v)| v >= threshold)
            .collect();
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
        let mut used_s = vec![false; self.rows];
        let mut used_t = vec![false; self.cols];
        let mut out = Vec::new();
        for (s, t, v) in pairs {
            if !used_s[s.index()] && !used_t[t.index()] {
                used_s[s.index()] = true;
                used_t[t.index()] = true;
                out.push((s, t, v));
            }
        }
        out.sort_by_key(|&(s, _, _)| s);
        out
    }

    /// Top-k accuracy against a ground truth, restricted to the given source
    /// attributes (pass all sources for the non-interactive Tables III/IV,
    /// or the unlabeled remainder during active learning).
    pub fn top_k_accuracy(&self, truth: &GroundTruth, sources: &[AttrId], k: usize) -> f64 {
        if sources.is_empty() {
            return 0.0;
        }
        let hits = sources
            .iter()
            .filter(|&&s| {
                truth
                    .target_of(s)
                    .is_some_and(|correct| self.top_k(s, k).iter().any(|&(t, _)| t == correct))
            })
            .count();
        hits as f64 / sources.len() as f64
    }
}

/// The ranked suggestion list LSM shows the user for one source attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedSuggestions {
    /// The source attribute the suggestions are for.
    pub source: AttrId,
    /// Top-k `(target, score)` pairs, best first.
    pub candidates: Vec<(AttrId, f64)>,
}

impl RankedSuggestions {
    /// Whether `target` is among the suggestions.
    pub fn contains(&self, target: AttrId) -> bool {
        self.candidates.iter().any(|&(t, _)| t == target)
    }

    /// The suggested targets without scores.
    pub fn targets(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.candidates.iter().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ScoreMatrix {
        let mut m = ScoreMatrix::zeros(2, 3);
        m.set(AttrId(0), AttrId(0), 0.1);
        m.set(AttrId(0), AttrId(1), 0.9);
        m.set(AttrId(0), AttrId(2), 0.5);
        m.set(AttrId(1), AttrId(0), 0.4);
        m.set(AttrId(1), AttrId(1), 0.4);
        m.set(AttrId(1), AttrId(2), 0.2);
        m
    }

    #[test]
    fn top_k_orders_descending() {
        let m = matrix();
        let top = m.top_k(AttrId(0), 2);
        assert_eq!(top[0].0, AttrId(1));
        assert_eq!(top[1].0, AttrId(2));
    }

    #[test]
    fn top_k_ties_break_to_lower_id() {
        let m = matrix();
        let top = m.top_k(AttrId(1), 2);
        assert_eq!(top[0].0, AttrId(0));
        assert_eq!(top[1].0, AttrId(1));
    }

    #[test]
    fn top_k_truncates_at_row_width() {
        let m = matrix();
        assert_eq!(m.top_k(AttrId(0), 10).len(), 3);
    }

    #[test]
    fn confidence_is_row_max() {
        let m = matrix();
        assert_eq!(m.confidence(AttrId(0)), 0.9);
        assert_eq!(m.confidence(AttrId(1)), 0.4);
    }

    #[test]
    fn softmax_confidence_prefers_peaked_rows() {
        let m = matrix();
        // Row 0 is peaked (0.9 vs 0.1/0.5); row 1 is flat (0.4, 0.4, 0.2).
        assert!(m.softmax_confidence(AttrId(0)) > m.softmax_confidence(AttrId(1)));
    }

    #[test]
    fn pinned_sentinels_keep_softmax_finite() {
        let mut m = ScoreMatrix::zeros(1, 3);
        for v in m.row_mut(AttrId(0)) {
            *v = ScoreMatrix::PINNED_MIN;
        }
        m.set(AttrId(0), AttrId(1), ScoreMatrix::PINNED_MAX);
        let c = m.softmax_confidence(AttrId(0));
        assert!(c.is_finite(), "pinned row must keep a finite confidence, got {c}");
        // A fully-settled row is maximally confident.
        assert!(c > 0.99, "{c}");
        assert_eq!(m.best(AttrId(0)).unwrap().0, AttrId(1));
    }

    #[test]
    fn top_k_accuracy_counts_hits() {
        let m = matrix();
        let truth = GroundTruth::from_pairs([(AttrId(0), AttrId(1)), (AttrId(1), AttrId(2))]);
        let all = [AttrId(0), AttrId(1)];
        assert_eq!(m.top_k_accuracy(&truth, &all, 1), 0.5);
        assert_eq!(m.top_k_accuracy(&truth, &all, 3), 1.0);
        assert_eq!(m.top_k_accuracy(&truth, &[], 3), 0.0);
    }

    #[test]
    fn mrr_reflects_rank_of_truth() {
        let m = matrix();
        let truth = GroundTruth::from_pairs([(AttrId(0), AttrId(1)), (AttrId(1), AttrId(2))]);
        // Row 0: truth ranked 1st (rr = 1); row 1: truth ranked 3rd (rr = 1/3).
        let mrr = m.mean_reciprocal_rank(&truth, &[AttrId(0), AttrId(1)]);
        assert!((mrr - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(m.mean_reciprocal_rank(&truth, &[]), 0.0);
    }

    #[test]
    fn precision_at_k_counts_suggested_hits() {
        let m = matrix();
        let truth = GroundTruth::from_pairs([(AttrId(0), AttrId(1)), (AttrId(1), AttrId(2))]);
        let all = [AttrId(0), AttrId(1)];
        // k=1: one hit of two suggestions.
        assert!((m.precision_at_k(&truth, &all, 1) - 0.5).abs() < 1e-12);
        // k=3: two hits of six suggestions.
        assert!((m.precision_at_k(&truth, &all, 3) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(m.precision_at_k(&truth, &all, 0), 0.0);
    }

    #[test]
    fn one_to_one_extraction_respects_definition_two() {
        // Two sources competing for the same best target: the higher score
        // wins it; the loser takes its next-best free target.
        let mut m = ScoreMatrix::zeros(2, 2);
        m.set(AttrId(0), AttrId(0), 0.9);
        m.set(AttrId(1), AttrId(0), 0.8);
        m.set(AttrId(1), AttrId(1), 0.5);
        let pairs = m.extract_one_to_one(0.1);
        assert_eq!(pairs.len(), 2);
        assert_eq!((pairs[0].0, pairs[0].1), (AttrId(0), AttrId(0)));
        assert_eq!((pairs[1].0, pairs[1].1), (AttrId(1), AttrId(1)));
        // Threshold prunes weak pairs.
        let pairs = m.extract_one_to_one(0.6);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut m = matrix();
        m.scale(AttrId(0), AttrId(1), 0.5);
        assert!((m.get(AttrId(0), AttrId(1)) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn ranked_suggestions_contains() {
        let s = RankedSuggestions {
            source: AttrId(0),
            candidates: vec![(AttrId(1), 0.9), (AttrId(2), 0.5)],
        };
        assert!(s.contains(AttrId(2)));
        assert!(!s.contains(AttrId(0)));
        assert_eq!(s.targets().collect::<Vec<_>>(), vec![AttrId(1), AttrId(2)]);
    }
}
