//! Entities: named collections of attributes with an optional primary key.

use crate::ids::{AttrId, EntityId};
use serde::{Deserialize, Serialize};

/// An entity (table) of a schema.
///
/// Per the paper, each entity `e` has a name `e.name`, a primary key `e.pk`,
/// and a set of foreign keys `e.fks`. We keep the primary key optional
/// because one of the public datasets (IPFQR) has entities without declared
/// keys (Table II reports zero PK/FK relationships for it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// Identifier, unique within the owning schema.
    pub id: EntityId,
    /// Entity (table) name, e.g. `TransactionLine`.
    pub name: String,
    /// Attributes of this entity, in declaration order.
    pub attrs: Vec<AttrId>,
    /// Primary-key attribute, if declared.
    pub pk: Option<AttrId>,
    /// Foreign-key attributes of this entity (the referencing side).
    pub fks: Vec<AttrId>,
}

impl Entity {
    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Whether `attr` is this entity's primary key or one of its foreign
    /// keys. These *anchor attributes* drive LSM's default attribute
    /// selection strategy (Section IV-E2).
    pub fn is_key(&self, attr: AttrId) -> bool {
        self.pk == Some(attr) || self.fks.contains(&attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_key_covers_pk_and_fks() {
        let e = Entity {
            id: EntityId(0),
            name: "Orders".into(),
            attrs: vec![AttrId(0), AttrId(1), AttrId(2)],
            pk: Some(AttrId(0)),
            fks: vec![AttrId(1)],
        };
        assert!(e.is_key(AttrId(0)));
        assert!(e.is_key(AttrId(1)));
        assert!(!e.is_key(AttrId(2)));
        assert_eq!(e.arity(), 3);
    }

    #[test]
    fn entity_without_pk_has_no_keys() {
        let e = Entity {
            id: EntityId(0),
            name: "Flat".into(),
            attrs: vec![AttrId(0)],
            pk: None,
            fks: vec![],
        };
        assert!(!e.is_key(AttrId(0)));
    }
}
