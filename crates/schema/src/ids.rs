//! Compact integer identifiers for entities and attributes.
//!
//! Both LSM and the baselines operate on the Cartesian product of source and
//! target attribute sets, so attribute identity is on the hot path. We use
//! `u32` newtypes that double as dense indices into the owning [`Schema`]'s
//! arenas, avoiding string keys everywhere past the parsing boundary.
//!
//! [`Schema`]: crate::schema::Schema

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an [`Entity`](crate::Entity) within a single schema.
///
/// Also its dense index into [`Schema::entities`](crate::Schema::entities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of an [`Attribute`](crate::Attribute) within a single schema.
///
/// Also its dense index into [`Schema::attributes`](crate::Schema::attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl EntityId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<EntityId> for usize {
    fn from(id: EntityId) -> usize {
        id.index()
    }
}

impl From<AttrId> for usize {
    fn from(id: AttrId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_indices() {
        assert_eq!(EntityId(7).index(), 7);
        assert_eq!(AttrId(0).index(), 0);
        assert_eq!(usize::from(AttrId(3)), 3);
        assert_eq!(usize::from(EntityId(3)), 3);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(EntityId(2).to_string(), "e2");
        assert_eq!(AttrId(11).to_string(), "a11");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(AttrId(1) < AttrId(2));
        assert!(EntityId(0) < EntityId(1));
    }
}
