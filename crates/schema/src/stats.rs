//! Schema statistics as reported in Tables I and II of the paper.

use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a schema: the columns of Tables I and II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaStats {
    /// Schema name.
    pub name: String,
    /// Number of entities.
    pub entities: usize,
    /// Number of attributes.
    pub attributes: usize,
    /// Number of distinct attribute names.
    pub unique_attr_names: usize,
    /// Number of PK/FK relationships.
    pub pk_fk: usize,
    /// Whether any attribute carries a description.
    pub has_descriptions: bool,
}

impl SchemaStats {
    /// Computes the statistics of a schema.
    pub fn of(schema: &Schema) -> Self {
        SchemaStats {
            name: schema.name.clone(),
            entities: schema.entity_count(),
            attributes: schema.attr_count(),
            unique_attr_names: schema.unique_attr_name_count(),
            pk_fk: schema.foreign_keys.len(),
            has_descriptions: schema.has_descriptions(),
        }
    }
}

impl fmt::Display for SchemaStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} {:>9} {:>7} {:>13} {:>7}   {}",
            self.name,
            self.entities,
            self.attributes,
            self.unique_attr_names,
            self.pk_fk,
            if self.has_descriptions { "Y" } else { "N" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    #[test]
    fn stats_count_everything() {
        let s = Schema::builder("tiny")
            .entity("A")
            .attr_desc("id", DataType::Integer, "identifier")
            .attr("name", DataType::Text)
            .pk("id")
            .entity("B")
            .attr("id", DataType::Integer)
            .attr("a_id", DataType::Integer)
            .pk("id")
            .foreign_key("B", "a_id", "A", "id")
            .build()
            .unwrap();
        let stats = SchemaStats::of(&s);
        assert_eq!(stats.entities, 2);
        assert_eq!(stats.attributes, 4);
        assert_eq!(stats.unique_attr_names, 3); // id, name, a_id
        assert_eq!(stats.pk_fk, 1);
        assert!(stats.has_descriptions);
    }

    #[test]
    fn stats_display_contains_name() {
        let s = Schema::builder("tiny").entity("A").attr("x", DataType::Text).build().unwrap();
        let line = SchemaStats::of(&s).to_string();
        assert!(line.contains("tiny"));
        assert!(line.trim_end().ends_with('N'));
    }
}
