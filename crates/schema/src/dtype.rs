//! Attribute data types and the compatibility relation used by LSM's
//! score adjustment.
//!
//! Section IV-D of the paper: *"in nearly all correct matches, the source and
//! target attributes have compatible data types. Therefore, we set the score
//! of a pair consisting of attributes with incompatible data types to be 0."*
//! Compatibility is deliberately coarser than equality — an `INT` column and
//! a `DECIMAL` column can denote the same quantity, while an `INT` and a
//! `VARCHAR` almost never do.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The data type of an attribute, abstracted over concrete SQL dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Whole numbers (`INT`, `BIGINT`, `SMALLINT`, ...).
    Integer,
    /// Binary floating point (`FLOAT`, `DOUBLE`, `REAL`).
    Float,
    /// Exact decimals (`DECIMAL`, `NUMERIC`, `MONEY`).
    Decimal,
    /// Character data (`VARCHAR`, `TEXT`, `CHAR`, ...).
    Text,
    /// Booleans / bit flags.
    Boolean,
    /// Calendar dates without a time component.
    Date,
    /// Points in time (`TIMESTAMP`, `DATETIME`).
    Timestamp,
    /// Opaque binary payloads (`BLOB`, `VARBINARY`).
    Binary,
}

/// Broad families used by the compatibility relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeFamily {
    /// All numeric types, including booleans stored as 0/1 flags.
    Numeric,
    /// Character data.
    Textual,
    /// Dates and timestamps.
    Temporal,
    /// Binary payloads.
    Binary,
}

impl DataType {
    /// All variants, in declaration order. Useful for exhaustive tests and
    /// synthetic data generation.
    pub const ALL: [DataType; 8] = [
        DataType::Integer,
        DataType::Float,
        DataType::Decimal,
        DataType::Text,
        DataType::Boolean,
        DataType::Date,
        DataType::Timestamp,
        DataType::Binary,
    ];

    /// The broad family this type belongs to.
    pub fn family(self) -> TypeFamily {
        match self {
            DataType::Integer | DataType::Float | DataType::Decimal | DataType::Boolean => {
                TypeFamily::Numeric
            }
            DataType::Text => TypeFamily::Textual,
            DataType::Date | DataType::Timestamp => TypeFamily::Temporal,
            DataType::Binary => TypeFamily::Binary,
        }
    }

    /// Whether a source attribute of type `self` can plausibly correspond to
    /// a target attribute of type `other`.
    ///
    /// The relation is reflexive and symmetric: two types are compatible iff
    /// they share a [`TypeFamily`], except that `Text` is additionally
    /// compatible with everything. Real customer schemata frequently store
    /// numbers, dates, and identifiers in `VARCHAR` columns, so gating on the
    /// textual family would zero out genuine matches.
    pub fn compatible(self, other: DataType) -> bool {
        if self == other {
            return true;
        }
        if self == DataType::Text || other == DataType::Text {
            return true;
        }
        self.family() == other.family()
    }

    /// Canonical lowercase name, the inverse of [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            DataType::Integer => "integer",
            DataType::Float => "float",
            DataType::Decimal => "decimal",
            DataType::Text => "text",
            DataType::Boolean => "boolean",
            DataType::Date => "date",
            DataType::Timestamp => "timestamp",
            DataType::Binary => "binary",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown SQL type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataTypeError(pub String);

impl fmt::Display for ParseDataTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown data type: {:?}", self.0)
    }
}

impl std::error::Error for ParseDataTypeError {}

impl FromStr for DataType {
    type Err = ParseDataTypeError;

    /// Parses both the canonical names and common SQL spellings
    /// (`"varchar(255)"`, `"BIGINT"`, `"datetime2"`, ...).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        // Strip a parenthesised length/precision suffix: varchar(255) -> varchar.
        let base = lower.split('(').next().unwrap_or("").trim();
        let ty =
            match base {
                "integer" | "int" | "bigint" | "smallint" | "tinyint" | "serial" | "int4"
                | "int8" => DataType::Integer,
                "float" | "double" | "real" | "double precision" | "float4" | "float8" => {
                    DataType::Float
                }
                "decimal" | "numeric" | "money" | "number" => DataType::Decimal,
                "text" | "varchar" | "char" | "nvarchar" | "nchar" | "string" | "clob"
                | "character varying" => DataType::Text,
                "boolean" | "bool" | "bit" => DataType::Boolean,
                "date" => DataType::Date,
                "timestamp" | "datetime" | "datetime2" | "timestamptz" | "smalldatetime"
                | "time" => DataType::Timestamp,
                "binary" | "varbinary" | "blob" | "bytea" | "image" => DataType::Binary,
                _ => return Err(ParseDataTypeError(s.to_string())),
            };
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_is_reflexive() {
        for &t in &DataType::ALL {
            assert!(t.compatible(t), "{t} should be self-compatible");
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for &a in &DataType::ALL {
            for &b in &DataType::ALL {
                assert_eq!(a.compatible(b), b.compatible(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn numeric_family_is_mutually_compatible() {
        assert!(DataType::Integer.compatible(DataType::Decimal));
        assert!(DataType::Integer.compatible(DataType::Float));
        assert!(DataType::Decimal.compatible(DataType::Float));
        assert!(DataType::Boolean.compatible(DataType::Integer));
    }

    #[test]
    fn text_is_compatible_with_everything() {
        for &t in &DataType::ALL {
            assert!(DataType::Text.compatible(t));
        }
    }

    #[test]
    fn cross_family_is_incompatible() {
        assert!(!DataType::Integer.compatible(DataType::Date));
        assert!(!DataType::Binary.compatible(DataType::Decimal));
        assert!(!DataType::Timestamp.compatible(DataType::Boolean));
    }

    #[test]
    fn temporal_family() {
        assert!(DataType::Date.compatible(DataType::Timestamp));
    }

    #[test]
    fn parses_common_sql_spellings() {
        assert_eq!("BIGINT".parse::<DataType>().unwrap(), DataType::Integer);
        assert_eq!("varchar(255)".parse::<DataType>().unwrap(), DataType::Text);
        assert_eq!("datetime2".parse::<DataType>().unwrap(), DataType::Timestamp);
        assert_eq!("NUMERIC(10,2)".parse::<DataType>().unwrap(), DataType::Decimal);
        assert_eq!(" bool ".parse::<DataType>().unwrap(), DataType::Boolean);
    }

    #[test]
    fn parse_round_trips_canonical_names() {
        for &t in &DataType::ALL {
            assert_eq!(t.name().parse::<DataType>().unwrap(), t);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("froboz".parse::<DataType>().is_err());
        assert!("".parse::<DataType>().is_err());
    }
}
