//! Matching outputs: correspondences, entity matches, full match results
//! (Definitions 1 and 2 of the paper) and ground-truth tables.

use crate::error::SchemaError;
use crate::ids::{AttrId, EntityId};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// An attribute correspondence `r = (a_source, a_target)` asserting equality
/// between a source attribute and a target (ISS) attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Correspondence {
    /// Attribute in the source (customer) schema.
    pub source: AttrId,
    /// Attribute in the target (ISS) schema.
    pub target: AttrId,
}

/// An entity match `(e_source, e_target, m)` — Definition 1: a pair of
/// entities and a set of attribute correspondences between them, where each
/// source and target attribute occurs in at most one correspondence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityMatch {
    /// Entity in the source schema.
    pub source_entity: EntityId,
    /// Entity in the target schema.
    pub target_entity: EntityId,
    /// Correspondences between attributes of the two entities.
    pub correspondences: Vec<Correspondence>,
}

/// The result `M` of the schema matching process — Definition 2: a set of
/// entity matches where each attribute of either schema appears at most once.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchResult {
    /// Entity matches making up the result.
    pub matches: Vec<EntityMatch>,
}

impl MatchResult {
    /// Builds a [`MatchResult`] by grouping flat correspondences by their
    /// (source entity, target entity) pair.
    pub fn from_correspondences(
        source: &Schema,
        target: &Schema,
        correspondences: impl IntoIterator<Item = Correspondence>,
    ) -> Self {
        let mut groups: BTreeMap<(EntityId, EntityId), Vec<Correspondence>> = BTreeMap::new();
        for c in correspondences {
            let se = source.attr(c.source).entity;
            let te = target.attr(c.target).entity;
            groups.entry((se, te)).or_default().push(c);
        }
        MatchResult {
            matches: groups
                .into_iter()
                .map(|((se, te), cs)| EntityMatch {
                    source_entity: se,
                    target_entity: te,
                    correspondences: cs,
                })
                .collect(),
        }
    }

    /// All correspondences across all entity matches.
    pub fn correspondences(&self) -> impl Iterator<Item = Correspondence> + '_ {
        self.matches.iter().flat_map(|m| m.correspondences.iter().copied())
    }

    /// Total number of correspondences.
    pub fn len(&self) -> usize {
        self.matches.iter().map(|m| m.correspondences.len()).sum()
    }

    /// True when no correspondences exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distinct target entities used by this result. Determines which
    /// ISS entities a customer has to join against — fewer is better, which
    /// is why LSM penalizes introducing new ones.
    pub fn target_entities(&self) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self.matches.iter().map(|m| m.target_entity).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Validates Definitions 1 and 2: every attribute appears at most once
    /// across the whole result, and each correspondence joins attributes of
    /// its entity match's declared entities.
    pub fn validate(&self, source: &Schema, target: &Schema) -> Result<(), SchemaError> {
        let mut seen_source: HashSet<AttrId> = HashSet::new();
        let mut seen_target: HashSet<AttrId> = HashSet::new();
        for em in &self.matches {
            for c in &em.correspondences {
                if source.attr(c.source).entity != em.source_entity
                    || target.attr(c.target).entity != em.target_entity
                {
                    return Err(SchemaError::CorrespondenceOutsideEntities {
                        source: c.source,
                        target: c.target,
                    });
                }
                if !seen_source.insert(c.source) {
                    return Err(SchemaError::DuplicateCorrespondence(c.source));
                }
                if !seen_target.insert(c.target) {
                    return Err(SchemaError::DuplicateCorrespondence(c.target));
                }
            }
        }
        Ok(())
    }
}

/// Reference (ground-truth) matches for an evaluation dataset.
///
/// The paper's setting guarantees every source attribute has exactly one
/// correct target attribute in the ISS ("Since the ISS captures a wide
/// variety of concepts for an industry, each of the source attributes has a
/// matching attribute in the target", Section V-A).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    map: BTreeMap<AttrId, AttrId>,
}

impl GroundTruth {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from `(source, target)` pairs. Later entries overwrite earlier
    /// ones for the same source attribute.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (AttrId, AttrId)>) -> Self {
        GroundTruth { map: pairs.into_iter().collect() }
    }

    /// Records that `source` correctly maps to `target`.
    pub fn insert(&mut self, source: AttrId, target: AttrId) {
        self.map.insert(source, target);
    }

    /// The correct target for a source attribute, if recorded.
    pub fn target_of(&self, source: AttrId) -> Option<AttrId> {
        self.map.get(&source).copied()
    }

    /// Whether `(source, target)` is a correct match.
    pub fn is_correct(&self, source: AttrId, target: AttrId) -> bool {
        self.target_of(source) == Some(target)
    }

    /// Number of recorded matches.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no matches are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(source, target)` pairs in source-id order.
    pub fn pairs(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        self.map.iter().map(|(&s, &t)| (s, t))
    }

    /// All source attributes with a recorded match, in id order.
    pub fn sources(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.map.keys().copied()
    }

    /// Fraction of ground-truth pairs on which `predicate` holds. Helper for
    /// accuracy-style metrics.
    pub fn fraction(&self, mut predicate: impl FnMut(AttrId, AttrId) -> bool) -> f64 {
        if self.map.is_empty() {
            return 0.0;
        }
        let hits = self.pairs().filter(|&(s, t)| predicate(s, t)).count();
        hits as f64 / self.map.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DataType;

    fn schemas() -> (Schema, Schema) {
        let source = Schema::builder("src")
            .entity("Orders")
            .attr("order_id", DataType::Integer)
            .attr("discount", DataType::Decimal)
            .build()
            .unwrap();
        let target = Schema::builder("tgt")
            .entity("TransactionLine")
            .attr("transaction_id", DataType::Integer)
            .attr("price_change_percentage", DataType::Decimal)
            .entity("Store")
            .attr("store_id", DataType::Integer)
            .build()
            .unwrap();
        (source, target)
    }

    #[test]
    fn from_correspondences_groups_by_entity_pair() {
        let (s, t) = schemas();
        let result = MatchResult::from_correspondences(
            &s,
            &t,
            vec![
                Correspondence { source: AttrId(0), target: AttrId(0) },
                Correspondence { source: AttrId(1), target: AttrId(1) },
            ],
        );
        assert_eq!(result.matches.len(), 1);
        assert_eq!(result.len(), 2);
        assert_eq!(result.target_entities(), vec![EntityId(0)]);
        result.validate(&s, &t).unwrap();
    }

    #[test]
    fn validate_rejects_duplicate_source_attr() {
        let (s, t) = schemas();
        let result = MatchResult::from_correspondences(
            &s,
            &t,
            vec![
                Correspondence { source: AttrId(0), target: AttrId(0) },
                Correspondence { source: AttrId(0), target: AttrId(2) },
            ],
        );
        assert!(matches!(result.validate(&s, &t), Err(SchemaError::DuplicateCorrespondence(_))));
    }

    #[test]
    fn validate_rejects_duplicate_target_attr() {
        let (s, t) = schemas();
        let result = MatchResult::from_correspondences(
            &s,
            &t,
            vec![
                Correspondence { source: AttrId(0), target: AttrId(1) },
                Correspondence { source: AttrId(1), target: AttrId(1) },
            ],
        );
        assert!(matches!(result.validate(&s, &t), Err(SchemaError::DuplicateCorrespondence(_))));
    }

    #[test]
    fn ground_truth_lookup() {
        let mut gt = GroundTruth::new();
        gt.insert(AttrId(0), AttrId(5));
        gt.insert(AttrId(1), AttrId(3));
        assert!(gt.is_correct(AttrId(0), AttrId(5)));
        assert!(!gt.is_correct(AttrId(0), AttrId(3)));
        assert_eq!(gt.target_of(AttrId(2)), None);
        assert_eq!(gt.len(), 2);
    }

    #[test]
    fn ground_truth_fraction() {
        let gt = GroundTruth::from_pairs([(AttrId(0), AttrId(0)), (AttrId(1), AttrId(1))]);
        assert_eq!(gt.fraction(|s, t| s == t), 1.0);
        assert_eq!(gt.fraction(|s, _| s == AttrId(0)), 0.5);
        assert_eq!(GroundTruth::new().fraction(|_, _| true), 0.0);
    }
}
