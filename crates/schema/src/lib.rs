//! # lsm-schema
//!
//! The Entity/Relationship schema model underpinning the Learned Schema
//! Matcher (LSM) reproduction.
//!
//! The paper (Zhang et al., *Schema Matching using Pre-Trained Language
//! Models*, ICDE 2023) defines a schema `S` as a set of entities `E`, a set
//! of attributes `A` (each belonging to exactly one entity), and a set of
//! PK/FK relationships `R`. Attributes carry a name, a data type, and an
//! optional natural-language description.
//!
//! This crate provides:
//!
//! * [`Schema`], [`Entity`], [`Attribute`], [`DataType`] — the E/R model,
//! * [`SchemaBuilder`] — ergonomic, validated construction,
//! * [`JoinGraph`] — the entity join graph with BFS shortest paths (used by
//!   LSM's new-entity penalization term),
//! * [`Correspondence`], [`EntityMatch`], [`MatchResult`] — the output of the
//!   matching process (Definitions 1 and 2 in the paper),
//! * [`GroundTruth`] — reference matches used by the evaluation harness,
//! * [`ScoreMatrix`] — dense source×target score storage with top-k
//!   extraction shared by LSM and all baselines,
//! * [`SchemaStats`] — the per-schema statistics reported in Tables I/II.

#![forbid(unsafe_code)]

pub mod attribute;
pub mod dtype;
pub mod entity;
pub mod error;
pub mod graph;
pub mod ids;
pub mod matching;
pub mod schema;
pub mod score;
pub mod stats;

pub use attribute::Attribute;
pub use dtype::DataType;
pub use entity::Entity;
pub use error::SchemaError;
pub use graph::JoinGraph;
pub use ids::{AttrId, EntityId};
pub use matching::{Correspondence, EntityMatch, GroundTruth, MatchResult};
pub use schema::{ForeignKey, Schema, SchemaBuilder};
pub use score::{RankedSuggestions, ScoreMatrix};
pub use stats::SchemaStats;
