//! The [`Schema`] container and its validated [`SchemaBuilder`].

use crate::attribute::Attribute;
use crate::dtype::DataType;
use crate::entity::Entity;
use crate::error::SchemaError;
use crate::graph::JoinGraph;
use crate::ids::{AttrId, EntityId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A PK/FK relationship: the attribute `from` (in entity `from_entity`)
/// references the attribute `to` (in entity `to_entity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing entity.
    pub from_entity: EntityId,
    /// Referencing (foreign-key) attribute.
    pub from: AttrId,
    /// Referenced entity.
    pub to_entity: EntityId,
    /// Referenced (usually primary-key) attribute.
    pub to: AttrId,
}

/// A relational schema in the E/R model: entities, attributes, and PK/FK
/// relationships.
///
/// Entities and attributes are stored in dense arenas indexed by their ids,
/// which keeps the hot `O(|As| × |At|)` candidate loops allocation-free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Human-readable schema name (e.g. `"retail-iss"` or `"customer-a"`).
    pub name: String,
    /// Entity arena; `entities[e.index()].id == e`.
    pub entities: Vec<Entity>,
    /// Attribute arena; `attributes[a.index()].id == a`.
    pub attributes: Vec<Attribute>,
    /// All PK/FK relationships.
    pub foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    /// Starts building a schema with the given name.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder::new(name)
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of attributes across all entities.
    pub fn attr_count(&self) -> usize {
        self.attributes.len()
    }

    /// The entity owning `id`. Panics on a foreign id — ids must come from
    /// this schema.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.index()]
    }

    /// The attribute with this `id`. Panics on a foreign id.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// The entity an attribute belongs to.
    pub fn entity_of(&self, attr: AttrId) -> &Entity {
        self.entity(self.attr(attr).entity)
    }

    /// Iterator over all attribute ids in arena order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len() as u32).map(AttrId)
    }

    /// Iterator over all entity ids in arena order.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entities.len() as u32).map(EntityId)
    }

    /// `Entity.attribute` qualified name, the paper's display form
    /// (e.g. `Orders.discount`).
    pub fn qualified_name(&self, attr: AttrId) -> String {
        let a = self.attr(attr);
        format!("{}.{}", self.entity(a.entity).name, a.name)
    }

    /// Looks up an entity by name (exact match).
    pub fn entity_by_name(&self, name: &str) -> Option<&Entity> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Looks up an attribute by `entity` and `attribute` name.
    pub fn attr_by_name(&self, entity: &str, attr: &str) -> Option<&Attribute> {
        let e = self.entity_by_name(entity)?;
        e.attrs.iter().map(|&a| self.attr(a)).find(|a| a.name == attr)
    }

    /// Looks up an attribute by qualified `Entity.attribute` name.
    pub fn attr_by_qualified_name(&self, qualified: &str) -> Option<&Attribute> {
        let (entity, attr) = qualified.split_once('.')?;
        self.attr_by_name(entity, attr)
    }

    /// The *anchor set* of the schema: `{e.pk, e.fks | ∀e ∈ Es}` in entity
    /// order, primary keys before foreign keys within each entity. This is
    /// the default anchor set of the least-confident-anchor strategy
    /// (Section IV-E2).
    pub fn anchor_set(&self) -> Vec<AttrId> {
        let mut anchors = Vec::new();
        for e in &self.entities {
            if let Some(pk) = e.pk {
                anchors.push(pk);
            }
            for &fk in &e.fks {
                if !anchors.contains(&fk) {
                    anchors.push(fk);
                }
            }
        }
        anchors
    }

    /// Builds the entity join graph induced by the PK/FK relationships.
    pub fn join_graph(&self) -> JoinGraph {
        JoinGraph::from_schema(self)
    }

    /// Number of distinct attribute names (Table I column
    /// "# Unique Attr. Names").
    pub fn unique_attr_name_count(&self) -> usize {
        let mut names: Vec<&str> = self.attributes.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Whether any attribute carries a natural-language description.
    pub fn has_descriptions(&self) -> bool {
        self.attributes.iter().any(|a| a.desc.as_deref().is_some_and(|d| !d.is_empty()))
    }

    /// Returns a copy of the schema with every attribute description
    /// removed. Used by the description-ablation experiment (Fig. 7).
    pub fn without_descriptions(&self) -> Schema {
        let mut s = self.clone();
        for a in &mut s.attributes {
            a.desc = None;
        }
        s
    }

    /// Validates internal consistency: arena ids line up, attributes point
    /// back at their entities, PK/FK endpoints exist and live in the right
    /// entities, and names are unique where required.
    pub fn validate(&self) -> Result<(), SchemaError> {
        let mut entity_names: HashMap<&str, ()> = HashMap::new();
        for (i, e) in self.entities.iter().enumerate() {
            if e.id.index() != i {
                return Err(SchemaError::DanglingId(format!(
                    "entity arena slot {i} holds id {}",
                    e.id
                )));
            }
            if entity_names.insert(e.name.as_str(), ()).is_some() {
                return Err(SchemaError::DuplicateEntity(e.name.clone()));
            }
            let mut attr_names: HashMap<&str, ()> = HashMap::new();
            for &a in &e.attrs {
                let attr = self
                    .attributes
                    .get(a.index())
                    .ok_or_else(|| SchemaError::DanglingId(format!("attribute {a}")))?;
                if attr.entity != e.id {
                    return Err(SchemaError::DanglingId(format!(
                        "attribute {a} listed in entity {} but owned by {}",
                        e.id, attr.entity
                    )));
                }
                if attr_names.insert(attr.name.as_str(), ()).is_some() {
                    return Err(SchemaError::DuplicateAttribute {
                        entity: e.name.clone(),
                        attr: attr.name.clone(),
                    });
                }
            }
            if let Some(pk) = e.pk {
                if !e.attrs.contains(&pk) {
                    return Err(SchemaError::InvalidPrimaryKey { entity: e.id, attr: pk });
                }
            }
            for &fk in &e.fks {
                if !e.attrs.contains(&fk) {
                    return Err(SchemaError::DanglingId(format!(
                        "fk attribute {fk} not in entity {}",
                        e.id
                    )));
                }
            }
        }
        for (i, a) in self.attributes.iter().enumerate() {
            if a.id.index() != i {
                return Err(SchemaError::DanglingId(format!(
                    "attribute arena slot {i} holds id {}",
                    a.id
                )));
            }
            let owner = self
                .entities
                .get(a.entity.index())
                .ok_or_else(|| SchemaError::DanglingId(format!("entity {}", a.entity)))?;
            if !owner.attrs.contains(&a.id) {
                return Err(SchemaError::DanglingId(format!(
                    "attribute {} not listed by its entity {}",
                    a.id, a.entity
                )));
            }
        }
        for fk in &self.foreign_keys {
            let from_ok =
                self.attributes.get(fk.from.index()).is_some_and(|a| a.entity == fk.from_entity);
            let to_ok =
                self.attributes.get(fk.to.index()).is_some_and(|a| a.entity == fk.to_entity);
            if !from_ok || !to_ok {
                return Err(SchemaError::InvalidForeignKey { from: fk.from, to: fk.to });
            }
        }
        Ok(())
    }
}

/// Validated, incremental construction of a [`Schema`].
///
/// ```
/// use lsm_schema::{Schema, DataType};
///
/// let schema = Schema::builder("shop")
///     .entity("Orders")
///     .attr("order_id", DataType::Integer)
///     .attr_desc("discount", DataType::Decimal, "price reduction applied")
///     .pk("order_id")
///     .entity("Items")
///     .attr("item_id", DataType::Integer)
///     .pk("item_id")
///     .attr("order_id", DataType::Integer)
///     .foreign_key("Items", "order_id", "Orders", "order_id")
///     .build()
///     .unwrap();
/// assert_eq!(schema.entity_count(), 2);
/// assert_eq!(schema.attr_count(), 4);
/// ```
#[derive(Debug)]
pub struct SchemaBuilder {
    name: String,
    entities: Vec<Entity>,
    attributes: Vec<Attribute>,
    /// (from_entity_name, from_attr_name, to_entity_name, to_attr_name)
    pending_fks: Vec<(String, String, String, String)>,
    error: Option<SchemaError>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            name: name.into(),
            entities: Vec::new(),
            attributes: Vec::new(),
            pending_fks: Vec::new(),
            error: None,
        }
    }

    fn record_err(&mut self, e: SchemaError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Starts a new entity. Subsequent [`attr`](Self::attr) calls add
    /// attributes to it.
    pub fn entity(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if self.entities.iter().any(|e| e.name == name) {
            self.record_err(SchemaError::DuplicateEntity(name.clone()));
        }
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(Entity { id, name, attrs: Vec::new(), pk: None, fks: Vec::new() });
        self
    }

    /// Adds an attribute without a description to the current entity.
    pub fn attr(self, name: impl Into<String>, dtype: DataType) -> Self {
        self.push_attr(name.into(), dtype, None)
    }

    /// Adds an attribute with a natural-language description.
    pub fn attr_desc(
        self,
        name: impl Into<String>,
        dtype: DataType,
        desc: impl Into<String>,
    ) -> Self {
        self.push_attr(name.into(), dtype, Some(desc.into()))
    }

    /// Adds an attribute with an optional description.
    pub fn attr_opt_desc(
        self,
        name: impl Into<String>,
        dtype: DataType,
        desc: Option<String>,
    ) -> Self {
        self.push_attr(name.into(), dtype, desc)
    }

    fn push_attr(mut self, name: String, dtype: DataType, desc: Option<String>) -> Self {
        let Some(entity) = self.entities.last_mut() else {
            self.record_err(SchemaError::UnknownEntity("<no current entity>".into()));
            return self;
        };
        let owned_names: Vec<&Attribute> =
            entity.attrs.iter().map(|&a| &self.attributes[a.index()]).collect();
        if owned_names.iter().any(|a| a.name == name) {
            let entity_name = entity.name.clone();
            self.record_err(SchemaError::DuplicateAttribute { entity: entity_name, attr: name });
            return self;
        }
        let id = AttrId(self.attributes.len() as u32);
        entity.attrs.push(id);
        let entity_id = entity.id;
        self.attributes.push(Attribute { id, entity: entity_id, name, dtype, desc });
        self
    }

    /// Declares the current entity's primary key by attribute name.
    pub fn pk(mut self, attr_name: &str) -> Self {
        let Some(entity) = self.entities.last() else {
            self.record_err(SchemaError::UnknownEntity("<no current entity>".into()));
            return self;
        };
        let found =
            entity.attrs.iter().copied().find(|&a| self.attributes[a.index()].name == attr_name);
        match found {
            Some(a) => self.entities.last_mut().expect("checked above").pk = Some(a),
            None => self.record_err(SchemaError::UnknownAttribute(attr_name.to_string())),
        }
        self
    }

    /// Declares a foreign key by entity/attribute names. Resolved at
    /// [`build`](Self::build) time so forward references work.
    pub fn foreign_key(
        mut self,
        from_entity: &str,
        from_attr: &str,
        to_entity: &str,
        to_attr: &str,
    ) -> Self {
        self.pending_fks.push((
            from_entity.to_string(),
            from_attr.to_string(),
            to_entity.to_string(),
            to_attr.to_string(),
        ));
        self
    }

    /// Finishes construction, resolving foreign keys and validating.
    pub fn build(mut self) -> Result<Schema, SchemaError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut schema = Schema {
            name: self.name,
            entities: self.entities,
            attributes: self.attributes,
            foreign_keys: Vec::new(),
        };
        for (fe, fa, te, ta) in self.pending_fks {
            let from = schema
                .attr_by_name(&fe, &fa)
                .map(|a| (a.entity, a.id))
                .ok_or_else(|| SchemaError::UnknownAttribute(format!("{fe}.{fa}")))?;
            let to = schema
                .attr_by_name(&te, &ta)
                .map(|a| (a.entity, a.id))
                .ok_or_else(|| SchemaError::UnknownAttribute(format!("{te}.{ta}")))?;
            schema.foreign_keys.push(ForeignKey {
                from_entity: from.0,
                from: from.1,
                to_entity: to.0,
                to: to.1,
            });
            let from_entity = &mut schema.entities[from.0.index()];
            if !from_entity.fks.contains(&from.1) {
                from_entity.fks.push(from.1);
            }
        }
        schema.validate()?;
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Schema {
        Schema::builder("shop")
            .entity("Orders")
            .attr("order_id", DataType::Integer)
            .attr("discount", DataType::Decimal)
            .pk("order_id")
            .entity("Items")
            .attr("item_id", DataType::Integer)
            .attr("order_id", DataType::Integer)
            .pk("item_id")
            .foreign_key("Items", "order_id", "Orders", "order_id")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_schema() {
        let s = small();
        assert_eq!(s.entity_count(), 2);
        assert_eq!(s.attr_count(), 4);
        assert_eq!(s.foreign_keys.len(), 1);
        s.validate().unwrap();
    }

    #[test]
    fn qualified_names_and_lookup_round_trip() {
        let s = small();
        let a = s.attr_by_qualified_name("Orders.discount").unwrap();
        assert_eq!(s.qualified_name(a.id), "Orders.discount");
        assert!(s.attr_by_qualified_name("Orders.nope").is_none());
        assert!(s.attr_by_qualified_name("garbage").is_none());
    }

    #[test]
    fn fk_registration_updates_entity_fk_list() {
        let s = small();
        let items = s.entity_by_name("Items").unwrap();
        assert_eq!(items.fks.len(), 1);
        assert_eq!(s.attr(items.fks[0]).name, "order_id");
    }

    #[test]
    fn anchor_set_is_pk_then_fk_per_entity() {
        let s = small();
        let anchors = s.anchor_set();
        let names: Vec<_> = anchors.iter().map(|&a| s.qualified_name(a)).collect();
        assert_eq!(names, vec!["Orders.order_id", "Items.item_id", "Items.order_id"]);
    }

    #[test]
    fn duplicate_entity_is_rejected() {
        let err = Schema::builder("x").entity("A").entity("A").build().unwrap_err();
        assert_eq!(err, SchemaError::DuplicateEntity("A".into()));
    }

    #[test]
    fn duplicate_attr_within_entity_is_rejected() {
        let err = Schema::builder("x")
            .entity("A")
            .attr("c", DataType::Text)
            .attr("c", DataType::Text)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateAttribute { .. }));
    }

    #[test]
    fn same_attr_name_in_different_entities_is_fine() {
        let s = Schema::builder("x")
            .entity("A")
            .attr("id", DataType::Integer)
            .entity("B")
            .attr("id", DataType::Integer)
            .build()
            .unwrap();
        assert_eq!(s.attr_count(), 2);
        assert_eq!(s.unique_attr_name_count(), 1);
    }

    #[test]
    fn attr_before_entity_is_rejected() {
        let err = Schema::builder("x").attr("a", DataType::Text).build().unwrap_err();
        assert!(matches!(err, SchemaError::UnknownEntity(_)));
    }

    #[test]
    fn unknown_pk_is_rejected() {
        let err = Schema::builder("x").entity("A").pk("nope").build().unwrap_err();
        assert_eq!(err, SchemaError::UnknownAttribute("nope".into()));
    }

    #[test]
    fn unknown_fk_endpoint_is_rejected() {
        let err = Schema::builder("x")
            .entity("A")
            .attr("id", DataType::Integer)
            .foreign_key("A", "id", "B", "id")
            .build()
            .unwrap_err();
        assert_eq!(err, SchemaError::UnknownAttribute("B.id".into()));
    }

    #[test]
    fn without_descriptions_strips_all() {
        let s = Schema::builder("x")
            .entity("A")
            .attr_desc("id", DataType::Integer, "identifier")
            .build()
            .unwrap();
        assert!(s.has_descriptions());
        let stripped = s.without_descriptions();
        assert!(!stripped.has_descriptions());
        // Original untouched.
        assert!(s.has_descriptions());
    }

    #[test]
    fn serde_round_trip() {
        let s = small();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
