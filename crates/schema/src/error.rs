//! Error types for schema construction and validation.

use crate::ids::{AttrId, EntityId};
use std::fmt;

/// Errors raised while building or validating a [`Schema`](crate::Schema) or
/// a [`MatchResult`](crate::MatchResult).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two entities share a name.
    DuplicateEntity(String),
    /// Two attributes of the same entity share a name.
    DuplicateAttribute { entity: String, attr: String },
    /// A referenced entity does not exist.
    UnknownEntity(String),
    /// A referenced attribute does not exist.
    UnknownAttribute(String),
    /// An id points outside the schema's arenas.
    DanglingId(String),
    /// A foreign key's endpoints live in the wrong entities.
    InvalidForeignKey { from: AttrId, to: AttrId },
    /// A primary key attribute does not belong to its entity.
    InvalidPrimaryKey { entity: EntityId, attr: AttrId },
    /// A match result uses the same source or target attribute twice
    /// (violates Definition 2 of the paper).
    DuplicateCorrespondence(AttrId),
    /// An entity match pairs attributes outside its declared entities.
    CorrespondenceOutsideEntities { source: AttrId, target: AttrId },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateEntity(name) => write!(f, "duplicate entity {name:?}"),
            SchemaError::DuplicateAttribute { entity, attr } => {
                write!(f, "duplicate attribute {attr:?} in entity {entity:?}")
            }
            SchemaError::UnknownEntity(name) => write!(f, "unknown entity {name:?}"),
            SchemaError::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
            SchemaError::DanglingId(what) => write!(f, "dangling id: {what}"),
            SchemaError::InvalidForeignKey { from, to } => {
                write!(f, "invalid foreign key {from} -> {to}")
            }
            SchemaError::InvalidPrimaryKey { entity, attr } => {
                write!(f, "primary key {attr} does not belong to entity {entity}")
            }
            SchemaError::DuplicateCorrespondence(attr) => {
                write!(f, "attribute {attr} appears in more than one correspondence")
            }
            SchemaError::CorrespondenceOutsideEntities { source, target } => {
                write!(
                    f,
                    "correspondence ({source}, {target}) pairs attributes outside the declared entities"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readably() {
        let e = SchemaError::DuplicateEntity("Orders".into());
        assert!(e.to_string().contains("Orders"));
        let e = SchemaError::InvalidForeignKey { from: AttrId(1), to: AttrId(2) };
        assert!(e.to_string().contains("a1"));
        assert!(e.to_string().contains("a2"));
    }
}
