//! The `lsm` command-line tool.
//!
//! ```text
//! lsm stats    <schema.json>
//! lsm match    <source.json> <target.json> [--labels labels.json]
//!              [--model small|tiny|off] [--top-k N]
//!              [--trace-out t.json] [--metrics-out m.json]
//! lsm baseline <cupid|coma|smatch|sf|mlm> <source.json> <target.json> [--top-k N]
//! lsm generate <iss|iss-small|customer-a..e|movielens|imdb|rdb-star-source|rdb-star-target>
//! ```
//!
//! Schema files use the hand-writable spec format (see `lsm_cli::spec`);
//! `lsm generate movielens` prints an example to copy from.
//!
//! Observability: `--trace-out` writes a Chrome trace (Perfetto /
//! `chrome://tracing`), `--metrics-out` a per-stage metrics snapshot;
//! either flag (or `LSM_TRACE=1`) turns the sink on, and an enabled sink
//! prints a stage summary table to stderr. See `docs/observability.md`.

use lsm_cli::commands::{self, ModelChoice};
use std::process::ExitCode;

/// With `--features alloc-track` the whole binary allocates through the
/// counting wrapper, so `--metrics-out` snapshots carry per-stage
/// bytes/count and peak in-use bytes. Off by default: plain builds keep
/// the system allocator and a forbid(unsafe) dependency tree.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static COUNTING_ALLOC: lsm_obs::CountingAlloc = lsm_obs::CountingAlloc;

const USAGE: &str = "\
usage:
  lsm stats    <schema.json>
  lsm match    <source.json> <target.json> [--labels <labels.json>]
               [--model small|tiny|off] [--top-k <N>]
               [--trace-out <trace.json>] [--metrics-out <metrics.json>]
  lsm baseline <cupid|coma|smatch|sf|mlm> <source.json> <target.json> [--top-k <N>]
  lsm extract  <source.json> <target.json> [--labels <labels.json>]
               [--model small|tiny|off] [--threshold <T>]
  lsm evaluate <predictions.json> <truth.json>
  lsm session  <movielens|rdb-star|ipfqr|customer-a..e> [--model small|tiny|off]
               [--journal <session.journal> | --resume <session.journal>]
               [--trace-out <trace.json>] [--metrics-out <metrics.json>]
  lsm serve    [--addr <host:port>] [--journal-dir <dir>] [--cache-capacity <N>]
               [--preload small|tiny|off]
  lsm generate <iss|iss-small|customer-a..e|movielens|imdb|rdb-star-source|rdb-star-target>

Set LSM_TRACE=1 to collect and print per-stage timings without writing files.
";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Pulls `--flag value` or `--flag=value` out of an argument list, leaving
/// the remainder. A flag present without a value is an error, not a silent
/// `None`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let eq_prefix = format!("{flag}=");
    let Some(pos) = args.iter().position(|a| a == flag || a.starts_with(&eq_prefix)) else {
        return Ok(None);
    };
    let arg = args.remove(pos);
    if let Some(value) = arg.strip_prefix(&eq_prefix) {
        if value.is_empty() {
            return Err(format!("{flag} requires a value (got `{flag}=`)"));
        }
        return Ok(Some(value.to_string()));
    }
    if pos >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    Ok(Some(args.remove(pos)))
}

/// Rejects whatever still looks like a flag once a command's `take_flag`
/// pass is done. This has to be loud: a typoed `--journel session.log`
/// would otherwise be read as two positional arguments — at best a
/// confusing usage error, at worst (for commands with optional
/// positionals) a run that silently drops the behaviour the user asked
/// for, e.g. persistence.
fn reject_unknown_flags(args: &[String]) -> Result<(), String> {
    match args.iter().find(|a| a.starts_with("--")) {
        Some(flag) => Err(format!("unknown flag {flag} for this command\n\n{USAGE}")),
        None => Ok(()),
    }
}

/// Parses `--trace-out` / `--metrics-out` and enables the obs sink when
/// either is present.
fn take_obs_flags(args: &mut Vec<String>) -> Result<(Option<String>, Option<String>), String> {
    let trace_out = take_flag(args, "--trace-out")?;
    let metrics_out = take_flag(args, "--metrics-out")?;
    if trace_out.is_some() || metrics_out.is_some() {
        lsm_obs::enable();
    }
    Ok((trace_out, metrics_out))
}

/// Writes the requested observability artifacts after a command ran.
fn write_obs_outputs(trace_out: Option<&str>, metrics_out: Option<&str>) -> Result<(), String> {
    if let Some(path) = trace_out {
        lsm_obs::write_trace(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote trace to {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = metrics_out {
        lsm_obs::write_metrics(path).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

fn run() -> Result<String, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = if args.is_empty() { String::new() } else { args.remove(0) };
    match command.as_str() {
        "stats" => {
            reject_unknown_flags(&args)?;
            let [path] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::stats(&read(path)?)
        }
        "match" => {
            let labels = take_flag(&mut args, "--labels")?.map(|p| read(&p)).transpose()?;
            let model = match take_flag(&mut args, "--model")? {
                None => ModelChoice::BertTiny,
                Some(m) => ModelChoice::parse(&m)
                    .ok_or_else(|| format!("unknown --model {m:?}; expected small|tiny|off"))?,
            };
            let top_k = match take_flag(&mut args, "--top-k")? {
                None => 3,
                Some(k) => k.parse().map_err(|_| format!("invalid --top-k {k:?}"))?,
            };
            let (trace_out, metrics_out) = take_obs_flags(&mut args)?;
            reject_unknown_flags(&args)?;
            let [source, target] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            let out = commands::match_schemas(
                &read(source)?,
                &read(target)?,
                labels.as_deref(),
                model,
                top_k,
            )?;
            write_obs_outputs(trace_out.as_deref(), metrics_out.as_deref())?;
            Ok(out)
        }
        "baseline" => {
            let top_k = match take_flag(&mut args, "--top-k")? {
                None => 3,
                Some(k) => k.parse().map_err(|_| format!("invalid --top-k {k:?}"))?,
            };
            reject_unknown_flags(&args)?;
            let [name, source, target] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::baseline(name, &read(source)?, &read(target)?, top_k)
        }
        "extract" => {
            let labels = take_flag(&mut args, "--labels")?.map(|p| read(&p)).transpose()?;
            let model = match take_flag(&mut args, "--model")? {
                None => ModelChoice::BertTiny,
                Some(m) => ModelChoice::parse(&m)
                    .ok_or_else(|| format!("unknown --model {m:?}; expected small|tiny|off"))?,
            };
            let threshold = match take_flag(&mut args, "--threshold")? {
                None => 0.3,
                Some(t) => t.parse().map_err(|_| format!("invalid --threshold {t:?}"))?,
            };
            reject_unknown_flags(&args)?;
            let [source, target] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::extract(&read(source)?, &read(target)?, labels.as_deref(), model, threshold)
        }
        "evaluate" => {
            reject_unknown_flags(&args)?;
            let [predictions, truth] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::evaluate(&read(predictions)?, &read(truth)?)
        }
        "session" => {
            let model = match take_flag(&mut args, "--model")? {
                None => ModelChoice::BertTiny,
                Some(m) => ModelChoice::parse(&m)
                    .ok_or_else(|| format!("unknown --model {m:?}; expected small|tiny|off"))?,
            };
            let journal = take_flag(&mut args, "--journal")?;
            let resume = take_flag(&mut args, "--resume")?;
            let (trace_out, metrics_out) = take_obs_flags(&mut args)?;
            reject_unknown_flags(&args)?;
            let [dataset] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            let out = commands::session(dataset, model, journal.as_deref(), resume.as_deref())?;
            write_obs_outputs(trace_out.as_deref(), metrics_out.as_deref())?;
            Ok(out)
        }
        "serve" => {
            let addr =
                take_flag(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7400".to_string());
            let journal_dir = take_flag(&mut args, "--journal-dir")?
                .unwrap_or_else(|| "serve-journals".to_string());
            let cache_capacity = match take_flag(&mut args, "--cache-capacity")? {
                None => 4096,
                Some(n) => n.parse().map_err(|_| format!("invalid --cache-capacity {n:?}"))?,
            };
            let preload = take_flag(&mut args, "--preload")?;
            reject_unknown_flags(&args)?;
            if !args.is_empty() {
                return Err(USAGE.to_string());
            }
            commands::serve(&addr, &journal_dir, cache_capacity, preload.as_deref())
        }
        "generate" => {
            reject_unknown_flags(&args)?;
            let [what] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::generate(what)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    lsm_obs::enable_from_env();
    let code = match run() {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    };
    // An enabled sink always reports where the time went (stderr keeps
    // stdout reserved for the command's own output).
    if lsm_obs::is_enabled() {
        eprint!("{}", lsm_obs::snapshot().render_table());
    }
    code
}

#[cfg(test)]
mod tests {
    use super::{reject_unknown_flags, take_flag};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_flag_space_separated() {
        let mut a = args(&["--model", "tiny", "x.json"]);
        assert_eq!(take_flag(&mut a, "--model"), Ok(Some("tiny".to_string())));
        assert_eq!(a, args(&["x.json"]));
    }

    #[test]
    fn take_flag_equals_syntax() {
        let mut a = args(&["x.json", "--model=small"]);
        assert_eq!(take_flag(&mut a, "--model"), Ok(Some("small".to_string())));
        assert_eq!(a, args(&["x.json"]));
    }

    #[test]
    fn take_flag_absent() {
        let mut a = args(&["x.json"]);
        assert_eq!(take_flag(&mut a, "--model"), Ok(None));
        assert_eq!(a, args(&["x.json"]));
    }

    #[test]
    fn take_flag_missing_value_is_an_error() {
        let mut a = args(&["x.json", "--model"]);
        let err = take_flag(&mut a, "--model").unwrap_err();
        assert!(err.contains("--model requires a value"), "got: {err}");
    }

    #[test]
    fn take_flag_empty_equals_value_is_an_error() {
        let mut a = args(&["--model=", "x.json"]);
        let err = take_flag(&mut a, "--model").unwrap_err();
        assert!(err.contains("--model requires a value"), "got: {err}");
    }

    #[test]
    fn leftover_flags_are_rejected() {
        // The regression this guards: `--journel x.journal` (typo) used to
        // be treated as positional arguments, silently running the
        // session without persistence.
        let a = args(&["movielens", "--journel", "x.journal"]);
        let err = reject_unknown_flags(&a).unwrap_err();
        assert!(err.contains("unknown flag --journel"), "got: {err}");

        let a = args(&["--top-k=3", "src.json"]);
        let err = reject_unknown_flags(&a).unwrap_err();
        assert!(err.contains("unknown flag --top-k=3"), "got: {err}");
    }

    #[test]
    fn positional_arguments_pass_the_flag_check() {
        // Dataset names contain dashes but don't *start* with `--`.
        assert_eq!(reject_unknown_flags(&args(&["customer-a", "x.json"])), Ok(()));
        assert_eq!(reject_unknown_flags(&[]), Ok(()));
    }

    #[test]
    fn take_flag_does_not_match_longer_flags() {
        // "--trace" must not swallow "--trace-out …".
        let mut a = args(&["--trace-out", "t.json"]);
        assert_eq!(take_flag(&mut a, "--trace"), Ok(None));
        assert_eq!(a.len(), 2);
    }
}
