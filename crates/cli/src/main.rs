//! The `lsm` command-line tool.
//!
//! ```text
//! lsm stats    <schema.json>
//! lsm match    <source.json> <target.json> [--labels labels.json]
//!              [--model small|tiny|off] [--top-k N]
//! lsm baseline <cupid|coma|smatch|sf|mlm> <source.json> <target.json> [--top-k N]
//! lsm generate <iss|iss-small|customer-a..e|movielens|imdb|rdb-star-source|rdb-star-target>
//! ```
//!
//! Schema files use the hand-writable spec format (see `lsm_cli::spec`);
//! `lsm generate movielens` prints an example to copy from.

use lsm_cli::commands::{self, ModelChoice};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  lsm stats    <schema.json>
  lsm match    <source.json> <target.json> [--labels <labels.json>]
               [--model small|tiny|off] [--top-k <N>]
  lsm baseline <cupid|coma|smatch|sf|mlm> <source.json> <target.json> [--top-k <N>]
  lsm extract  <source.json> <target.json> [--labels <labels.json>]
               [--model small|tiny|off] [--threshold <T>]
  lsm evaluate <predictions.json> <truth.json>
  lsm session  <movielens|rdb-star|ipfqr|customer-a..e> [--model small|tiny|off]
  lsm generate <iss|iss-small|customer-a..e|movielens|imdb|rdb-star-source|rdb-star-target>
";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Pulls `--flag value` out of an argument list, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn run() -> Result<String, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = if args.is_empty() { String::new() } else { args.remove(0) };
    match command.as_str() {
        "stats" => {
            let [path] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::stats(&read(path)?)
        }
        "match" => {
            let labels = take_flag(&mut args, "--labels").map(|p| read(&p)).transpose()?;
            let model = match take_flag(&mut args, "--model") {
                None => ModelChoice::BertTiny,
                Some(m) => ModelChoice::parse(&m)
                    .ok_or_else(|| format!("unknown --model {m:?}; expected small|tiny|off"))?,
            };
            let top_k = match take_flag(&mut args, "--top-k") {
                None => 3,
                Some(k) => k.parse().map_err(|_| format!("invalid --top-k {k:?}"))?,
            };
            let [source, target] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::match_schemas(&read(source)?, &read(target)?, labels.as_deref(), model, top_k)
        }
        "baseline" => {
            let top_k = match take_flag(&mut args, "--top-k") {
                None => 3,
                Some(k) => k.parse().map_err(|_| format!("invalid --top-k {k:?}"))?,
            };
            let [name, source, target] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::baseline(name, &read(source)?, &read(target)?, top_k)
        }
        "extract" => {
            let labels = take_flag(&mut args, "--labels").map(|p| read(&p)).transpose()?;
            let model = match take_flag(&mut args, "--model") {
                None => ModelChoice::BertTiny,
                Some(m) => ModelChoice::parse(&m)
                    .ok_or_else(|| format!("unknown --model {m:?}; expected small|tiny|off"))?,
            };
            let threshold = match take_flag(&mut args, "--threshold") {
                None => 0.3,
                Some(t) => t.parse().map_err(|_| format!("invalid --threshold {t:?}"))?,
            };
            let [source, target] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::extract(&read(source)?, &read(target)?, labels.as_deref(), model, threshold)
        }
        "evaluate" => {
            let [predictions, truth] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::evaluate(&read(predictions)?, &read(truth)?)
        }
        "session" => {
            let model = match take_flag(&mut args, "--model") {
                None => ModelChoice::BertTiny,
                Some(m) => ModelChoice::parse(&m)
                    .ok_or_else(|| format!("unknown --model {m:?}; expected small|tiny|off"))?,
            };
            let [dataset] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::session(dataset, model)
        }
        "generate" => {
            let [what] = args.as_slice() else {
                return Err(USAGE.to_string());
            };
            commands::generate(what)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
