//! The hand-writable schema JSON format.
//!
//! The arena-based [`Schema`] serialization is exact but awkward to author
//! by hand; this *spec* format is what users write:
//!
//! ```json
//! {
//!   "name": "shop",
//!   "entities": [
//!     {
//!       "name": "Orders",
//!       "pk": "order_id",
//!       "attrs": [
//!         { "name": "order_id", "dtype": "integer" },
//!         { "name": "discount", "dtype": "decimal", "desc": "price cut" },
//!         { "name": "item_id", "dtype": "integer" }
//!       ],
//!       "fks": [ { "attr": "item_id", "references": "Item.item_id" } ]
//!     },
//!     { "name": "Item", "pk": "item_id",
//!       "attrs": [ { "name": "item_id", "dtype": "integer" } ] }
//!   ]
//! }
//! ```

use lsm_schema::{DataType, Schema, SchemaError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One attribute in the spec format.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Data type name (`integer`, `decimal`, `text`, ... or common SQL
    /// spellings like `varchar(255)`).
    #[serde(default = "default_dtype")]
    pub dtype: String,
    /// Optional natural-language description.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub desc: Option<String>,
}

fn default_dtype() -> String {
    "text".to_string()
}

/// One foreign key in the spec format.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FkSpec {
    /// Referencing attribute (in this entity).
    pub attr: String,
    /// Referenced attribute as `Entity.attribute`.
    pub references: String,
}

/// One entity in the spec format.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct EntitySpec {
    /// Entity (table) name.
    pub name: String,
    /// Attributes in order.
    pub attrs: Vec<AttrSpec>,
    /// Primary-key attribute name, if declared.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pk: Option<String>,
    /// Foreign keys out of this entity.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fks: Vec<FkSpec>,
}

/// A whole schema in the spec format.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SchemaSpec {
    /// Schema name.
    pub name: String,
    /// Entities in order.
    pub entities: Vec<EntitySpec>,
}

/// Errors turning a spec into a [`Schema`].
#[derive(Debug)]
pub enum SpecError {
    /// JSON syntax / shape problem.
    Json(serde_json::Error),
    /// An unknown data type name.
    Dtype {
        /// Owning entity of the offending attribute.
        entity: String,
        /// The offending attribute.
        attr: String,
        /// The unparseable data-type string.
        dtype: String,
    },
    /// A malformed `Entity.attribute` reference.
    Reference(String),
    /// Schema-level validation failed.
    Schema(SchemaError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Dtype { entity, attr, dtype } => {
                write!(f, "unknown dtype {dtype:?} on {entity}.{attr}")
            }
            SpecError::Reference(r) => {
                write!(f, "malformed reference {r:?} (expected Entity.attribute)")
            }
            SpecError::Schema(e) => write!(f, "invalid schema: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SchemaSpec {
    /// Parses a spec from JSON text.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        serde_json::from_str(json).map_err(SpecError::Json)
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> Result<String, SpecError> {
        serde_json::to_string_pretty(self).map_err(SpecError::Json)
    }

    /// Converts the spec into a validated [`Schema`].
    pub fn build(&self) -> Result<Schema, SpecError> {
        let mut b = Schema::builder(self.name.clone());
        for e in &self.entities {
            b = b.entity(e.name.clone());
            for a in &e.attrs {
                let dtype: DataType = a.dtype.parse().map_err(|_| SpecError::Dtype {
                    entity: e.name.clone(),
                    attr: a.name.clone(),
                    dtype: a.dtype.clone(),
                })?;
                b = b.attr_opt_desc(a.name.clone(), dtype, a.desc.clone());
            }
            if let Some(pk) = &e.pk {
                b = b.pk(pk);
            }
        }
        for e in &self.entities {
            for fk in &e.fks {
                let (te, ta) = fk
                    .references
                    .split_once('.')
                    .ok_or_else(|| SpecError::Reference(fk.references.clone()))?;
                b = b.foreign_key(&e.name, &fk.attr, te, ta);
            }
        }
        b.build().map_err(SpecError::Schema)
    }

    /// Converts a [`Schema`] back into the spec format (for `lsm generate`).
    pub fn from_schema(schema: &Schema) -> Self {
        let entities = schema
            .entities
            .iter()
            .map(|e| {
                let attrs = e
                    .attrs
                    .iter()
                    .map(|&a| {
                        let attr = schema.attr(a);
                        AttrSpec {
                            name: attr.name.clone(),
                            dtype: attr.dtype.name().to_string(),
                            desc: attr.desc.clone(),
                        }
                    })
                    .collect();
                let fks = schema
                    .foreign_keys
                    .iter()
                    .filter(|fk| fk.from_entity == e.id)
                    .map(|fk| FkSpec {
                        attr: schema.attr(fk.from).name.clone(),
                        references: schema.qualified_name(fk.to),
                    })
                    .collect();
                EntitySpec {
                    name: e.name.clone(),
                    attrs,
                    pk: e.pk.map(|a| schema.attr(a).name.clone()),
                    fks,
                }
            })
            .collect();
        SchemaSpec { name: schema.name.clone(), entities }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "name": "shop",
        "entities": [
            {
                "name": "Orders",
                "pk": "order_id",
                "attrs": [
                    { "name": "order_id", "dtype": "integer" },
                    { "name": "discount", "dtype": "decimal", "desc": "price cut" },
                    { "name": "item_id", "dtype": "integer" }
                ],
                "fks": [ { "attr": "item_id", "references": "Item.item_id" } ]
            },
            { "name": "Item", "pk": "item_id",
              "attrs": [ { "name": "item_id", "dtype": "integer" } ] }
        ]
    }"#;

    #[test]
    fn sample_builds_valid_schema() {
        let spec = SchemaSpec::from_json(SAMPLE).unwrap();
        let schema = spec.build().unwrap();
        assert_eq!(schema.entity_count(), 2);
        assert_eq!(schema.attr_count(), 4);
        assert_eq!(schema.foreign_keys.len(), 1);
        assert_eq!(
            schema.attr_by_qualified_name("Orders.discount").unwrap().desc.as_deref(),
            Some("price cut")
        );
    }

    #[test]
    fn round_trips_through_schema() {
        let spec = SchemaSpec::from_json(SAMPLE).unwrap();
        let schema = spec.build().unwrap();
        let back = SchemaSpec::from_schema(&schema);
        let schema2 = back.build().unwrap();
        assert_eq!(schema, schema2);
    }

    #[test]
    fn missing_dtype_defaults_to_text() {
        let spec = SchemaSpec::from_json(
            r#"{ "name": "x", "entities": [ { "name": "E", "attrs": [ { "name": "a" } ] } ] }"#,
        )
        .unwrap();
        let schema = spec.build().unwrap();
        assert_eq!(schema.attr_by_name("E", "a").unwrap().dtype, DataType::Text);
    }

    #[test]
    fn unknown_dtype_is_reported_with_location() {
        let spec = SchemaSpec::from_json(
            r#"{ "name": "x", "entities": [ { "name": "E", "attrs": [ { "name": "a", "dtype": "frob" } ] } ] }"#,
        )
        .unwrap();
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("E.a"));
    }

    #[test]
    fn malformed_reference_is_rejected() {
        let spec = SchemaSpec::from_json(
            r#"{ "name": "x", "entities": [ { "name": "E",
                "attrs": [ { "name": "a", "dtype": "integer" } ],
                "fks": [ { "attr": "a", "references": "nodot" } ] } ] }"#,
        )
        .unwrap();
        assert!(matches!(spec.build().unwrap_err(), SpecError::Reference(_)));
    }

    #[test]
    fn sql_spellings_parse() {
        let spec = SchemaSpec::from_json(
            r#"{ "name": "x", "entities": [ { "name": "E", "attrs": [
                { "name": "a", "dtype": "VARCHAR(64)" },
                { "name": "b", "dtype": "BIGINT" } ] } ] }"#,
        )
        .unwrap();
        let schema = spec.build().unwrap();
        assert_eq!(schema.attr_by_name("E", "a").unwrap().dtype, DataType::Text);
        assert_eq!(schema.attr_by_name("E", "b").unwrap().dtype, DataType::Integer);
    }
}
