//! # lsm-cli
//!
//! Library half of the `lsm` command-line tool: the human-friendly schema
//! JSON format ([`spec`]), label files ([`labels`]), and the command
//! implementations ([`commands`]) — kept in the library so they are unit
//! testable; `main.rs` only parses arguments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod labels;
pub mod spec;

pub use spec::{SchemaSpec, SpecError};
