//! Label files: user-confirmed matches fed into `lsm match`.

use lsm_core::LabelStore;
use lsm_schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One confirmed or rejected pair in a label file.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LabelSpec {
    /// Source attribute as `Entity.attribute`.
    pub source: String,
    /// Target attribute as `Entity.attribute`.
    pub target: String,
    /// `true` (default) for a confirmed match, `false` for a rejection.
    #[serde(default = "default_true")]
    pub correct: bool,
}

fn default_true() -> bool {
    true
}

/// Errors resolving a label file against its schemata.
#[derive(Debug)]
pub enum LabelError {
    /// JSON problem.
    Json(serde_json::Error),
    /// A qualified name that does not exist in the given schema.
    Unknown {
        /// Which side the name was looked up on (`"source"`/`"target"`).
        side: &'static str,
        /// The unresolved qualified name.
        name: String,
    },
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::Json(e) => write!(f, "invalid JSON: {e}"),
            LabelError::Unknown { side, name } => {
                write!(f, "unknown {side} attribute {name:?}")
            }
        }
    }
}

impl std::error::Error for LabelError {}

/// Parses a label file and resolves it into a [`LabelStore`].
pub fn parse_labels(
    json: &str,
    source: &Schema,
    target: &Schema,
) -> Result<LabelStore, LabelError> {
    let specs: Vec<LabelSpec> = serde_json::from_str(json).map_err(LabelError::Json)?;
    let mut store = LabelStore::new();
    for spec in specs {
        let s = source
            .attr_by_qualified_name(&spec.source)
            .ok_or_else(|| LabelError::Unknown { side: "source", name: spec.source.clone() })?
            .id;
        let t = target
            .attr_by_qualified_name(&spec.target)
            .ok_or_else(|| LabelError::Unknown { side: "target", name: spec.target.clone() })?
            .id;
        if spec.correct {
            store.confirm(s, t);
        } else {
            store.reject(s, t);
        }
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_schema::DataType;

    fn schemas() -> (Schema, Schema) {
        let s = Schema::builder("s")
            .entity("A")
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .build()
            .unwrap();
        let t = Schema::builder("t")
            .entity("B")
            .attr("u", DataType::Text)
            .attr("v", DataType::Text)
            .build()
            .unwrap();
        (s, t)
    }

    #[test]
    fn parses_confirmations_and_rejections() {
        let (s, t) = schemas();
        let store = parse_labels(
            r#"[
                { "source": "A.x", "target": "B.u" },
                { "source": "A.y", "target": "B.u", "correct": false }
            ]"#,
            &s,
            &t,
        )
        .unwrap();
        assert_eq!(store.matched_count(), 1);
        assert_eq!(store.negative_count(), 1);
    }

    #[test]
    fn unknown_names_are_rejected_with_side() {
        let (s, t) = schemas();
        let err =
            parse_labels(r#"[ { "source": "A.nope", "target": "B.u" } ]"#, &s, &t).unwrap_err();
        assert!(err.to_string().contains("source"));
        let err =
            parse_labels(r#"[ { "source": "A.x", "target": "B.nope" } ]"#, &s, &t).unwrap_err();
        assert!(err.to_string().contains("target"));
    }
}
