//! The `lsm` command implementations, kept out of `main.rs` for testing.

use crate::labels::parse_labels;
use crate::spec::SchemaSpec;
use lsm_baselines::coma::Coma;
use lsm_baselines::cupid::Cupid;
use lsm_baselines::flooding::SimilarityFlooding;
use lsm_baselines::mlm::Mlm;
use lsm_baselines::smatch::SMatch;
use lsm_baselines::{MatchContext, Matcher};
use lsm_core::bert_featurizer::{BertFeaturizer, BertFeaturizerConfig};
use lsm_core::{LabelStore, LsmConfig, LsmMatcher};
use lsm_embedding::{EmbeddingConfig, EmbeddingSpace};
use lsm_lexicon::full_lexicon;
use lsm_schema::{Schema, SchemaStats};
use lsm_store::{JournalOptions, JournalSink};
use std::path::Path;

/// Which model powers `lsm match`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Full LSM with the small LM featurizer (slow to warm up, strongest).
    BertSmall,
    /// Full LSM with the tiny LM featurizer (fast demo mode).
    BertTiny,
    /// LSM without the LM featurizer.
    NoBert,
}

impl ModelChoice {
    /// Parses `small` / `tiny` / `off`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(ModelChoice::BertSmall),
            "tiny" => Some(ModelChoice::BertTiny),
            "off" => Some(ModelChoice::NoBert),
            _ => None,
        }
    }
}

/// `lsm stats <schema.json>`: prints the Table-I-style statistics.
pub fn stats(schema_json: &str) -> Result<String, String> {
    let spec = SchemaSpec::from_json(schema_json).map_err(|e| e.to_string())?;
    let schema = spec.build().map_err(|e| e.to_string())?;
    let s = SchemaStats::of(&schema);
    Ok(format!(
        "{}: {} entities, {} attributes ({} unique names), {} PK/FK, descriptions: {}",
        s.name,
        s.entities,
        s.attributes,
        s.unique_attr_names,
        s.pk_fk,
        if s.has_descriptions { "yes" } else { "no" }
    ))
}

/// `lsm match`: runs LSM and renders the top-k suggestions per source
/// attribute. `labels_json` optionally carries confirmed/rejected pairs.
pub fn match_schemas(
    source_json: &str,
    target_json: &str,
    labels_json: Option<&str>,
    model: ModelChoice,
    top_k: usize,
) -> Result<String, String> {
    let source =
        SchemaSpec::from_json(source_json).and_then(|s| s.build()).map_err(|e| e.to_string())?;
    let target =
        SchemaSpec::from_json(target_json).and_then(|s| s.build()).map_err(|e| e.to_string())?;
    let labels = match labels_json {
        Some(json) => parse_labels(json, &source, &target).map_err(|e| e.to_string())?,
        None => LabelStore::new(),
    };

    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let bert = match model {
        ModelChoice::NoBert => None,
        choice => {
            let config = if choice == ModelChoice::BertSmall {
                BertFeaturizerConfig::small()
            } else {
                BertFeaturizerConfig::tiny()
            };
            eprintln!("pre-training the language-model featurizer ...");
            let mut b = BertFeaturizer::pretrain(&lexicon, config);
            b.pretrain_classifier(&target);
            Some(b)
        }
    };
    let config = LsmConfig { use_bert: bert.is_some(), top_k, ..Default::default() };
    let mut matcher = LsmMatcher::new(&source, &target, &embedding, bert, config);
    matcher.retrain(&labels);
    let scores = matcher.predict(&labels);

    let mut out = String::new();
    for s in source.attr_ids() {
        let suggestions: Vec<String> = scores
            .top_k(s, top_k)
            .into_iter()
            .map(|(t, score)| format!("{} ({score:.2})", target.qualified_name(t)))
            .collect();
        out.push_str(&format!("{:<40} → {}\n", source.qualified_name(s), suggestions.join(", ")));
    }
    Ok(out)
}

/// `lsm baseline <name>`: runs one of the six baselines.
pub fn baseline(
    name: &str,
    source_json: &str,
    target_json: &str,
    top_k: usize,
) -> Result<String, String> {
    let source =
        SchemaSpec::from_json(source_json).and_then(|s| s.build()).map_err(|e| e.to_string())?;
    let target =
        SchemaSpec::from_json(target_json).and_then(|s| s.build()).map_err(|e| e.to_string())?;
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let ctx = MatchContext { embedding: &embedding, lexicon: &lexicon };
    let scores = match name {
        "cupid" => Cupid::new(0.2).score(&ctx, &source, &target),
        "coma" => Coma::new(lsm_baselines::coma::Aggregation::Max).score(&ctx, &source, &target),
        "smatch" => SMatch.score(&ctx, &source, &target),
        "sf" => SimilarityFlooding::default().score(&ctx, &source, &target),
        "mlm" => Mlm::default().score(&ctx, &source, &target),
        other => {
            return Err(format!("unknown baseline {other:?}; expected cupid|coma|smatch|sf|mlm"))
        }
    };
    let mut out = String::new();
    for s in source.attr_ids() {
        let suggestions: Vec<String> = scores
            .top_k(s, top_k)
            .into_iter()
            .map(|(t, score)| format!("{} ({score:.2})", target.qualified_name(t)))
            .collect();
        out.push_str(&format!("{:<40} → {}\n", source.qualified_name(s), suggestions.join(", ")));
    }
    Ok(out)
}

/// `lsm extract`: runs LSM and emits a one-to-one match set (Definition 2
/// of the paper) as JSON — the artifact a downstream migration job
/// consumes.
pub fn extract(
    source_json: &str,
    target_json: &str,
    labels_json: Option<&str>,
    model: ModelChoice,
    threshold: f64,
) -> Result<String, String> {
    let source =
        SchemaSpec::from_json(source_json).and_then(|s| s.build()).map_err(|e| e.to_string())?;
    let target =
        SchemaSpec::from_json(target_json).and_then(|s| s.build()).map_err(|e| e.to_string())?;
    let labels = match labels_json {
        Some(json) => parse_labels(json, &source, &target).map_err(|e| e.to_string())?,
        None => LabelStore::new(),
    };
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let bert = match model {
        ModelChoice::NoBert => None,
        choice => {
            let config = if choice == ModelChoice::BertSmall {
                BertFeaturizerConfig::small()
            } else {
                BertFeaturizerConfig::tiny()
            };
            eprintln!("pre-training the language-model featurizer ...");
            let mut b = BertFeaturizer::pretrain(&lexicon, config);
            b.pretrain_classifier(&target);
            Some(b)
        }
    };
    let config = LsmConfig { use_bert: bert.is_some(), ..Default::default() };
    let mut matcher = LsmMatcher::new(&source, &target, &embedding, bert, config);
    matcher.retrain(&labels);
    let scores = matcher.predict(&labels);
    let pairs = scores.extract_one_to_one(threshold);
    let matches: Vec<serde_json::Value> = pairs
        .into_iter()
        .map(|(s, t, score)| {
            serde_json::json!({
                "source": source.qualified_name(s),
                "target": target.qualified_name(t),
                "score": score,
            })
        })
        .collect();
    serde_json::to_string_pretty(&serde_json::json!({ "matches": matches }))
        .map_err(|e| e.to_string())
}

/// `lsm evaluate`: scores a predicted match set (the `extract` output)
/// against a reference match file (the labels format with `correct: true`
/// rows), reporting precision, recall, and F1.
pub fn evaluate(predictions_json: &str, truth_json: &str) -> Result<String, String> {
    #[derive(serde::Deserialize)]
    struct Predictions {
        matches: Vec<PredictedMatch>,
    }
    #[derive(serde::Deserialize)]
    struct PredictedMatch {
        source: String,
        target: String,
    }
    let preds: Predictions = serde_json::from_str(predictions_json)
        .map_err(|e| format!("invalid predictions JSON: {e}"))?;
    let truth: Vec<crate::labels::LabelSpec> =
        serde_json::from_str(truth_json).map_err(|e| format!("invalid truth JSON: {e}"))?;
    let truth_pairs: std::collections::HashSet<(String, String)> =
        truth.iter().filter(|l| l.correct).map(|l| (l.source.clone(), l.target.clone())).collect();
    if truth_pairs.is_empty() {
        return Err("truth file contains no correct pairs".to_string());
    }
    let pred_pairs: std::collections::HashSet<(String, String)> =
        preds.matches.iter().map(|m| (m.source.clone(), m.target.clone())).collect();
    let hits = pred_pairs.intersection(&truth_pairs).count();
    let precision = hits as f64 / pred_pairs.len().max(1) as f64;
    let recall = hits as f64 / truth_pairs.len() as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Ok(format!(
        "predicted: {}  reference: {}  correct: {hits}
precision: {precision:.3}  recall: {recall:.3}  f1: {f1:.3}",
        pred_pairs.len(),
        truth_pairs.len()
    ))
}

/// `lsm session <dataset>`: simulates a full interactive matching session
/// on a built-in dataset and reports the labeling cost.
///
/// With `journal` set, every label event is persisted to a crash-safe
/// journal (plus a `<journal>.ckpt` checkpoint) as the session runs. With
/// `resume` set, a previous session is recovered from that journal pair
/// and continued to completion; the recovered prefix and the live
/// continuation produce the same outcome as an uninterrupted run.
pub fn session(
    dataset_name: &str,
    model: ModelChoice,
    journal: Option<&str>,
    resume: Option<&str>,
) -> Result<String, String> {
    if journal.is_some() && resume.is_some() {
        return Err("--journal and --resume are mutually exclusive".to_string());
    }
    let dataset = lsm_datasets::by_name(dataset_name, 1).ok_or_else(|| {
        format!(
            "unknown dataset {dataset_name:?}; expected one of {}",
            lsm_datasets::DATASET_NAMES.join("|")
        )
    })?;
    let lexicon = full_lexicon();
    let embedding = EmbeddingSpace::new(&lexicon, EmbeddingConfig::default());
    let bert = match model {
        ModelChoice::NoBert => None,
        choice => {
            let config = if choice == ModelChoice::BertSmall {
                BertFeaturizerConfig::small()
            } else {
                BertFeaturizerConfig::tiny()
            };
            eprintln!("pre-training the language-model featurizer ...");
            let mut b = BertFeaturizer::pretrain(&lexicon, config);
            b.pretrain_classifier(&dataset.target);
            Some(b)
        }
    };
    let config = LsmConfig { use_bert: bert.is_some(), ..Default::default() };
    let mut matcher = LsmMatcher::new(&dataset.source, &dataset.target, &embedding, bert, config);
    let mut oracle = lsm_core::PerfectOracle::new(dataset.ground_truth.clone());
    let session_config = lsm_core::SessionConfig::default();
    let outcome = match (journal, resume) {
        (None, None) => lsm_core::run_session(&mut matcher, &mut oracle, session_config),
        (Some(path), None) => {
            let ckpt = format!("{path}.ckpt");
            let mut sink = JournalSink::create(
                Path::new(path),
                Some(Path::new(&ckpt)),
                JournalOptions::default(),
            )
            .map_err(|e| format!("cannot create journal {path}: {e}"))?;
            let outcome = lsm_core::run_session_with_sink(
                &mut matcher,
                &mut oracle,
                session_config,
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
            sink.finish().map_err(|e| format!("cannot finalize journal {path}: {e}"))?;
            eprintln!("journaled session to {path} (checkpoint: {ckpt})");
            outcome
        }
        (None, Some(path)) => {
            let ckpt = format!("{path}.ckpt");
            let (sink, recovered) = JournalSink::resume(
                Path::new(path),
                Some(Path::new(&ckpt)),
                JournalOptions::default(),
            )
            .map_err(|e| format!("cannot recover journal {path}: {e}"))?;
            let total = recovered.state.outcome.total_attributes;
            if recovered.state.started && total != dataset.source.attr_count() {
                return Err(format!(
                    "journal {path} belongs to a different task: it records {total} source \
                     attributes, dataset {dataset_name:?} has {}",
                    dataset.source.attr_count()
                ));
            }
            // Replay stats go to stderr so stdout stays comparable with an
            // uninterrupted run.
            eprintln!(
                "resumed from {}: {} iteration(s), {} label(s) replayed{}{}",
                if recovered.from_checkpoint { "checkpoint + journal" } else { "journal" },
                recovered.state.iterations_done,
                recovered.state.outcome.labels_used,
                if recovered.truncated_bytes > 0 {
                    format!("; {} damaged/uncommitted byte(s) discarded", recovered.truncated_bytes)
                } else {
                    String::new()
                },
                if recovered.dropped_tail_records > 0 {
                    format!(
                        " ({} record(s) of an incomplete iteration)",
                        recovered.dropped_tail_records
                    )
                } else {
                    String::new()
                },
            );
            let mut sink = sink;
            let config = recovered.config.unwrap_or(session_config);
            let outcome = lsm_core::resume_session(
                &mut matcher,
                &mut oracle,
                config,
                recovered.state,
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
            sink.finish().map_err(|e| format!("cannot finalize journal {path}: {e}"))?;
            outcome
        }
        (Some(_), Some(_)) => {
            return Err("--journal and --resume are mutually exclusive".to_string())
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "dataset: {}
",
        dataset.name
    ));
    out.push_str(&format!(
        "matched: {}/{} correctly
",
        outcome.curve.last().map(|p| p.matched_correct).unwrap_or(0),
        outcome.total_attributes
    ));
    out.push_str(&format!(
        "labels:  {} ({:.0}% of the schema; {:.0}% saved vs manual labeling)
",
        outcome.labels_used,
        outcome.labeling_cost_pct(),
        100.0 - outcome.labeling_cost_pct()
    ));
    out.push_str(&format!(
        "reviews: {}
",
        outcome.reviews_done
    ));
    if !outcome.response_times.is_empty() {
        let mean_ms =
            outcome.response_times.iter().sum::<f64>() / outcome.response_times.len() as f64 * 1e3;
        out.push_str(&format!(
            "mean response time: {mean_ms:.3} ms
"
        ));
    }
    out.push_str(
        "curve (labels% → correct%):
",
    );
    for p in &outcome.curve {
        out.push_str(&format!(
            "  {:>5.1}% → {:>5.1}%
",
            p.labels_pct(),
            p.correct_pct()
        ));
    }
    Ok(out)
}

/// `lsm serve`: runs the multi-session matching daemon (see
/// `docs/serving.md`) until a client sends `SHUTDOWN`.
///
/// Prints the bound address on stdout as soon as the listener is up —
/// with `--addr 127.0.0.1:0` that line is how scripts learn the
/// ephemeral port. `--preload` pre-trains a featurizer base at startup
/// so the first `OPEN` using it doesn't pay the warm-up.
pub fn serve(
    addr: &str,
    journal_dir: &str,
    cache_capacity: usize,
    preload: Option<&str>,
) -> Result<String, String> {
    let preload_model = preload
        .map(|m| {
            lsm_serve::ServeModel::parse(m)
                .ok_or_else(|| format!("unknown --preload {m:?}; expected small|tiny|off"))
        })
        .transpose()?;
    let config = lsm_serve::ServeConfig {
        addr: addr.to_string(),
        journal_dir: std::path::PathBuf::from(journal_dir),
        cache_capacity,
        ..Default::default()
    };
    let handle = lsm_serve::spawn(config).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let bound = handle.addr();
    println!("lsm-serve listening on {bound} (journals in {journal_dir})");
    if let Some(model) = preload_model {
        if model != lsm_serve::ServeModel::Off {
            eprintln!("pre-training the {} featurizer ...", model.name());
        }
        handle.preload(model);
    }
    handle.join();
    Ok(format!("lsm-serve on {bound} shut down"))
}

/// `lsm generate <what>`: emits a sample schema in the spec format.
pub fn generate(what: &str) -> Result<String, String> {
    let schema: Schema = match what {
        "iss" => {
            let lexicon = full_lexicon();
            lsm_datasets::iss::generate_retail_iss(
                &lexicon,
                lsm_datasets::iss::IssConfig::paper(),
            )
            .schema
        }
        "iss-small" => {
            let lexicon = full_lexicon();
            lsm_datasets::iss::generate_retail_iss(
                &lexicon,
                lsm_datasets::iss::IssConfig::small(),
            )
            .schema
        }
        "customer-a" | "customer-b" | "customer-c" | "customer-d" | "customer-e" => {
            lsm_datasets::by_name(what, 1)
                .ok_or_else(|| {
                    format!("customer dataset {what:?} is out of range; expected customer-a..e")
                })?
                .source
        }
        "movielens" => lsm_datasets::public_data::movielens_imdb().source,
        "imdb" => lsm_datasets::public_data::movielens_imdb().target,
        "rdb-star-source" => lsm_datasets::public_data::rdb_star().source,
        "rdb-star-target" => lsm_datasets::public_data::rdb_star().target,
        other => {
            return Err(format!(
                "unknown generator {other:?}; expected iss|iss-small|customer-a..e|movielens|imdb|rdb-star-source|rdb-star-target"
            ))
        }
    };
    SchemaSpec::from_schema(&schema).to_json().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = r#"{ "name": "s", "entities": [ { "name": "Orders", "attrs": [
        { "name": "unit_count", "dtype": "integer" },
        { "name": "purchase_date", "dtype": "date" } ] } ] }"#;
    const TARGET: &str = r#"{ "name": "t", "entities": [ { "name": "TransactionLine", "attrs": [
        { "name": "quantity", "dtype": "integer", "desc": "number of units" },
        { "name": "order_date", "dtype": "date", "desc": "date of the order" },
        { "name": "total_amount", "dtype": "decimal", "desc": "value of the line" } ] } ] }"#;

    #[test]
    fn stats_renders_counts() {
        let out = stats(SOURCE).unwrap();
        assert!(out.contains("1 entities"));
        assert!(out.contains("2 attributes"));
    }

    #[test]
    fn match_without_bert_ranks_synonyms() {
        let out = match_schemas(SOURCE, TARGET, None, ModelChoice::NoBert, 1).unwrap();
        assert!(out.contains("Orders.unit_count"), "{out}");
        // unit_count → quantity via the embedding featurizer.
        let first_line = out.lines().next().unwrap();
        assert!(first_line.contains("quantity"), "{first_line}");
    }

    #[test]
    fn match_respects_labels() {
        let labels =
            r#"[ { "source": "Orders.unit_count", "target": "TransactionLine.total_amount" } ]"#;
        let out = match_schemas(SOURCE, TARGET, Some(labels), ModelChoice::NoBert, 1).unwrap();
        let first_line = out.lines().next().unwrap();
        assert!(first_line.contains("total_amount"), "{first_line}");
    }

    #[test]
    fn baseline_command_runs_all_known_names() {
        for name in ["cupid", "coma", "smatch", "sf", "mlm"] {
            let out = baseline(name, SOURCE, TARGET, 2).unwrap();
            assert!(out.contains("Orders.unit_count"), "{name}");
        }
        assert!(baseline("nope", SOURCE, TARGET, 2).is_err());
    }

    #[test]
    fn evaluate_scores_predictions_against_truth() {
        let preds = r#"{ "matches": [
            { "source": "A.x", "target": "B.u", "score": 0.9 },
            { "source": "A.y", "target": "B.w", "score": 0.8 } ] }"#;
        let truth = r#"[
            { "source": "A.x", "target": "B.u" },
            { "source": "A.y", "target": "B.v" },
            { "source": "A.z", "target": "B.q" } ]"#;
        let out = evaluate(preds, truth).unwrap();
        assert!(out.contains("correct: 1"), "{out}");
        assert!(out.contains("precision: 0.500"), "{out}");
        assert!(out.contains("recall: 0.333"), "{out}");
        // Empty truth is an error.
        assert!(evaluate(preds, "[]").is_err());
    }

    #[test]
    fn extract_emits_one_to_one_json() {
        let out = extract(SOURCE, TARGET, None, ModelChoice::NoBert, 0.0).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        let matches = parsed["matches"].as_array().unwrap();
        assert_eq!(matches.len(), 2); // both source attrs assigned
        let targets: Vec<&str> = matches.iter().map(|m| m["target"].as_str().unwrap()).collect();
        let mut dedup = targets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), targets.len(), "one-to-one");
    }

    #[test]
    fn session_runs_on_movielens_without_bert() {
        let out = session("movielens", ModelChoice::NoBert, None, None).unwrap();
        assert!(out.contains("matched: 19/19"), "{out}");
        assert!(session("nope", ModelChoice::NoBert, None, None).is_err());
    }

    #[test]
    fn session_rejects_journal_plus_resume() {
        let err = session("movielens", ModelChoice::NoBert, Some("a"), Some("b")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn session_journal_then_resume_reproduces_the_run() {
        let dir = std::env::temp_dir().join(format!("lsm-cli-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("ml.journal");
        let jpath = journal.to_str().unwrap();

        let reference = session("movielens", ModelChoice::NoBert, Some(jpath), None).unwrap();
        assert!(reference.contains("matched: 19/19"), "{reference}");

        // Tear the tail off the journal and resume: the report (minus the
        // wall-clock response-time line) must come out identical.
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - bytes.len() / 3]).unwrap();
        let resumed = session("movielens", ModelChoice::NoBert, None, Some(jpath)).unwrap();

        let strip = |s: &str| -> String {
            s.lines()
                .filter(|l| !l.starts_with("mean response time"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&resumed), strip(&reference));

        // A journal recorded for a different schema size is rejected.
        let err = session("rdb-star", ModelChoice::NoBert, None, Some(jpath)).unwrap_err();
        assert!(err.contains("different task"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_emits_buildable_specs() {
        for what in ["iss-small", "movielens", "imdb"] {
            let json = generate(what).unwrap();
            let spec = SchemaSpec::from_json(&json).unwrap();
            spec.build().unwrap();
        }
        assert!(generate("nope").is_err());
    }
}
