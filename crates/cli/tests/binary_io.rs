//! Process-level tests of the `lsm` binary: argument parsing, file I/O,
//! and the generate → stats → baseline round trip.

use std::path::PathBuf;
use std::process::Command;

fn lsm_bin() -> PathBuf {
    // Cargo puts test binaries in target/<profile>/deps; the CLI binary
    // lives one level up.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("lsm")
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(lsm_bin()).args(args).output().expect("spawn lsm binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (ok, _, err) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn generate_stats_baseline_round_trip() {
    let dir = std::env::temp_dir().join("lsm_cli_binary_io");
    std::fs::create_dir_all(&dir).unwrap();
    let source = dir.join("source.json");
    let target = dir.join("target.json");

    let (ok, json, err) = run(&["generate", "movielens"]);
    assert!(ok, "{err}");
    std::fs::write(&source, &json).unwrap();
    let (ok, json, err) = run(&["generate", "imdb"]);
    assert!(ok, "{err}");
    std::fs::write(&target, &json).unwrap();

    let (ok, out, err) = run(&["stats", source.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("19 attributes"), "{out}");

    let (ok, out, err) = run(&[
        "baseline",
        "coma",
        source.to_str().unwrap(),
        target.to_str().unwrap(),
        "--top-k",
        "2",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("movies.title"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_journal_crash_resume_round_trip() {
    let dir = std::env::temp_dir().join(format!("lsm_cli_session_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("session.journal");
    let jpath = journal.to_str().unwrap();

    // Conflicting flags are rejected up front.
    let (ok, _, err) = run(&["session", "movielens", "--journal", jpath, "--resume", jpath]);
    assert!(!ok);
    assert!(err.contains("mutually exclusive"), "{err}");

    let (ok, reference, err) = run(&["session", "movielens", "--model", "off", "--journal", jpath]);
    assert!(ok, "{err}");
    assert!(reference.contains("matched: 19/19"), "{reference}");
    assert!(journal.exists());
    assert!(dir.join("session.journal.ckpt").exists());

    // Simulate a crash by tearing off the journal tail. Also drop the
    // checkpoint (which the completed run finalized) so recovery has to
    // replay the torn journal and actually continue the session live.
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() / 2]).unwrap();
    std::fs::remove_file(dir.join("session.journal.ckpt")).unwrap();
    let (ok, resumed, err) = run(&["session", "movielens", "--model", "off", "--resume", jpath]);
    assert!(ok, "{err}");
    assert!(err.contains("resumed from"), "{err}");

    // Everything except the wall-clock response-time line must match the
    // uninterrupted run.
    let strip = |s: &str| -> String {
        s.lines().filter(|l| !l.starts_with("mean response time")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip(&resumed), strip(&reference));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_reports_path() {
    let (ok, _, err) = run(&["stats", "/nonexistent/schema.json"]);
    assert!(!ok);
    assert!(err.contains("/nonexistent/schema.json"), "{err}");
}

#[test]
fn bad_model_flag_is_rejected() {
    let (ok, _, err) = run(&["match", "a.json", "b.json", "--model", "bogus"]);
    assert!(!ok);
    assert!(err.contains("bogus"), "{err}");
}
