//! Process-level tests of the observability surface: `--metrics-out` /
//! `--trace-out` must write valid JSON with the expected stage keys, and
//! flag misuse must produce clear errors.
//!
//! `--model off` keeps the sessions fast (no BERT pre-training); the
//! instrumented session/matcher/meta spans fire either way.

use std::path::PathBuf;
use std::process::Command;

fn lsm_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("lsm")
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(lsm_bin()).args(args).output().expect("spawn lsm binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lsm_cli_obs");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn session_metrics_out_writes_valid_json_with_stage_keys() {
    let metrics = tmp("session_metrics.json");
    let (ok, out, err) = run(&[
        "session",
        "movielens",
        "--model",
        "off",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("matched"), "stdout: {out}");

    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("metrics JSON parses");

    assert_eq!(json["schema_version"].as_u64(), Some(2), "metrics snapshot schema version");

    let stages = json["stages"].as_object().expect("stages object");
    for key in [
        "session.iteration",
        "session.respond",
        "matcher.retrain",
        "matcher.predict",
        "meta.fit",
        "featurize.lexical",
        "featurize.embedding",
    ] {
        assert!(
            stages.contains_key(key),
            "missing stage {key}; have {:?}",
            stages.keys().collect::<Vec<_>>()
        );
    }
    let respond = &stages["session.respond"];
    assert!(respond["count"].as_u64().unwrap() > 0);
    assert!(respond["total_s"].as_f64().unwrap() > 0.0);
    assert!(respond["p95_s"].as_f64().unwrap() >= respond["p50_s"].as_f64().unwrap());
    assert!(respond["p99_s"].as_f64().unwrap() >= respond["p95_s"].as_f64().unwrap());

    // v2: every stage carries its log2-bucket histogram, consistent with
    // the aggregate count.
    let hist = &respond["hist"];
    assert_eq!(hist["count"].as_u64(), respond["count"].as_u64());
    assert!(hist["max_ns"].as_u64().unwrap() > 0);
    let buckets = hist["buckets"].as_array().expect("sparse bucket array");
    assert!(!buckets.is_empty());
    let bucket_total: u64 = buckets.iter().map(|b| b[1].as_u64().unwrap()).sum();
    assert_eq!(bucket_total, respond["count"].as_u64().unwrap());

    // v2: alloc section present (null unless built with alloc-track).
    assert!(json.as_object().unwrap().contains_key("alloc"), "alloc key missing");
    if cfg!(feature = "alloc-track") {
        assert!(json["alloc"]["total_bytes"].as_u64().unwrap() > 0);
    }

    let counters = json["counters"].as_object().expect("counters object");
    assert!(counters["attrs_featurized"].as_u64().unwrap() > 0);
    assert!(counters.contains_key("journal_fsyncs"), "v2 counter set missing journal_fsyncs");
    // The stage summary table goes to stderr, not stdout.
    assert!(err.contains("session.respond"), "stderr: {err}");
    assert!(!out.contains("total_ms"), "summary leaked to stdout: {out}");
}

#[test]
fn session_trace_out_writes_chrome_trace_events() {
    let trace = tmp("session_trace.json");
    let (ok, _, err) =
        run(&["session", "movielens", "--model=off", "--trace-out", trace.to_str().unwrap()]);
    assert!(ok, "stderr: {err}");
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let json: serde_json::Value = serde_json::from_str(&text).expect("trace JSON parses");
    let events = json["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    let first = &events[0];
    assert_eq!(first["ph"], "X");
    assert!(first["ts"].is_number() && first["dur"].is_number());
    assert!(first["pid"].is_number() && first["tid"].is_number());
    assert!(events.iter().any(|e| e["name"] == "session.respond"));
}

#[test]
fn metrics_agree_with_reported_mean_response_time() {
    // `lsm session` prints the mean response time it computed from
    // `SessionOutcome::response_times`; the metrics stage must be the same
    // measurement (mean within 1%, count == iterations).
    let metrics = tmp("agree_metrics.json");
    let (ok, out, err) =
        run(&["session", "rdb-star", "--model", "off", "--metrics-out", metrics.to_str().unwrap()]);
    assert!(ok, "stderr: {err}");
    let reported_ms: f64 = out
        .lines()
        .find_map(|l| l.split("mean response time: ").nth(1))
        .and_then(|s| s.split("ms").next())
        .expect("session output reports mean response time")
        .trim()
        .parse()
        .expect("parse mean response time");

    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let stage = &json["stages"]["session.respond"];
    let mean_ms = stage["mean_s"].as_f64().unwrap() * 1e3;
    // The printed value is rounded to 3 decimals; allow that plus 1%.
    let tol = (reported_ms.abs() * 0.01).max(0.002);
    assert!(
        (mean_ms - reported_ms).abs() <= tol,
        "metrics mean {mean_ms} ms vs reported {reported_ms} ms"
    );
}

#[test]
fn flag_without_value_is_a_clear_error() {
    let (ok, _, err) = run(&["session", "movielens", "--metrics-out"]);
    assert!(!ok);
    assert!(err.contains("--metrics-out requires a value"), "stderr: {err}");

    let (ok, _, err) = run(&["match", "a.json", "b.json", "--model"]);
    assert!(!ok);
    assert!(err.contains("--model requires a value"), "stderr: {err}");
}

#[test]
fn equals_flag_syntax_is_accepted() {
    let (ok, out, err) = run(&["session", "rdb-star", "--model=off"]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("matched"), "stdout: {out}");
}
