//! The three public schema pairs of Table II.
//!
//! * **RDB-Star** — a synthetic normalized/star pair in the style of the
//!   CUPID evaluation: 13 source entities (65 attributes, 12 FKs) against a
//!   5-entity star (34 attributes, 4 FKs). Matches are near-lexical, which
//!   is why every baseline is ≈1.0 on it.
//! * **IPFQR** — the CMS Inpatient Psychiatric Facility Quality Reporting
//!   pair: the *state* file (1 entity, 51 columns) against the *national*
//!   file (1 entity, 67 columns), no keys. Column names are measure codes;
//!   matches are lexical with extra distractor columns on the target side.
//! * **MovieLens-IMDB** — 6 entities / 19 attributes / 5 FKs against the
//!   IMDB dataset layout (7 entities, 39 attributes, 6 FKs). A mix of exact
//!   matches, dictionary synonyms (`releaseYear` / `startYear`), and the
//!   id-style matches (`movieId` / `tconst`) that require contextual
//!   knowledge — the regime where the paper's best baseline stops at 0.72
//!   top-3.

use crate::Dataset;
use lsm_schema::{DataType, GroundTruth, Schema, SchemaBuilder};

/// `(entity, [(attr, dtype)], pk_index)` rows used by the hand-written
/// schemata.
type EntitySpec<'a> = (&'a str, &'a [(&'a str, DataType)], Option<usize>);

fn build(name: &str, entities: &[EntitySpec<'_>], fks: &[(&str, &str, &str, &str)]) -> Schema {
    let mut b: SchemaBuilder = Schema::builder(name);
    for (ename, attrs, pk) in entities {
        b = b.entity(*ename);
        for (aname, dtype) in *attrs {
            b = b.attr(*aname, *dtype);
        }
        if let Some(pk_idx) = pk {
            b = b.pk(attrs[*pk_idx].0);
        }
    }
    for (fe, fa, te, ta) in fks {
        b = b.foreign_key(fe, fa, te, ta);
    }
    b.build().unwrap_or_else(|e| panic!("invalid hand-written schema {name}: {e}"))
}

fn truth_from_names(source: &Schema, target: &Schema, pairs: &[(&str, &str)]) -> GroundTruth {
    let mut truth = GroundTruth::new();
    for (s, t) in pairs {
        let sa =
            source.attr_by_qualified_name(s).unwrap_or_else(|| panic!("unknown source attr {s}"));
        let ta =
            target.attr_by_qualified_name(t).unwrap_or_else(|| panic!("unknown target attr {t}"));
        truth.insert(sa.id, ta.id);
    }
    truth
}

/// RDB-Star: normalized OLTP source vs star-schema target.
///
/// Designed so that every source attribute has a lexically obvious target
/// (short generic target names contained in the prefixed source names) —
/// the property that makes all baselines score ≈1.0 on it in the paper.
pub fn rdb_star() -> Dataset {
    use DataType::*;
    let source = build(
        "RDB-Star (source)",
        &[
            (
                "Customers",
                &[
                    ("CustomerId", Integer),
                    ("CompanyName", Text),
                    ("CustomerCity", Text),
                    ("CustomerCountry", Text),
                    ("CustomerPhone", Text),
                ],
                Some(0),
            ),
            (
                "Orders",
                &[
                    ("OrderId", Integer),
                    ("CustomerId", Integer),
                    ("OrderDate", Date),
                    ("Freight", Decimal),
                    ("OrderAmount", Decimal),
                ],
                Some(0),
            ),
            (
                "Sales",
                &[
                    ("SaleOrderDetailId", Integer),
                    ("OrderId", Integer),
                    ("ProductId", Integer),
                    ("Quantity", Integer),
                    ("Discount", Decimal),
                ],
                Some(0),
            ),
            (
                "Products",
                &[
                    ("ProductId", Integer),
                    ("ProductName", Text),
                    ("ProductPrice", Decimal),
                    ("ProductCategoryId", Integer),
                    ("ProductDiscontinued", Boolean),
                ],
                Some(0),
            ),
            (
                "Suppliers",
                &[
                    ("SupplierId", Integer),
                    ("SupplierName", Text),
                    ("SupplierContact", Text),
                    ("SupplierCity", Text),
                    ("SupplierCountry", Text),
                ],
                Some(0),
            ),
            (
                "Categories",
                &[
                    ("CategoryId", Integer),
                    ("CategoryName", Text),
                    ("CategoryCode", Text),
                    ("CategoryLevel", Integer),
                    ("ParentCategoryId", Integer),
                ],
                Some(0),
            ),
            (
                "Employees",
                &[
                    ("EmployeeId", Integer),
                    ("EmployeeName", Text),
                    ("EmployeeCity", Text),
                    ("HireDate", Date),
                    ("EmployeeRegionId", Integer),
                ],
                Some(0),
            ),
            (
                "Shippers",
                &[
                    ("FreightId", Integer),
                    ("FreightCost", Decimal),
                    ("FreightCompany", Text),
                    ("FreightRegionId", Integer),
                    ("FreightPhone", Text),
                ],
                Some(0),
            ),
            (
                "Regions",
                &[
                    ("RegionId", Integer),
                    ("RegionName", Text),
                    ("RegionCountry", Text),
                    ("RegionEmployee", Text),
                    ("RegionCity", Text),
                ],
                Some(0),
            ),
            (
                "Territories",
                &[
                    ("TerritoryId", Integer),
                    ("TerritoryName", Text),
                    ("TerritoryRegionId", Integer),
                    ("TerritoryCountry", Text),
                    ("TerritoryCity", Text),
                ],
                Some(0),
            ),
            (
                "Stores",
                &[
                    ("StoreId", Integer),
                    ("StoreName", Text),
                    ("StoreCity", Text),
                    ("StoreOpenDate", Date),
                    ("StoreRegionId", Integer),
                ],
                Some(0),
            ),
            (
                "Payments",
                &[
                    ("PaymentOrderId", Integer),
                    ("PaymentDate", Date),
                    ("PaymentAmount", Decimal),
                    ("PaymentFreight", Decimal),
                    ("PaymentDiscount", Decimal),
                ],
                Some(0),
            ),
            (
                "Promotions",
                &[
                    ("PromotionId", Integer),
                    ("PromotionName", Text),
                    ("PromotionDiscount", Decimal),
                    ("PromotionQuantity", Integer),
                    ("PromotionOpenDate", Date),
                ],
                Some(0),
            ),
        ],
        &[
            ("Orders", "CustomerId", "Customers", "CustomerId"),
            ("Sales", "OrderId", "Orders", "OrderId"),
            ("Sales", "ProductId", "Products", "ProductId"),
            ("Products", "ProductCategoryId", "Categories", "CategoryId"),
            ("Categories", "ParentCategoryId", "Categories", "CategoryId"),
            ("Employees", "EmployeeRegionId", "Regions", "RegionId"),
            ("Shippers", "FreightRegionId", "Regions", "RegionId"),
            ("Territories", "TerritoryRegionId", "Regions", "RegionId"),
            ("Stores", "StoreRegionId", "Regions", "RegionId"),
            ("Payments", "PaymentOrderId", "Orders", "OrderId"),
            ("Promotions", "PromotionId", "Promotions", "PromotionId"),
            ("Suppliers", "SupplierId", "Suppliers", "SupplierId"),
        ],
    );
    let target = build(
        "RDB-Star (target)",
        &[
            (
                "OrderDetails",
                &[
                    ("OrderDetailId", Integer),
                    ("OrderId", Integer),
                    ("CustomerKey", Integer),
                    ("ProductKey", Integer),
                    ("StoreKey", Integer),
                    ("DateKey", Integer),
                    ("Quantity", Integer),
                    ("Discount", Decimal),
                    ("Freight", Decimal),
                    ("Amount", Decimal),
                ],
                Some(0),
            ),
            (
                "DimCustomer",
                &[
                    ("CustomerKey", Integer),
                    ("CompanyName", Text),
                    ("City", Text),
                    ("Country", Text),
                    ("Phone", Text),
                    ("Contact", Text),
                ],
                Some(0),
            ),
            (
                "DimProduct",
                &[
                    ("ProductKey", Integer),
                    ("ProductName", Text),
                    ("Price", Decimal),
                    ("Category", Text),
                    ("Supplier", Text),
                    ("Discontinued", Boolean),
                    ("Promotion", Text),
                ],
                Some(0),
            ),
            (
                "DimStore",
                &[
                    ("StoreKey", Integer),
                    ("StoreName", Text),
                    ("StoreCity", Text),
                    ("Region", Text),
                    ("Territory", Text),
                    ("Employee", Text),
                ],
                Some(0),
            ),
            (
                "DimDate",
                &[
                    ("DateKey", Integer),
                    ("OrderDate", Date),
                    ("PaymentDate", Date),
                    ("HireDate", Date),
                    ("OpenDate", Date),
                ],
                Some(0),
            ),
        ],
        &[
            ("OrderDetails", "CustomerKey", "DimCustomer", "CustomerKey"),
            ("OrderDetails", "ProductKey", "DimProduct", "ProductKey"),
            ("OrderDetails", "StoreKey", "DimStore", "StoreKey"),
            ("OrderDetails", "DateKey", "DimDate", "DateKey"),
        ],
    );
    let truth = truth_from_names(
        &source,
        &target,
        &[
            ("Customers.CustomerId", "DimCustomer.CustomerKey"),
            ("Customers.CompanyName", "DimCustomer.CompanyName"),
            ("Customers.CustomerCity", "DimCustomer.City"),
            ("Customers.CustomerCountry", "DimCustomer.Country"),
            ("Customers.CustomerPhone", "DimCustomer.Phone"),
            ("Orders.OrderId", "OrderDetails.OrderId"),
            ("Orders.CustomerId", "OrderDetails.CustomerKey"),
            ("Orders.OrderDate", "DimDate.OrderDate"),
            ("Orders.Freight", "OrderDetails.Freight"),
            ("Orders.OrderAmount", "OrderDetails.Amount"),
            ("Sales.SaleOrderDetailId", "OrderDetails.OrderDetailId"),
            ("Sales.OrderId", "OrderDetails.OrderId"),
            ("Sales.ProductId", "OrderDetails.ProductKey"),
            ("Sales.Quantity", "OrderDetails.Quantity"),
            ("Sales.Discount", "OrderDetails.Discount"),
            ("Products.ProductId", "DimProduct.ProductKey"),
            ("Products.ProductName", "DimProduct.ProductName"),
            ("Products.ProductPrice", "DimProduct.Price"),
            ("Products.ProductCategoryId", "DimProduct.Category"),
            ("Products.ProductDiscontinued", "DimProduct.Discontinued"),
            ("Suppliers.SupplierId", "DimProduct.Supplier"),
            ("Suppliers.SupplierName", "DimProduct.Supplier"),
            ("Suppliers.SupplierContact", "DimCustomer.Contact"),
            ("Suppliers.SupplierCity", "DimCustomer.City"),
            ("Suppliers.SupplierCountry", "DimCustomer.Country"),
            ("Categories.CategoryId", "DimProduct.Category"),
            ("Categories.CategoryName", "DimProduct.Category"),
            ("Categories.CategoryCode", "DimProduct.Category"),
            ("Categories.CategoryLevel", "DimProduct.Category"),
            ("Categories.ParentCategoryId", "DimProduct.Category"),
            ("Employees.EmployeeId", "DimStore.Employee"),
            ("Employees.EmployeeName", "DimStore.Employee"),
            ("Employees.EmployeeCity", "DimStore.StoreCity"),
            ("Employees.HireDate", "DimDate.HireDate"),
            ("Employees.EmployeeRegionId", "DimStore.Region"),
            ("Shippers.FreightId", "OrderDetails.Freight"),
            ("Shippers.FreightCost", "OrderDetails.Freight"),
            ("Shippers.FreightCompany", "OrderDetails.Freight"),
            ("Shippers.FreightRegionId", "DimStore.Region"),
            ("Shippers.FreightPhone", "DimCustomer.Phone"),
            ("Regions.RegionId", "DimStore.Region"),
            ("Regions.RegionName", "DimStore.Region"),
            ("Regions.RegionCountry", "DimCustomer.Country"),
            ("Regions.RegionEmployee", "DimStore.Employee"),
            ("Regions.RegionCity", "DimCustomer.City"),
            ("Territories.TerritoryId", "DimStore.Territory"),
            ("Territories.TerritoryName", "DimStore.Territory"),
            ("Territories.TerritoryRegionId", "DimStore.Region"),
            ("Territories.TerritoryCountry", "DimCustomer.Country"),
            ("Territories.TerritoryCity", "DimCustomer.City"),
            ("Stores.StoreId", "DimStore.StoreKey"),
            ("Stores.StoreName", "DimStore.StoreName"),
            ("Stores.StoreCity", "DimStore.StoreCity"),
            ("Stores.StoreOpenDate", "DimDate.OpenDate"),
            ("Stores.StoreRegionId", "DimStore.Region"),
            ("Payments.PaymentOrderId", "OrderDetails.OrderId"),
            ("Payments.PaymentDate", "DimDate.PaymentDate"),
            ("Payments.PaymentAmount", "OrderDetails.Amount"),
            ("Payments.PaymentFreight", "OrderDetails.Freight"),
            ("Payments.PaymentDiscount", "OrderDetails.Discount"),
            ("Promotions.PromotionId", "DimProduct.Promotion"),
            ("Promotions.PromotionName", "DimProduct.Promotion"),
            ("Promotions.PromotionDiscount", "OrderDetails.Discount"),
            ("Promotions.PromotionQuantity", "OrderDetails.Quantity"),
            ("Promotions.PromotionOpenDate", "DimDate.OpenDate"),
        ],
    );
    let d = Dataset { name: "RDB-Star".to_string(), source, target, ground_truth: truth };
    d.validate().expect("RDB-Star must be consistent");
    d
}

/// The IPFQR quality-measure codes shared by state and national files.
const IPFQR_MEASURES: &[&str] = &[
    "hbips_2", "hbips_3", "hbips_5", "sub_1", "sub_2", "sub_3", "tob_1", "tob_2", "tob_3", "imm_2",
    "fuh_7", "fuh_30", "smd", "tr_1", "med_cont",
];

/// Extra measures present only in the national file (distractors).
const IPFQR_NATIONAL_ONLY: &[&str] = &["hbips_4", "peoc", "screening", "cont_care", "alc_use"];

/// IPFQR: the state file (source) vs the national file (target).
pub fn ipfqr() -> Dataset {
    use DataType::*;
    let metric_suffixes = ["rate", "numerator", "denominator"];

    let mut sb = Schema::builder("IPFQR (source)").entity("StateData");
    // 15 measures × 3 metrics = 45 columns + 6 context columns = 51.
    for m in IPFQR_MEASURES {
        for s in &metric_suffixes {
            sb = sb.attr(format!("state_{m}_{s}"), if *s == "rate" { Decimal } else { Integer });
        }
    }
    for (name, ty) in [
        ("state", Text),
        ("reporting_quarter", Text),
        ("reporting_year", Integer),
        ("footnote", Text),
        ("facility_count", Integer),
        ("start_date", Date),
    ] {
        sb = sb.attr(name, ty);
    }
    let source = sb.build().expect("IPFQR source must be valid");

    let mut tb = Schema::builder("IPFQR (target)").entity("NationalData");
    // Same 45 measure columns (national_ prefix) + distractor measures + context.
    for m in IPFQR_MEASURES {
        for s in &metric_suffixes {
            tb = tb.attr(format!("national_{m}_{s}"), if *s == "rate" { Decimal } else { Integer });
        }
    }
    for m in IPFQR_NATIONAL_ONLY {
        tb = tb.attr(format!("national_{m}_rate"), Decimal);
        tb = tb.attr(format!("national_{m}_denominator"), Integer);
    }
    for (name, ty) in [
        ("nation", Text),
        ("measure_quarter", Text),
        ("measure_year", Integer),
        ("footnote_text", Text),
        ("provider_count", Integer),
        ("start_date", Date),
    ] {
        tb = tb.attr(name, ty);
    }
    let target = tb.build().expect("IPFQR target must be valid");
    // 45 + 10 + 6 = 61 < 67: pad with summary distractors.
    let target = {
        let mut tb = Schema::builder("IPFQR (target)").entity("NationalData");
        for a in &target.attributes {
            tb = tb.attr(a.name.clone(), a.dtype);
        }
        for name in [
            "overall_rate",
            "overall_numerator",
            "overall_denominator",
            "sample_size",
            "response_rate",
            "measure_count",
        ] {
            tb = tb.attr(name, Decimal);
        }
        tb.build().expect("IPFQR padded target must be valid")
    };
    assert_eq!(source.attr_count(), 51);
    assert_eq!(target.attr_count(), 67);

    let mut pairs: Vec<(String, String)> = Vec::new();
    for m in IPFQR_MEASURES {
        for s in &metric_suffixes {
            pairs.push((
                format!("StateData.state_{m}_{s}"),
                format!("NationalData.national_{m}_{s}"),
            ));
        }
    }
    pairs.push(("StateData.state".into(), "NationalData.nation".into()));
    pairs.push(("StateData.reporting_quarter".into(), "NationalData.measure_quarter".into()));
    pairs.push(("StateData.reporting_year".into(), "NationalData.measure_year".into()));
    pairs.push(("StateData.footnote".into(), "NationalData.footnote_text".into()));
    pairs.push(("StateData.facility_count".into(), "NationalData.provider_count".into()));
    pairs.push(("StateData.start_date".into(), "NationalData.start_date".into()));
    let pair_refs: Vec<(&str, &str)> =
        pairs.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
    let truth = truth_from_names(&source, &target, &pair_refs);

    let d = Dataset { name: "IPFQR".to_string(), source, target, ground_truth: truth };
    d.validate().expect("IPFQR must be consistent");
    d
}

/// MovieLens-IMDB: the MovieLens-style source vs the IMDB dataset layout.
pub fn movielens_imdb() -> Dataset {
    use DataType::*;
    let source = build(
        "MovieLens (source)",
        &[
            (
                "movies",
                &[
                    ("movieId", Text),
                    ("title", Text),
                    ("releaseYear", Integer),
                    ("runtime", Integer),
                    ("genres", Text),
                ],
                Some(0),
            ),
            ("ratings", &[("movieId", Text), ("rating", Float), ("numRatings", Integer)], Some(0)),
            ("people", &[("personId", Text), ("name", Text), ("birthYear", Integer)], Some(0)),
            (
                "credits",
                &[("movieId", Text), ("personId", Text), ("category", Text), ("billing", Integer)],
                Some(0),
            ),
            ("episodes", &[("episodeId", Text), ("seasonNum", Integer)], Some(0)),
            ("crew", &[("movieId", Text), ("directors", Text)], Some(0)),
        ],
        &[
            ("ratings", "movieId", "movies", "movieId"),
            ("credits", "movieId", "movies", "movieId"),
            ("credits", "personId", "people", "personId"),
            ("crew", "movieId", "movies", "movieId"),
            ("episodes", "episodeId", "movies", "movieId"),
        ],
    );
    let target = build(
        "IMDB (target)",
        &[
            (
                "titleBasics",
                &[
                    ("tconst", Text),
                    ("titleType", Text),
                    ("primaryTitle", Text),
                    ("originalTitle", Text),
                    ("isAdult", Boolean),
                    ("startYear", Integer),
                    ("endYear", Integer),
                    ("runtimeMinutes", Integer),
                    ("genres", Text),
                ],
                Some(0),
            ),
            (
                "titleRatings",
                &[("tconst", Text), ("averageRating", Float), ("numVotes", Integer)],
                Some(0),
            ),
            (
                "nameBasics",
                &[
                    ("nconst", Text),
                    ("primaryName", Text),
                    ("birthYear", Integer),
                    ("deathYear", Integer),
                    ("primaryProfession", Text),
                    ("knownForTitles", Text),
                ],
                Some(0),
            ),
            (
                "titlePrincipals",
                &[
                    ("tconst", Text),
                    ("ordering", Integer),
                    ("nconst", Text),
                    ("category", Text),
                    ("job", Text),
                    ("characters", Text),
                ],
                Some(0),
            ),
            ("titleCrew", &[("tconst", Text), ("directors", Text), ("writers", Text)], Some(0)),
            (
                "titleEpisode",
                &[
                    ("tconst", Text),
                    ("parentTconst", Text),
                    ("seasonNumber", Integer),
                    ("episodeNumber", Integer),
                ],
                Some(0),
            ),
            (
                "titleAkas",
                &[
                    ("titleId", Text),
                    ("akaOrdering", Integer),
                    ("akaTitle", Text),
                    ("region", Text),
                    ("language", Text),
                    ("akaTypes", Text),
                    ("akaAttributes", Text),
                    ("isOriginalTitle", Boolean),
                ],
                Some(0),
            ),
        ],
        &[
            ("titleRatings", "tconst", "titleBasics", "tconst"),
            ("titlePrincipals", "tconst", "titleBasics", "tconst"),
            ("titlePrincipals", "nconst", "nameBasics", "nconst"),
            ("titleCrew", "tconst", "titleBasics", "tconst"),
            ("titleEpisode", "tconst", "titleBasics", "tconst"),
            ("titleAkas", "titleId", "titleBasics", "tconst"),
        ],
    );
    let truth = truth_from_names(
        &source,
        &target,
        &[
            ("movies.movieId", "titleBasics.tconst"),
            ("movies.title", "titleBasics.primaryTitle"),
            ("movies.releaseYear", "titleBasics.startYear"),
            ("movies.runtime", "titleBasics.runtimeMinutes"),
            ("movies.genres", "titleBasics.genres"),
            ("ratings.movieId", "titleRatings.tconst"),
            ("ratings.rating", "titleRatings.averageRating"),
            ("ratings.numRatings", "titleRatings.numVotes"),
            ("people.personId", "nameBasics.nconst"),
            ("people.name", "nameBasics.primaryName"),
            ("people.birthYear", "nameBasics.birthYear"),
            ("credits.movieId", "titlePrincipals.tconst"),
            ("credits.personId", "titlePrincipals.nconst"),
            ("credits.category", "titlePrincipals.category"),
            ("credits.billing", "titlePrincipals.ordering"),
            ("episodes.episodeId", "titleEpisode.tconst"),
            ("episodes.seasonNum", "titleEpisode.seasonNumber"),
            ("crew.movieId", "titleCrew.tconst"),
            ("crew.directors", "titleCrew.directors"),
        ],
    );
    let d = Dataset { name: "MovieLens-IMDB".to_string(), source, target, ground_truth: truth };
    d.validate().expect("MovieLens-IMDB must be consistent");
    d
}

/// All three public datasets in paper order. `seed` is accepted for
/// interface symmetry with the customer generators; the public schemata are
/// fixed.
pub fn all_public(_seed: u64) -> Vec<Dataset> {
    vec![rdb_star(), ipfqr(), movielens_imdb()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_schema::SchemaStats;
    use lsm_text::lexical_similarity;

    #[test]
    fn rdb_star_matches_table_two() {
        let d = rdb_star();
        let s = SchemaStats::of(&d.source);
        let t = SchemaStats::of(&d.target);
        assert_eq!((s.entities, s.attributes, s.pk_fk), (13, 65, 12));
        assert_eq!((t.entities, t.attributes, t.pk_fk), (5, 34, 4));
        assert_eq!(d.ground_truth.len(), 65);
    }

    #[test]
    fn ipfqr_matches_table_two() {
        let d = ipfqr();
        let s = SchemaStats::of(&d.source);
        let t = SchemaStats::of(&d.target);
        assert_eq!((s.entities, s.attributes, s.pk_fk), (1, 51, 0));
        assert_eq!((t.entities, t.attributes, t.pk_fk), (1, 67, 0));
        assert_eq!(d.ground_truth.len(), 51);
    }

    #[test]
    fn movielens_matches_table_two() {
        let d = movielens_imdb();
        let s = SchemaStats::of(&d.source);
        let t = SchemaStats::of(&d.target);
        assert_eq!((s.entities, s.attributes, s.pk_fk), (6, 19, 5));
        assert_eq!((t.entities, t.attributes, t.pk_fk), (7, 39, 6));
        assert_eq!(d.ground_truth.len(), 19);
    }

    /// RDB-Star and IPFQR are the easy regime: matches are lexically close.
    #[test]
    fn easy_publics_are_mostly_lexical() {
        for d in [rdb_star(), ipfqr()] {
            let close = d
                .ground_truth
                .pairs()
                .filter(|&(s, t)| {
                    lexical_similarity(&d.source.attr(s).name, &d.target.attr(t).name) >= 0.6
                })
                .count();
            let frac = close as f64 / d.ground_truth.len() as f64;
            assert!(frac > 0.85, "{}: lexical fraction {frac:.2}", d.name);
        }
    }

    /// MovieLens-IMDB sits between: a meaningful minority of hard matches.
    #[test]
    fn movielens_has_hard_minority() {
        let d = movielens_imdb();
        let hard = d
            .ground_truth
            .pairs()
            .filter(|&(s, t)| {
                lexical_similarity(&d.source.attr(s).name, &d.target.attr(t).name) < 0.6
            })
            .count();
        let frac = hard as f64 / d.ground_truth.len() as f64;
        assert!((0.15..=0.55).contains(&frac), "hard fraction {frac:.2}");
    }

    #[test]
    fn all_public_returns_three_valid_datasets() {
        let all = all_public(0);
        assert_eq!(all.len(), 3);
        for d in &all {
            d.validate().unwrap();
        }
    }
}
