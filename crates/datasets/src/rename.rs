//! Rename channels: how a customer's attribute name is derived from the ISS
//! concept it denotes.
//!
//! Section III of the paper observes that "more than 30 % of the matches in
//! the customer schemata" pair attributes whose names are semantically
//! equivalent but lexically different, while the public datasets contain
//! virtually none of those. Each channel below produces a different
//! difficulty class; a [`RenameMix`] assigns sampling weights per dataset.

use lsm_lexicon::Concept;
use rand::Rng;

/// Surface-naming style of a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingStyle {
    /// `price_change_percentage`
    Snake,
    /// `priceChangePercentage`
    Camel,
    /// `PriceChangePercentage`
    Pascal,
}

impl NamingStyle {
    /// Renders lowercase word tokens in this style.
    pub fn render(self, tokens: &[String]) -> String {
        match self {
            NamingStyle::Snake => tokens.join("_"),
            NamingStyle::Camel => {
                let mut out = String::new();
                for (i, t) in tokens.iter().enumerate() {
                    if i == 0 {
                        out.push_str(t);
                    } else {
                        out.push_str(&capitalize(t));
                    }
                }
                out
            }
            NamingStyle::Pascal => tokens.iter().map(|t| capitalize(t)).collect(),
        }
    }
}

fn capitalize(t: &str) -> String {
    let mut chars = t.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// How a customer surface form is derived from a concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenameChannel {
    /// Same tokens as the ISS (possibly different casing style). Trivial
    /// for every matcher.
    Exact,
    /// Canonical tokens with qualifiers dropped and/or tokens truncated —
    /// lexically close. Easy for string matchers.
    Morph,
    /// A whole-concept abbreviation (`qty`, `ean`). The LCS-based lexical
    /// featurizer handles these; dictionaries do not.
    Abbrev,
    /// A dictionary-grade synonym. Embedding/synset matchers handle these.
    PublicSynonym,
    /// Customer jargon — only contextual pre-training (the BERT surrogate)
    /// connects these. This is the paper's ">30 % of matches" class.
    Private,
}

impl RenameChannel {
    /// Whether the channel yields names that purely lexical matchers are
    /// expected to miss.
    pub fn is_hard(self) -> bool {
        matches!(self, RenameChannel::Private)
    }
}

/// Sampling weights over the channels.
#[derive(Debug, Clone, Copy)]
pub struct RenameMix {
    /// Weight of [`RenameChannel::Exact`].
    pub exact: f64,
    /// Weight of [`RenameChannel::Morph`].
    pub morph: f64,
    /// Weight of [`RenameChannel::Abbrev`].
    pub abbrev: f64,
    /// Weight of [`RenameChannel::PublicSynonym`].
    pub public_syn: f64,
    /// Weight of [`RenameChannel::Private`].
    pub private: f64,
}

impl RenameMix {
    /// The customer-schema regime: >30 % hard renames, the rest spread over
    /// the easier channels.
    pub fn customer() -> Self {
        RenameMix { exact: 0.03, morph: 0.14, abbrev: 0.15, public_syn: 0.23, private: 0.45 }
    }

    /// The easy public-dataset regime (RDB-Star, IPFQR): near-identical
    /// names.
    pub fn lexical() -> Self {
        RenameMix { exact: 0.70, morph: 0.30, abbrev: 0.0, public_syn: 0.0, private: 0.0 }
    }

    /// The MovieLens-IMDB regime: mostly lexical with some dictionary
    /// synonyms and a sliver of hard renames.
    pub fn mixed_public() -> Self {
        RenameMix { exact: 0.35, morph: 0.25, abbrev: 0.05, public_syn: 0.25, private: 0.10 }
    }

    /// Samples a channel according to the weights.
    pub fn sample(&self, rng: &mut impl Rng) -> RenameChannel {
        let total = self.exact + self.morph + self.abbrev + self.public_syn + self.private;
        let mut roll = rng.gen_range(0.0..total);
        for (w, ch) in [
            (self.exact, RenameChannel::Exact),
            (self.morph, RenameChannel::Morph),
            (self.abbrev, RenameChannel::Abbrev),
            (self.public_syn, RenameChannel::PublicSynonym),
            (self.private, RenameChannel::Private),
        ] {
            if roll < w {
                return ch;
            }
            roll -= w;
        }
        RenameChannel::Exact
    }
}

/// Applies a channel to a concept, producing the customer-side word tokens.
/// Falls back to easier channels when the concept lacks the requested
/// surface form (e.g. no abbreviation), and reports the channel actually
/// used.
pub fn apply_channel(
    concept: &Concept,
    qualifiers: &[String],
    requested: RenameChannel,
    rng: &mut impl Rng,
) -> (Vec<String>, RenameChannel) {
    use RenameChannel::*;
    let pick = |forms: &[Vec<String>], rng: &mut dyn rand::RngCore| {
        forms[rng.gen_range(0..forms.len())].clone()
    };
    match requested {
        Private if !concept.private_synonyms.is_empty() => {
            // Private jargon replaces the whole name; qualifiers are folded
            // away (customers rarely mirror ISS qualifier structure).
            (pick(&concept.private_synonyms, rng), Private)
        }
        Private => apply_channel(concept, qualifiers, PublicSynonym, rng),
        PublicSynonym if !concept.public_synonyms.is_empty() => {
            let mut tokens = Vec::new();
            if !qualifiers.is_empty() && rng.gen_bool(0.5) {
                tokens.extend(qualifiers.iter().cloned());
            }
            tokens.extend(pick(&concept.public_synonyms, rng));
            (tokens, PublicSynonym)
        }
        PublicSynonym => apply_channel(concept, qualifiers, Morph, rng),
        Abbrev if !concept.abbreviations.is_empty() => {
            let abbr = concept.abbreviations[rng.gen_range(0..concept.abbreviations.len())].clone();
            let mut tokens = Vec::new();
            if !qualifiers.is_empty() && rng.gen_bool(0.3) {
                tokens.extend(qualifiers.iter().cloned());
            }
            tokens.push(abbr);
            (tokens, Abbrev)
        }
        Abbrev => apply_channel(concept, qualifiers, Morph, rng),
        Morph => {
            // Keep canonical tokens; drop qualifiers with probability, and
            // occasionally truncate a token to its prefix (col-name habit).
            let mut tokens: Vec<String> = Vec::new();
            if !qualifiers.is_empty() && rng.gen_bool(0.4) {
                tokens.extend(qualifiers.iter().cloned());
            }
            for t in &concept.canonical {
                if t.len() > 5 && rng.gen_bool(0.25) {
                    tokens.push(t[..4].to_string());
                } else {
                    tokens.push(t.clone());
                }
            }
            (tokens, Morph)
        }
        Exact => {
            let mut tokens: Vec<String> = qualifiers.to_vec();
            tokens.extend(concept.canonical.iter().cloned());
            (tokens, Exact)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_lexicon::{ConceptBuilder, Domain, Lexicon};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn concept_with_everything() -> Lexicon {
        Lexicon::assemble(vec![ConceptBuilder::attribute(
            Domain::Retail,
            "price change percentage",
        )
        .syn("markdown rate")
        .private("discount")
        .abbr("pcp")
        .desc("reduction")])
    }

    #[test]
    fn naming_styles_render() {
        let toks = vec!["price".to_string(), "change".to_string()];
        assert_eq!(NamingStyle::Snake.render(&toks), "price_change");
        assert_eq!(NamingStyle::Camel.render(&toks), "priceChange");
        assert_eq!(NamingStyle::Pascal.render(&toks), "PriceChange");
        assert_eq!(NamingStyle::Snake.render(&[]), "");
    }

    #[test]
    fn exact_channel_keeps_tokens() {
        let lex = concept_with_everything();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let q = vec!["total".to_string()];
        let (tokens, used) = apply_channel(&lex.concepts()[0], &q, RenameChannel::Exact, &mut rng);
        assert_eq!(used, RenameChannel::Exact);
        assert_eq!(tokens, vec!["total", "price", "change", "percentage"]);
    }

    #[test]
    fn private_channel_uses_jargon() {
        let lex = concept_with_everything();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (tokens, used) =
            apply_channel(&lex.concepts()[0], &[], RenameChannel::Private, &mut rng);
        assert_eq!(used, RenameChannel::Private);
        assert_eq!(tokens, vec!["discount"]);
    }

    #[test]
    fn abbrev_channel_uses_abbreviation() {
        let lex = concept_with_everything();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (tokens, used) =
            apply_channel(&lex.concepts()[0], &[], RenameChannel::Abbrev, &mut rng);
        assert_eq!(used, RenameChannel::Abbrev);
        assert!(tokens.contains(&"pcp".to_string()));
    }

    #[test]
    fn channels_fall_back_when_form_missing() {
        let lex =
            Lexicon::assemble(vec![
                ConceptBuilder::attribute(Domain::Retail, "plain concept").desc("nothing else")
            ]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (_, used) = apply_channel(&lex.concepts()[0], &[], RenameChannel::Private, &mut rng);
        assert_eq!(used, RenameChannel::Morph, "Private → PublicSynonym → Morph fallback");
        let (_, used) = apply_channel(&lex.concepts()[0], &[], RenameChannel::Abbrev, &mut rng);
        assert_eq!(used, RenameChannel::Morph);
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = RenameMix { exact: 1.0, morph: 0.0, abbrev: 0.0, public_syn: 0.0, private: 0.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(mix.sample(&mut rng), RenameChannel::Exact);
        }
        // Customer mix produces a healthy share of hard channels.
        let mix = RenameMix::customer();
        let hard = (0..2000).filter(|_| mix.sample(&mut rng).is_hard()).count();
        assert!((500..1100).contains(&hard), "hard draws: {hard}");
    }
}
