//! The synthetic retail industry-specific schema (ISS).
//!
//! The paper's retail ISS "consists of 92 entities, 1218 attributes, and 184
//! PK/FK relationships" (Section III). We generate a schema of exactly that
//! size from the curated retail lexicon: 92 entities (36 base concepts plus
//! suffixed variants such as *ProductHistory*), a spanning tree of FK edges
//! plus extras up to 184, one primary key per entity, and domain attributes
//! sampled from the retail+generic concept pool with optional qualifier
//! prefixes (`total_`, `net_`, `estimated_`, ...). Every attribute records
//! its *provenance* — which concept (and qualifiers) it denotes — which is
//! what lets the customer generators derive renamed copies with known ground
//! truth.

use lsm_lexicon::{ConceptDtype, ConceptId, ConceptKind, Domain, Lexicon};
use lsm_schema::{AttrId, DataType, Schema};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Qualifier tokens prepended to domain attributes to create the multi-word
/// ISS names the paper describes (shared with the language-model
/// pre-training via the lexicon).
pub use lsm_lexicon::QUALIFIERS;

/// Suffix tokens used to expand the base entity concepts into 92 entities.
const ENTITY_SUFFIXES: &[&str] =
    &["type", "history", "detail", "status", "group", "summary", "schedule", "log"];

/// Where an ISS attribute comes from — the provenance that drives customer
/// derivation and ground truth.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrRole {
    /// The entity's primary key.
    PrimaryKey {
        /// Base concept of the owning entity.
        entity_concept: ConceptId,
    },
    /// A foreign key referencing another entity's primary key.
    ForeignKey {
        /// The referenced primary-key attribute.
        target_pk: AttrId,
        /// Base concept of the referenced entity.
        parent_concept: ConceptId,
    },
    /// A domain attribute denoting a lexicon concept.
    Domain {
        /// The concept this attribute denotes.
        concept: ConceptId,
        /// Qualifier tokens prefixed to the canonical name.
        qualifiers: Vec<String>,
    },
}

/// Per-entity provenance.
#[derive(Debug, Clone)]
pub struct EntityOrigin {
    /// Base entity concept.
    pub concept: ConceptId,
    /// Optional suffix token (`"history"`, ...).
    pub suffix: Option<String>,
}

/// A generated ISS: the schema plus full provenance.
#[derive(Debug, Clone)]
pub struct GeneratedIss {
    /// The target schema.
    pub schema: Schema,
    /// Role of every attribute, indexed by [`AttrId`].
    pub roles: Vec<AttrRole>,
    /// Origin of every entity, indexed by entity id.
    pub entity_origins: Vec<EntityOrigin>,
}

/// Size knobs of the generator.
#[derive(Debug, Clone, Copy)]
pub struct IssConfig {
    /// Number of entities.
    pub entities: usize,
    /// Total number of attributes.
    pub attributes: usize,
    /// Number of PK/FK relationships.
    pub foreign_keys: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl IssConfig {
    /// The paper's retail ISS dimensions.
    pub fn paper() -> Self {
        IssConfig { entities: 92, attributes: 1218, foreign_keys: 184, seed: 0x155 }
    }

    /// A small ISS for fast tests.
    pub fn small() -> Self {
        IssConfig { entities: 12, attributes: 90, foreign_keys: 14, seed: 0x155 }
    }
}

/// Maps a lexicon dtype onto the schema dtype.
pub fn to_data_type(d: ConceptDtype) -> DataType {
    match d {
        ConceptDtype::Integer => DataType::Integer,
        ConceptDtype::Float => DataType::Float,
        ConceptDtype::Decimal => DataType::Decimal,
        ConceptDtype::Text => DataType::Text,
        ConceptDtype::Boolean => DataType::Boolean,
        ConceptDtype::Date => DataType::Date,
        ConceptDtype::Timestamp => DataType::Timestamp,
    }
}

struct EntityPlan {
    tokens: Vec<String>,
    concept: ConceptId,
    suffix: Option<String>,
}

fn pascal(tokens: &[String]) -> String {
    tokens
        .iter()
        .map(|t| {
            let mut cs = t.chars();
            match cs.next() {
                Some(c) => c.to_uppercase().collect::<String>() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// Generates a retail ISS of the configured size (the paper's vertical).
pub fn generate_retail_iss(lexicon: &Lexicon, config: IssConfig) -> GeneratedIss {
    generate_iss(lexicon, Domain::Retail, config)
}

/// Generates an industry-specific schema for any vertical in the lexicon.
/// The paper pre-trains the matching classifier "once per ISS, in other
/// words, per vertical" — this generator provides the other verticals.
///
/// # Panics
///
/// Panics if the configuration is infeasible (fewer attributes than
/// `entities + foreign_keys`, more entities than base×suffix combinations,
/// or a lexicon without entity concepts for the vertical).
pub fn generate_iss(lexicon: &Lexicon, domain: Domain, config: IssConfig) -> GeneratedIss {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let bases: Vec<&lsm_lexicon::Concept> =
        lexicon.usable_in(domain, ConceptKind::Entity).into_iter().collect();
    assert!(!bases.is_empty(), "lexicon has no {domain:?} entity concepts");
    let attr_pool: Vec<&lsm_lexicon::Concept> =
        lexicon.usable_in(domain, ConceptKind::Attribute).into_iter().collect();
    assert!(
        config.attributes >= config.entities * 2 + config.foreign_keys,
        "attribute budget too small for pk+fk structure"
    );

    // ---- plan entities: bases first, then (base, suffix) variants ----
    let mut plans: Vec<EntityPlan> = Vec::with_capacity(config.entities);
    for b in &bases {
        if plans.len() == config.entities {
            break;
        }
        plans.push(EntityPlan { tokens: b.canonical.clone(), concept: b.id, suffix: None });
    }
    'outer: for suffix in ENTITY_SUFFIXES {
        for b in &bases {
            if plans.len() == config.entities {
                break 'outer;
            }
            let mut tokens = b.canonical.clone();
            tokens.push(suffix.to_string());
            plans.push(EntityPlan { tokens, concept: b.id, suffix: Some(suffix.to_string()) });
        }
    }
    assert_eq!(
        plans.len(),
        config.entities,
        "not enough base×suffix combinations for {} entities",
        config.entities
    );

    // ---- plan FK edges: spanning tree + random extras ----
    let n = plans.len();
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(config.foreign_keys); // (child, parent)
    for child in 1..n {
        if edges.len() == config.foreign_keys {
            break;
        }
        let parent = rng.gen_range(0..child);
        edges.push((child, parent));
    }
    let mut guard = 0;
    while edges.len() < config.foreign_keys {
        let child = rng.gen_range(0..n);
        let parent = rng.gen_range(0..n);
        guard += 1;
        assert!(guard < 100_000, "could not place all FK edges");
        if child == parent || edges.contains(&(child, parent)) {
            continue;
        }
        edges.push((child, parent));
    }

    // ---- distribute the domain-attribute budget ----
    let domain_budget = config.attributes - n - edges.len();
    let mut quotas = vec![domain_budget / n; n];
    for q in quotas.iter_mut().take(domain_budget % n) {
        *q += 1;
    }

    // ---- build the schema ----
    let schema_name = match domain {
        Domain::Retail => "retail-iss".to_string(),
        other => format!("{other:?}-iss").to_lowercase(),
    };
    let mut builder = Schema::builder(schema_name);
    let mut roles: Vec<AttrRole> = Vec::with_capacity(config.attributes);
    let mut entity_origins: Vec<EntityOrigin> = Vec::with_capacity(n);
    // (entity index → pk attr name) for FK wiring.
    let mut pk_names: Vec<String> = Vec::with_capacity(n);
    let mut entity_names: Vec<String> = Vec::with_capacity(n);

    for (ei, plan) in plans.iter().enumerate() {
        let entity_name = pascal(&plan.tokens);
        entity_names.push(entity_name.clone());
        entity_origins.push(EntityOrigin { concept: plan.concept, suffix: plan.suffix.clone() });
        builder = builder.entity(entity_name);

        let mut used_names: Vec<String> = Vec::new();
        // Primary key.
        let pk_name = format!("{}_id", plan.tokens.join("_"));
        builder = builder.attr_desc(
            pk_name.clone(),
            DataType::Integer,
            format!("primary key of the {} entity", plan.tokens.join(" ")),
        );
        builder = builder.pk(&pk_name);
        roles.push(AttrRole::PrimaryKey { entity_concept: plan.concept });
        used_names.push(pk_name.clone());
        pk_names.push(pk_name);

        // Foreign keys out of this entity (wired after all entities exist —
        // here we only create the attribute slots; `AttrRole::ForeignKey`
        // target ids are patched below once ids are final).
        for &(child, parent) in &edges {
            if child != ei {
                continue;
            }
            let fk_name = format!("{}_id", plans[parent].tokens.join("_"));
            // A child may reference a parent whose pk-name collides with its
            // own pk (distinct concepts guaranteed distinct token streams),
            // but two edges to the same parent are excluded above.
            builder = builder.attr_desc(
                fk_name.clone(),
                DataType::Integer,
                format!("reference to the {} entity", plans[parent].tokens.join(" ")),
            );
            roles.push(AttrRole::ForeignKey {
                target_pk: AttrId(0), // patched below
                parent_concept: plans[parent].concept,
            });
            used_names.push(fk_name);
        }

        // Domain attributes.
        let mut placed = 0;
        let mut attempts = 0;
        while placed < quotas[ei] {
            attempts += 1;
            assert!(attempts < 10_000, "cannot fill attribute quota for entity {ei}");
            let concept = attr_pool.choose(&mut rng).expect("non-empty pool");
            let qualifiers: Vec<String> = if rng.gen_bool(0.5) {
                vec![QUALIFIERS[rng.gen_range(0..QUALIFIERS.len())].to_string()]
            } else {
                Vec::new()
            };
            let mut tokens = qualifiers.clone();
            tokens.extend(concept.canonical.iter().cloned());
            let name = tokens.join("_");
            if used_names.contains(&name) {
                continue;
            }
            builder = builder.attr_desc(
                name.clone(),
                to_data_type(concept.dtype),
                concept.description.clone(),
            );
            roles.push(AttrRole::Domain { concept: concept.id, qualifiers });
            used_names.push(name);
            placed += 1;
        }
    }

    // Register the FK relationships.
    for &(child, parent) in &edges {
        let fk_attr_name = format!("{}_id", plans[parent].tokens.join("_"));
        builder = builder.foreign_key(
            &entity_names[child],
            &fk_attr_name,
            &entity_names[parent],
            &pk_names[parent],
        );
    }

    let schema = builder.build().expect("generated ISS must be valid");

    // Patch FK target ids now that the schema is built.
    let mut patched_roles = roles;
    for (i, role) in patched_roles.iter_mut().enumerate() {
        if let AttrRole::ForeignKey { target_pk, parent_concept } = role {
            let attr = &schema.attributes[i];
            // Find the FK edge matching this attribute.
            let fk = schema
                .foreign_keys
                .iter()
                .find(|fk| fk.from == attr.id)
                .unwrap_or_else(|| panic!("fk attribute {} without edge", attr.id));
            *target_pk = fk.to;
            let _ = parent_concept;
        }
    }

    assert_eq!(schema.entity_count(), config.entities);
    assert_eq!(schema.attr_count(), config.attributes);
    assert_eq!(schema.foreign_keys.len(), config.foreign_keys);
    GeneratedIss { schema, roles: patched_roles, entity_origins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_lexicon::full_lexicon;

    #[test]
    fn paper_sized_iss_generates() {
        let lex = full_lexicon();
        let iss = generate_retail_iss(&lex, IssConfig::paper());
        assert_eq!(iss.schema.entity_count(), 92);
        assert_eq!(iss.schema.attr_count(), 1218);
        assert_eq!(iss.schema.foreign_keys.len(), 184);
        iss.schema.validate().unwrap();
        assert_eq!(iss.roles.len(), 1218);
        assert_eq!(iss.entity_origins.len(), 92);
    }

    #[test]
    fn small_iss_generates() {
        let lex = full_lexicon();
        let iss = generate_retail_iss(&lex, IssConfig::small());
        assert_eq!(iss.schema.entity_count(), 12);
        assert_eq!(iss.schema.attr_count(), 90);
        iss.schema.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let lex = full_lexicon();
        let a = generate_retail_iss(&lex, IssConfig::small());
        let b = generate_retail_iss(&lex, IssConfig::small());
        assert_eq!(a.schema, b.schema);
    }

    #[test]
    fn fk_roles_point_at_parent_pks() {
        let lex = full_lexicon();
        let iss = generate_retail_iss(&lex, IssConfig::small());
        for (i, role) in iss.roles.iter().enumerate() {
            if let AttrRole::ForeignKey { target_pk, .. } = role {
                // Target must be a primary key role.
                assert!(matches!(iss.roles[target_pk.index()], AttrRole::PrimaryKey { .. }));
                // And the edge must exist in the schema.
                let attr_id = iss.schema.attributes[i].id;
                assert!(iss
                    .schema
                    .foreign_keys
                    .iter()
                    .any(|fk| fk.from == attr_id && fk.to == *target_pk));
            }
        }
    }

    #[test]
    fn every_attribute_has_description() {
        let lex = full_lexicon();
        let iss = generate_retail_iss(&lex, IssConfig::small());
        assert!(iss.schema.has_descriptions());
        for a in &iss.schema.attributes {
            assert!(a.desc.as_deref().is_some_and(|d| !d.is_empty()));
        }
    }

    #[test]
    fn other_verticals_generate() {
        let lex = full_lexicon();
        for domain in [Domain::Health, Domain::Movie] {
            let config = IssConfig { entities: 10, attributes: 70, foreign_keys: 11, seed: 3 };
            let iss = generate_iss(&lex, domain, config);
            iss.schema.validate().unwrap();
            assert_eq!(iss.schema.entity_count(), 10, "{domain:?}");
            assert_eq!(iss.schema.attr_count(), 70, "{domain:?}");
            assert_ne!(iss.schema.name, "retail-iss");
        }
    }

    #[test]
    fn multi_word_names_exist() {
        let lex = full_lexicon();
        let iss = generate_retail_iss(&lex, IssConfig::paper());
        let multi = iss.schema.attributes.iter().filter(|a| a.name.contains('_')).count();
        assert!(multi * 2 > iss.schema.attr_count(), "ISS names should be mostly multi-word");
    }
}
