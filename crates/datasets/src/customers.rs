//! Customer-schema generators (Table I of the paper).
//!
//! A customer schema is *derived* from the ISS: each customer entity
//! shadows one ISS entity, each customer attribute denotes one ISS
//! attribute, and every name passes through a [`RenameChannel`] drawn from
//! the dataset's [`RenameMix`]. Ground truth is therefore known by
//! construction, and the hard-rename fraction (>30 % in real customers) is a
//! controlled property of the generator.

use crate::iss::{generate_retail_iss, AttrRole, GeneratedIss, IssConfig};
use crate::rename::{apply_channel, NamingStyle, RenameChannel, RenameMix};
use crate::Dataset;
use lsm_lexicon::{full_lexicon, Lexicon};
use lsm_schema::{AttrId, DataType, GroundTruth, Schema};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Size and style of one generated customer schema.
#[derive(Debug, Clone, Copy)]
pub struct CustomerSpec {
    /// Display name.
    pub name: &'static str,
    /// Number of entities (Table I).
    pub entities: usize,
    /// Number of attributes (Table I).
    pub attributes: usize,
    /// Number of PK/FK relationships (Table I).
    pub foreign_keys: usize,
    /// Whether attributes carry natural-language descriptions (Table I).
    pub descriptions: bool,
    /// Naming style of the customer's identifiers.
    pub style: NamingStyle,
    /// Rename-channel weights.
    pub mix: RenameMix,
    /// Base seed (combined with the caller's seed).
    pub seed: u64,
}

/// Table I, row "Customer A": 3 entities, 29 attributes, 2 PK/FK, with
/// descriptions.
pub fn spec_a() -> CustomerSpec {
    CustomerSpec {
        name: "Customer A",
        entities: 3,
        attributes: 29,
        foreign_keys: 2,
        descriptions: true,
        style: NamingStyle::Camel,
        mix: RenameMix::customer(),
        seed: 0xA,
    }
}

/// Table I, row "Customer B": 8 entities, 53 attributes, 7 PK/FK.
pub fn spec_b() -> CustomerSpec {
    CustomerSpec {
        name: "Customer B",
        entities: 8,
        attributes: 53,
        foreign_keys: 7,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0xB,
    }
}

/// Table I, row "Customer C": 3 entities, 84 attributes, 2 PK/FK.
pub fn spec_c() -> CustomerSpec {
    CustomerSpec {
        name: "Customer C",
        entities: 3,
        attributes: 84,
        foreign_keys: 2,
        descriptions: false,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0xC,
    }
}

/// Table I, row "Customer D": 7 entities, 136 attributes, 7 PK/FK.
pub fn spec_d() -> CustomerSpec {
    CustomerSpec {
        name: "Customer D",
        entities: 7,
        attributes: 136,
        foreign_keys: 7,
        descriptions: false,
        style: NamingStyle::Pascal,
        mix: RenameMix::customer(),
        seed: 0xD,
    }
}

/// Table I, row "Customer E": 25 entities, 530 attributes, 24 PK/FK, with
/// descriptions.
pub fn spec_e() -> CustomerSpec {
    CustomerSpec {
        name: "Customer E",
        entities: 25,
        attributes: 530,
        foreign_keys: 24,
        descriptions: true,
        style: NamingStyle::Snake,
        mix: RenameMix::customer(),
        seed: 0xE,
    }
}

/// All five specs in paper order.
pub fn all_specs() -> Vec<CustomerSpec> {
    vec![spec_a(), spec_b(), spec_c(), spec_d(), spec_e()]
}

/// Generates all five customers against the paper-sized retail ISS.
pub fn all_customers(seed: u64) -> Vec<Dataset> {
    let lexicon = full_lexicon();
    let iss = generate_retail_iss(&lexicon, IssConfig::paper());
    all_specs().into_iter().map(|spec| generate_customer(&iss, &lexicon, spec, seed)).collect()
}

/// Generates one customer dataset from an ISS.
pub fn generate_customer(
    iss: &GeneratedIss,
    lexicon: &Lexicon,
    spec: CustomerSpec,
    seed: u64,
) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(spec.seed));
    let n_iss = iss.schema.entity_count();
    assert!(spec.entities <= n_iss, "customer larger than ISS");
    assert!(spec.foreign_keys + 1 >= spec.entities, "need a connected FK structure");
    assert!(
        spec.attributes >= spec.entities + spec.foreign_keys,
        "attribute budget below pk+fk structure"
    );

    // ---- choose the shadowed ISS entities ----
    let mut iss_entities: Vec<usize> = (0..n_iss).collect();
    iss_entities.shuffle(&mut rng);
    iss_entities.truncate(spec.entities);

    // ---- customer entity names (renamed ISS entity names) ----
    let mut entity_tokens: Vec<Vec<String>> = Vec::with_capacity(spec.entities);
    let mut entity_names: Vec<String> = Vec::with_capacity(spec.entities);
    for &ei in &iss_entities {
        let origin = &iss.entity_origins[ei];
        let concept = lexicon.concept(origin.concept);
        let channel = spec.mix.sample(&mut rng);
        let (mut tokens, _) = apply_channel(concept, &[], channel, &mut rng);
        if let Some(suffix) = &origin.suffix {
            // Customers often keep structural suffixes, sometimes shortened.
            if rng.gen_bool(0.5) {
                tokens.push(suffix.clone());
            } else {
                tokens.push(suffix[..suffix.len().min(4)].to_string());
            }
        }
        let mut name = NamingStyle::Pascal.render(&tokens);
        while entity_names.contains(&name) {
            tokens.push("x".to_string());
            name = NamingStyle::Pascal.render(&tokens);
        }
        entity_tokens.push(tokens);
        entity_names.push(name);
    }

    // ---- FK plan: spanning tree + extras ----
    let mut fk_edges: Vec<(usize, usize)> = Vec::with_capacity(spec.foreign_keys); // (child, parent)
    for child in 1..spec.entities {
        if fk_edges.len() == spec.foreign_keys {
            break;
        }
        fk_edges.push((child, rng.gen_range(0..child)));
    }
    let mut guard = 0;
    while fk_edges.len() < spec.foreign_keys {
        guard += 1;
        assert!(guard < 100_000, "cannot place customer FK edges");
        let child = rng.gen_range(0..spec.entities);
        let parent = rng.gen_range(0..spec.entities);
        if child == parent || fk_edges.contains(&(child, parent)) {
            continue;
        }
        fk_edges.push((child, parent));
    }

    // Pre-compute FK attribute names so the attribute and the relationship
    // registration agree even if a collision forces a suffix.
    let fk_names: Vec<String> = {
        let mut names = Vec::with_capacity(fk_edges.len());
        for &(child, parent) in &fk_edges {
            let mut fk_tokens = entity_tokens[parent].clone();
            fk_tokens.push("id".to_string());
            let mut name = spec.style.render(&fk_tokens);
            while names.iter().zip(&fk_edges).any(|(n, &(c, _))| c == child && n == &name) {
                fk_tokens.push("ref".to_string());
                name = spec.style.render(&fk_tokens);
            }
            names.push(name);
        }
        names
    };

    // ---- domain-attribute quotas ----
    let domain_budget = spec.attributes - spec.entities - fk_edges.len();
    let mut quotas = vec![domain_budget / spec.entities; spec.entities];
    for q in quotas.iter_mut().take(domain_budget % spec.entities) {
        *q += 1;
    }

    // Pools of ISS domain attributes: primary (own entity) and global.
    let iss_pk_of_entity: Vec<AttrId> =
        iss.schema.entities.iter().map(|e| e.pk.expect("ISS entities always have pks")).collect();
    let mut global_pool: Vec<AttrId> = iss
        .schema
        .attributes
        .iter()
        .filter(|a| matches!(iss.roles[a.id.index()], AttrRole::Domain { .. }))
        .map(|a| a.id)
        .collect();
    global_pool.shuffle(&mut rng);
    let mut taken = vec![false; iss.schema.attr_count()];

    // ---- build ----
    let mut builder = Schema::builder(spec.name);
    let mut truth = GroundTruth::new();
    let mut attr_counter = 0u32;
    let mut pk_names: Vec<String> = Vec::with_capacity(spec.entities);

    for (ci, &ei) in iss_entities.iter().enumerate() {
        builder = builder.entity(entity_names[ci].clone());
        let mut used_names: Vec<String> = Vec::new();

        // Primary key: "<entity tokens> id" (or bare "id").
        let pk_tokens: Vec<String> = if rng.gen_bool(0.25) {
            vec!["id".to_string()]
        } else {
            let mut t = entity_tokens[ci].clone();
            t.push("id".to_string());
            t
        };
        let pk_name = spec.style.render(&pk_tokens);
        let pk_desc = spec
            .descriptions
            .then(|| format!("unique identifier of each {} record", entity_tokens[ci].join(" ")));
        builder = builder.attr_opt_desc(pk_name.clone(), DataType::Integer, pk_desc);
        builder = builder.pk(&pk_name);
        truth.insert(AttrId(attr_counter), iss_pk_of_entity[ei]);
        attr_counter += 1;
        used_names.push(pk_name.clone());
        pk_names.push(pk_name);

        // Foreign keys out of this entity.
        for (edge_i, &(child, parent)) in fk_edges.iter().enumerate() {
            if child != ci {
                continue;
            }
            let fk_name = fk_names[edge_i].clone();
            let fk_desc = spec
                .descriptions
                .then(|| format!("link to the {} table", entity_tokens[parent].join(" ")));
            builder = builder.attr_opt_desc(fk_name.clone(), DataType::Integer, fk_desc);
            truth.insert(AttrId(attr_counter), iss_pk_of_entity[iss_entities[parent]]);
            attr_counter += 1;
            used_names.push(fk_name);
        }

        // Domain attributes: own ISS entity first, then entities nearby on
        // the ISS join graph (a customer table denormalizes *related* ISS
        // entities — an Orders table holds order-ish fields, not random
        // ones), and only then the global pool.
        let iss_graph = iss.schema.join_graph();
        let mut nearby_entities: Vec<(u32, usize)> = iss
            .schema
            .entity_ids()
            .map(|e| (iss_graph.distance(lsm_schema::EntityId(ei as u32), e), e.index()))
            .collect();
        nearby_entities.sort_by_key(|&(d, idx)| (d, idx));
        let mut near_pool: Vec<AttrId> = Vec::new();
        for &(_, entity_idx) in &nearby_entities {
            let mut attrs: Vec<AttrId> = iss.schema.entities[entity_idx]
                .attrs
                .iter()
                .copied()
                .filter(|&a| matches!(iss.roles[a.index()], AttrRole::Domain { .. }))
                .collect();
            attrs.shuffle(&mut rng);
            near_pool.extend(attrs);
        }
        let mut placed = 0;
        let mut candidates = near_pool.into_iter().chain(global_pool.iter().copied());
        while placed < quotas[ci] {
            let Some(iss_attr) = candidates.next() else {
                panic!("ISS domain-attribute pool exhausted for {}", spec.name);
            };
            if taken[iss_attr.index()] {
                continue;
            }
            let AttrRole::Domain { concept, qualifiers } = &iss.roles[iss_attr.index()] else {
                continue;
            };
            let concept = lexicon.concept(*concept);
            let channel = spec.mix.sample(&mut rng);
            let (tokens, used_channel) = apply_channel(concept, qualifiers, channel, &mut rng);
            let mut name = spec.style.render(&tokens);
            if used_names.contains(&name) {
                // Try the exact channel as a tiebreaker, then skip.
                let (exact_tokens, _) =
                    apply_channel(concept, qualifiers, RenameChannel::Exact, &mut rng);
                name = spec.style.render(&exact_tokens);
                if used_names.contains(&name) {
                    continue;
                }
            }
            let dtype = if rng.gen_bool(0.12) {
                DataType::Text // stringly-typed customer columns
            } else {
                iss.schema.attr(iss_attr).dtype
            };
            let desc = if spec.descriptions {
                Some(customer_description(concept, used_channel, &mut rng))
            } else {
                None
            };
            builder = builder.attr_opt_desc(name.clone(), dtype, desc);
            truth.insert(AttrId(attr_counter), iss_attr);
            attr_counter += 1;
            taken[iss_attr.index()] = true;
            used_names.push(name);
            placed += 1;
        }
    }

    // Register FK relationships.
    for (edge_i, &(child, parent)) in fk_edges.iter().enumerate() {
        builder = builder.foreign_key(
            &entity_names[child],
            &fk_names[edge_i],
            &entity_names[parent],
            &pk_names[parent],
        );
    }

    let source = builder.build().expect("generated customer schema must be valid");
    assert_eq!(source.attr_count(), spec.attributes, "{} size drift", spec.name);

    let dataset = Dataset {
        name: spec.name.to_string(),
        source,
        target: iss.schema.clone(),
        ground_truth: truth,
    };
    dataset.validate().expect("generated dataset must be consistent");
    dataset
}

/// A customer-side paraphrase of the ISS description: short, jargon-tinged,
/// never a verbatim copy.
fn customer_description(
    concept: &lsm_lexicon::Concept,
    channel: RenameChannel,
    rng: &mut impl Rng,
) -> String {
    let words: Vec<&str> = concept.description.split_whitespace().collect();
    let half = (words.len() / 2).max(2).min(words.len());
    let head = words[..half].join(" ");
    match channel {
        RenameChannel::Abbrev | RenameChannel::Private if rng.gen_bool(0.5) => {
            format!("{} ({})", head, concept.canonical_phrase())
        }
        _ => head,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_text::lexical_similarity;

    fn setup() -> (GeneratedIss, Lexicon) {
        let lexicon = full_lexicon();
        let iss = generate_retail_iss(&lexicon, IssConfig::paper());
        (iss, lexicon)
    }

    #[test]
    fn customer_a_matches_table_one() {
        let (iss, lex) = setup();
        let d = generate_customer(&iss, &lex, spec_a(), 1);
        let stats = d.source_stats();
        assert_eq!(stats.entities, 3);
        assert_eq!(stats.attributes, 29);
        assert_eq!(stats.pk_fk, 2);
        assert!(stats.has_descriptions);
        assert!(stats.unique_attr_names <= 29);
    }

    #[test]
    fn customer_e_matches_table_one() {
        let (iss, lex) = setup();
        let d = generate_customer(&iss, &lex, spec_e(), 1);
        let stats = d.source_stats();
        assert_eq!(stats.entities, 25);
        assert_eq!(stats.attributes, 530);
        assert_eq!(stats.pk_fk, 24);
        assert!(stats.has_descriptions);
    }

    #[test]
    fn customers_without_descriptions_have_none() {
        let (iss, lex) = setup();
        for spec in [spec_b(), spec_c(), spec_d()] {
            let d = generate_customer(&iss, &lex, spec, 1);
            assert!(!d.source.has_descriptions(), "{}", spec.name);
        }
    }

    #[test]
    fn ground_truth_covers_every_source_attribute() {
        let (iss, lex) = setup();
        let d = generate_customer(&iss, &lex, spec_b(), 1);
        assert_eq!(d.ground_truth.len(), d.source.attr_count());
        d.validate().unwrap();
    }

    /// The paper's key dataset property: >30 % of matches pair names that
    /// are lexically far apart.
    #[test]
    fn hard_rename_fraction_exceeds_thirty_percent() {
        let (iss, lex) = setup();
        for spec in all_specs() {
            let d = generate_customer(&iss, &lex, spec, 1);
            let hard = d
                .ground_truth
                .pairs()
                .filter(|&(s, t)| {
                    lexical_similarity(&d.source.attr(s).name, &d.target.attr(t).name) < 0.6
                })
                .count();
            let frac = hard as f64 / d.ground_truth.len() as f64;
            assert!(frac > 0.25, "{}: hard-match fraction {frac:.2} too low", spec.name);
        }
    }

    #[test]
    fn different_seeds_give_different_schemas() {
        let (iss, lex) = setup();
        let a = generate_customer(&iss, &lex, spec_a(), 1);
        let b = generate_customer(&iss, &lex, spec_a(), 2);
        assert_ne!(a.source, b.source);
        // Same seed reproduces exactly.
        let a2 = generate_customer(&iss, &lex, spec_a(), 1);
        assert_eq!(a.source, a2.source);
    }

    #[test]
    fn anchor_set_is_nonempty_and_keyed() {
        let (iss, lex) = setup();
        let d = generate_customer(&iss, &lex, spec_d(), 1);
        let anchors = d.source.anchor_set();
        assert_eq!(anchors.len(), 7 + 7); // pks + fks
        for a in anchors {
            assert!(d.source.entity_of(a).is_key(a));
        }
    }
}
