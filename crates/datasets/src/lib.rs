//! # lsm-datasets
//!
//! Synthetic schema generators mirroring the paper's evaluation datasets.
//!
//! The paper evaluates on five proprietary Microsoft retail customer
//! schemata (Table I), one retail industry-specific schema (ISS: 92
//! entities, 1218 attributes, 184 PK/FK relationships), and three public
//! schema pairs (Table II). None of the proprietary data is available, so
//! this crate *generates* structurally faithful equivalents:
//!
//! * [`iss::generate_retail_iss`] — the target ISS at the exact size the
//!   paper reports, built from the curated retail lexicon,
//! * [`customers`] — customers A–E at the exact Table I sizes, derived from
//!   the ISS through configurable *rename channels* so that the fraction of
//!   lexically-hard matches (>30 % in the paper) is reproduced,
//! * [`public_data`] — RDB-Star, IPFQR, and MovieLens-IMDB at the exact
//!   Table II sizes, with the mostly-lexical match structure the paper
//!   describes,
//! * ground truth for every pair, known by construction.

#![forbid(unsafe_code)]

pub mod customers;
pub mod iss;
pub mod public_data;
pub mod rename;

use lsm_schema::{GroundTruth, Schema, SchemaStats};

/// A complete matching task: source schema, target schema, and reference
/// matches.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name (e.g. `"Customer A"`, `"MovieLens-IMDB"`).
    pub name: String,
    /// The source (customer) schema.
    pub source: Schema,
    /// The target (ISS) schema.
    pub target: Schema,
    /// Reference matches: every source attribute maps to exactly one target
    /// attribute.
    pub ground_truth: GroundTruth,
}

impl Dataset {
    /// Statistics of the source schema (Table I/II rows).
    pub fn source_stats(&self) -> SchemaStats {
        SchemaStats::of(&self.source)
    }

    /// Statistics of the target schema.
    pub fn target_stats(&self) -> SchemaStats {
        SchemaStats::of(&self.target)
    }

    /// Checks internal consistency: schemata validate, and the ground truth
    /// covers every source attribute with an existing target attribute.
    pub fn validate(&self) -> Result<(), String> {
        self.source.validate().map_err(|e| format!("source: {e}"))?;
        self.target.validate().map_err(|e| format!("target: {e}"))?;
        for s in self.source.attr_ids() {
            let t = self
                .ground_truth
                .target_of(s)
                .ok_or_else(|| format!("no ground truth for {}", self.source.qualified_name(s)))?;
            if t.index() >= self.target.attr_count() {
                return Err(format!("ground truth of {s} points outside the target schema"));
            }
        }
        Ok(())
    }

    /// The five customer datasets plus the three public ones, in paper
    /// order. Convenience for experiment harnesses.
    pub fn all(seed: u64) -> Vec<Dataset> {
        let mut out = customers::all_customers(seed);
        out.extend(public_data::all_public(seed));
        out
    }
}

/// Every name accepted by [`by_name`], for error messages and CLI help.
pub const DATASET_NAMES: &[&str] = &[
    "movielens",
    "rdb-star",
    "ipfqr",
    "customer-a",
    "customer-b",
    "customer-c",
    "customer-d",
    "customer-e",
];

/// Resolves a CLI/protocol dataset name to a generated dataset.
///
/// `seed` feeds the customer rename channels (the public pairs are
/// seed-free). Customer indices are bounds-checked rather than asserted —
/// `customer-f`, or a generator producing fewer than five customers,
/// yields `None` so front ends can report the valid range (see
/// [`DATASET_NAMES`]) instead of panicking on user input.
pub fn by_name(name: &str, seed: u64) -> Option<Dataset> {
    match name {
        "movielens" => Some(public_data::movielens_imdb()),
        "rdb-star" => Some(public_data::rdb_star()),
        "ipfqr" => Some(public_data::ipfqr()),
        _ => {
            let idx = match name.strip_prefix("customer-")? {
                "a" => 0,
                "b" => 1,
                "c" => 2,
                "d" => 3,
                "e" => 4,
                _ => return None,
            };
            customers::all_customers(seed).into_iter().nth(idx)
        }
    }
}
