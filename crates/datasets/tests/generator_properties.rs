//! Property-based tests of the customer generator: for a wide range of
//! random specs, generation either succeeds with exactly the requested
//! shape and a consistent ground truth, or panics only on the documented
//! infeasible configurations (which the strategy below avoids).

use lsm_datasets::customers::{generate_customer, CustomerSpec};
use lsm_datasets::iss::{generate_retail_iss, GeneratedIss, IssConfig};
use lsm_datasets::rename::{NamingStyle, RenameMix};
use lsm_lexicon::{full_lexicon, Lexicon};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The ISS is expensive to build; share one across all proptest cases.
fn shared() -> &'static (Lexicon, GeneratedIss) {
    static SHARED: OnceLock<(Lexicon, GeneratedIss)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let lexicon = full_lexicon();
        let iss = generate_retail_iss(&lexicon, IssConfig::small());
        (lexicon, iss)
    })
}

fn spec_strategy() -> impl Strategy<Value = (CustomerSpec, u64)> {
    // entities ≤ 8 (small ISS has 12), attrs within pool limits, fks ≥ entities-1.
    (2usize..=8, 0usize..=3, proptest::bool::ANY, 0u64..1000).prop_flat_map(
        |(entities, extra_fks, descriptions, seed)| {
            let fks = (entities - 1 + extra_fks).min(entities * (entities - 1));
            // Budget: pk per entity + fks + a few domain attrs each.
            ((entities + fks + entities * 2)..=(entities + fks + entities * 4)).prop_map(
                move |attributes| {
                    (
                        CustomerSpec {
                            name: "Prop Customer",
                            entities,
                            attributes,
                            foreign_keys: fks,
                            descriptions,
                            style: NamingStyle::Snake,
                            mix: RenameMix::customer(),
                            seed: 0x1234,
                        },
                        seed,
                    )
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_customers_have_requested_shape((spec, seed) in spec_strategy()) {
        let (lexicon, iss) = shared();
        let d = generate_customer(iss, lexicon, spec, seed);
        d.validate().unwrap();
        prop_assert_eq!(d.source.entity_count(), spec.entities);
        prop_assert_eq!(d.source.attr_count(), spec.attributes);
        prop_assert_eq!(d.source.foreign_keys.len(), spec.foreign_keys);
        prop_assert_eq!(d.source.has_descriptions(), spec.descriptions);
        // Ground truth is total over source attributes.
        prop_assert_eq!(d.ground_truth.len(), spec.attributes);
        // Anchor set = pks + fks.
        prop_assert!(d.source.anchor_set().len() >= spec.entities);
    }

    #[test]
    fn generation_is_deterministic((spec, seed) in spec_strategy()) {
        let (lexicon, iss) = shared();
        let a = generate_customer(iss, lexicon, spec, seed);
        let b = generate_customer(iss, lexicon, spec, seed);
        prop_assert_eq!(a.source, b.source);
        prop_assert_eq!(a.ground_truth, b.ground_truth);
    }
}
