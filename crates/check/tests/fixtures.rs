//! Seeded injected-bug fixtures: each fixture plants a known
//! concurrency bug, asserts the checker catches it, and then replays
//! the printed trace via `LSM_CHECK_REPLAY` to prove the failing
//! interleaving reproduces deterministically.
//!
//! These only mean something under `--cfg lsm_model_check`; in a normal
//! build they self-skip (running the buggy models for real would be a
//! probabilistic test).

use lsm_check::sync::{thread, Arc, AtomicU64, Mutex, Ordering};
use lsm_check::{Failure, FailureKind, Model};

/// Serializes fixtures that mutate the process-wide `LSM_CHECK_REPLAY`
/// environment variable (libtest runs tests concurrently).
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the env var on scope exit even if an assertion fails.
struct ReplayEnv;

impl ReplayEnv {
    fn set(trace: &str) -> Self {
        std::env::set_var("LSM_CHECK_REPLAY", trace);
        ReplayEnv
    }
}

impl Drop for ReplayEnv {
    fn drop(&mut self) {
        std::env::remove_var("LSM_CHECK_REPLAY");
    }
}

/// Runs `f` under exploration, then replays the failing trace and
/// asserts the replayed execution reaches an identical failure.
fn catch_and_replay<F>(f: F) -> (Failure, Failure)
where
    F: Fn() + Send + Sync + Clone + 'static,
{
    let _guard = env_lock();
    std::env::remove_var("LSM_CHECK_REPLAY");
    let first = Model::new().check(f.clone()).expect_err("fixture bug must be caught");
    assert!(!first.trace.is_empty(), "failure must carry a replay trace:\n{first}");
    let replayed = {
        let _env = ReplayEnv::set(&first.trace);
        Model::new().check(f).expect_err("replay must reproduce the failure")
    };
    assert_eq!(
        replayed.kind, first.kind,
        "replay diverged:\n-- exploration --\n{first}\n-- replay --\n{replayed}"
    );
    assert_eq!(replayed.trace, first.trace, "replay must follow the given trace");
    (first, replayed)
}

/// Fixture 1: dropped Release fence. The writer publishes a payload and
/// then sets a ready-flag with `Relaxed` where `Release` is required;
/// an `Acquire` reader that observes the flag can still read the stale
/// payload. The checker must find the stale interleaving and its trace
/// must replay to the same assertion failure.
#[test]
fn dropped_release_fence_caught_and_replays() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let (first, _replayed) = catch_and_replay(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            // BUG: must be Ordering::Release to publish `data`.
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "flag observed but payload is stale");
        }
        t.join().unwrap();
    });
    match &first.kind {
        FailureKind::Panic(msg) => {
            assert!(msg.contains("payload is stale"), "unexpected panic: {msg}")
        }
        other => panic!("expected the stale-read panic, got {other:?}"),
    }
    let rendered = first.to_string();
    assert!(rendered.contains("LSM_CHECK_REPLAY="), "{rendered}");
}

/// Fixture 2: inverted lock order. Two threads take the same pair of
/// mutexes in opposite orders; the checker reports it (as a lock-order
/// cycle from the runtime graph, or as the deadlock itself) and the
/// trace replays to the identical failure.
#[test]
fn inverted_lock_order_caught_and_replays() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let (first, _replayed) = catch_and_replay(|| {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let mut ga = a2.lock();
            let mut gb = b2.lock();
            *ga += 1;
            *gb += 1;
        });
        // BUG: opposite acquisition order from the spawned thread.
        let mut gb = b.lock();
        let mut ga = a.lock();
        *gb += 1;
        *ga += 1;
        drop((gb, ga));
        t.join().unwrap();
    });
    assert!(
        matches!(first.kind, FailureKind::LockOrderCycle(_) | FailureKind::Deadlock),
        "expected a lock-order failure, got {:?}",
        first.kind
    );
    if let FailureKind::LockOrderCycle(_) = first.kind {
        assert!(first.to_string().contains("R11-lock-discipline"), "{first}");
    }
}

/// Fixture 3: non-atomic check-then-act on a shared counter. Two
/// threads do load + store instead of fetch_add; an interleaving loses
/// one increment. Replays deterministically.
#[test]
fn lost_update_caught_and_replays() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let (first, _replayed) = catch_and_replay(|| {
        let n = Arc::new(AtomicU64::new(0));
        let spawn_incr = |n: &Arc<AtomicU64>| {
            let n = Arc::clone(n);
            thread::spawn(move || {
                // BUG: load+store races with the other increment.
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            })
        };
        let t1 = spawn_incr(&n);
        let t2 = spawn_incr(&n);
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    match &first.kind {
        FailureKind::Panic(msg) => {
            assert!(msg.contains("an increment was lost"), "unexpected panic: {msg}")
        }
        other => panic!("expected the lost-update panic, got {other:?}"),
    }
}

/// A stale trace against a different model is a loud `ReplayMismatch`,
/// never a bogus pass/fail.
#[test]
fn stale_replay_trace_is_rejected() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let _guard = env_lock();
    let _env = ReplayEnv::set("9,9,9,9");
    let failure = Model::new()
        .check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::AcqRel);
            });
            n.fetch_add(1, Ordering::AcqRel);
            t.join().unwrap();
        })
        .expect_err("nonsense trace must be rejected");
    assert!(
        matches!(failure.kind, FailureKind::ReplayMismatch(_)),
        "expected ReplayMismatch, got {:?}",
        failure.kind
    );
}
