//! Scheduler and memory-model semantics: clean models must pass in
//! every interleaving; the model-only tests assert the checker's
//! exploration actually visits the behaviors the memory model allows.
//!
//! In a normal (non-`lsm_model_check`) build the clean models run once
//! with real concurrency and the exploration-dependent tests self-skip.

use lsm_check::sync::{thread, Arc, AtomicU64, Condvar, Mutex, Ordering};
use lsm_check::{FailureKind, Model};

/// Two threads increment under a mutex: exact count in every schedule.
#[test]
fn mutex_counter_exact() {
    lsm_check::model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock(), 2);
    });
}

/// Release/Acquire message passing: an acquire load that observes the
/// release-stored flag must also observe the data written before it.
#[test]
fn rel_acq_message_passing_clean() {
    lsm_check::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "acquire read must see the data");
        }
        t.join().unwrap();
    });
}

/// Two Relaxed RMWs never lose an update (modification-order atomicity).
#[test]
fn relaxed_rmw_no_lost_update() {
    lsm_check::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
}

/// The model explores Relaxed stale reads: across the state space a
/// Relaxed load of a Relaxed-stored flag observes both 0 and 1.
#[test]
fn relaxed_load_explores_stale_and_fresh() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    use std::sync::atomic::AtomicU64 as RealAtomicU64;
    static SEEN: [RealAtomicU64; 2] = [RealAtomicU64::new(0), RealAtomicU64::new(0)];
    SEEN[0].store(0, Ordering::SeqCst);
    SEEN[1].store(0, Ordering::SeqCst);
    let report = Model::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let done = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&done));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.fetch_add(1, Ordering::Relaxed);
            });
            // When the Relaxed `done` read observes the increment, the
            // writer's `data` store has definitely executed (program
            // order) — but with no release/acquire edge the reader may
            // still see the stale 0 *or* the fresh 42.
            if done.load(Ordering::Relaxed) == 1 {
                let v = data.load(Ordering::Relaxed);
                assert!(v == 0 || v == 42, "impossible data value {v}");
                SEEN[(v == 42) as usize].store(1, Ordering::SeqCst);
            }
            t.join().unwrap();
        })
        .expect("clean model");
    assert!(report.exhaustive);
    assert_eq!(SEEN[1].load(Ordering::SeqCst), 1, "must explore the fresh read");
    assert_eq!(SEEN[0].load(Ordering::SeqCst), 1, "must explore the stale read");
}

/// `join` synchronizes-with the child's completion: after the join even
/// a Relaxed load must observe the child's writes.
#[test]
fn join_publishes_child_writes() {
    lsm_check::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.store(7, Ordering::Relaxed);
        });
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 7);
    });
}

/// A condvar handshake with the canonical predicate loop passes in
/// every interleaving (no wakeup is ever lost when the predicate is
/// re-checked under the lock).
#[test]
fn condvar_handshake_clean() {
    lsm_check::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    });
}

/// An inverted lock order is reported as a cycle in the runtime
/// lock-order graph, cross-referencing the static rule R11.
#[test]
fn lock_order_cycle_reported() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let failure = Model::new()
        .check(|| {
            let a = Arc::new(Mutex::new(0u64));
            let b = Arc::new(Mutex::new(0u64));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                drop((ga, gb));
            });
            let gb = b.lock();
            let ga = a.lock();
            drop((gb, ga));
            t.join().unwrap();
        })
        .expect_err("inverted lock order must be caught");
    match &failure.kind {
        FailureKind::LockOrderCycle(_) | FailureKind::Deadlock => {}
        other => panic!("expected a lock-order failure, got {other:?}"),
    }
    let rendered = failure.to_string();
    if matches!(failure.kind, FailureKind::LockOrderCycle(_)) {
        assert!(rendered.contains("R11-lock-discipline"), "{rendered}");
    }
    assert!(!failure.trace.is_empty(), "failure carries a replay trace");
}

/// A waiter that checks its predicate *before* taking the lock into
/// account misses a notify that fires in between: the checker finds the
/// lost wakeup as a deadlock.
#[test]
fn lost_wakeup_caught() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let failure = Model::new()
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (m, cv) = &*p2;
                *m.lock() = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            // BUG: predicate checked without holding the lock across
            // the wait decision — the notify can land in the gap.
            let ready = *m.lock();
            if !ready {
                let mut g = m.lock();
                cv.wait(&mut g);
                drop(g);
            }
            t.join().unwrap();
        })
        .expect_err("lost wakeup must deadlock in some interleaving");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock),
        "expected deadlock, got {:?}",
        failure.kind
    );
    assert!(failure.to_string().contains("Condvar"), "{failure}");
}

/// Sleep sets prune schedules that only reorder operations on disjoint
/// locations.
#[test]
fn sleep_sets_prune_independent_ops() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let report = Model::new()
        .check(|| {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                a2.store(1, Ordering::Release);
            });
            let t2 = thread::spawn(move || {
                b2.store(1, Ordering::Release);
            });
            t1.join().unwrap();
            t2.join().unwrap();
        })
        .expect("clean model");
    assert!(report.exhaustive);
    assert!(
        report.pruned > 0,
        "independent ops must produce sleep-set pruning, report: {report:?}"
    );
}

/// The exploration bound is a loud failure, never a silent pass.
#[test]
fn execution_bound_is_explicit() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let failure = Model::new()
        .max_executions(1)
        .check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::AcqRel);
            });
            n.fetch_add(1, Ordering::AcqRel);
            t.join().unwrap();
        })
        .expect_err("a 2-thread race cannot fit in one execution");
    assert!(matches!(failure.kind, FailureKind::BoundExceeded));
}

/// An unsatisfiable Relaxed spin is caught by the per-execution op
/// bound instead of hanging the suite.
#[test]
fn livelock_caught() {
    if !lsm_check::model_build() {
        eprintln!("skipped: requires --cfg lsm_model_check");
        return;
    }
    let failure = Model::new()
        .max_ops(200)
        .check(|| {
            let flag = AtomicU64::new(0);
            // Nobody ever stores 1.
            while flag.load(Ordering::Relaxed) == 0 {
                std::hint::spin_loop();
            }
        })
        .expect_err("spin on a never-written flag must be flagged");
    assert!(matches!(failure.kind, FailureKind::Livelock));
}
