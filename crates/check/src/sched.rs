//! The cooperative exploration scheduler (only compiled under
//! `cfg(lsm_model_check)`).
//!
//! Model threads are real OS threads, but a token-passing protocol keeps
//! exactly one runnable at a time: every shared-memory operation parks
//! the caller, picks the next pending operation to execute, and waits to
//! be granted. The sequence of picks is the *trail*; exploration is a
//! stateless depth-first re-execution over it — after each execution the
//! deepest non-exhausted choice advances and the closure re-runs,
//! deterministically replaying the prefix.
//!
//! Sleep sets prune interleavings that only reorder independent
//! operations: when the DFS backtracks past a branch, that branch's
//! (thread, op) goes to sleep for the point's remaining branches, wakes
//! when a dependent operation executes, and an execution in which every
//! enabled thread is asleep aborts early — it was covered by an earlier
//! execution.
//!
//! All nondeterminism (schedule picks *and* stale-load value picks)
//! funnels through the trail, so the flat integer sequence printed on
//! failure is a complete replay recipe: `LSM_CHECK_REPLAY=<trace>`
//! forces that exact execution.

use crate::memory::{self, Memory, View};
use crate::report::{format_trace, parse_trace, Failure, FailureKind, Report};
use crate::Model;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Ops retained for the failure report's schedule tail.
const OPS_LOG_CAP: usize = 48;

pub(crate) type Tid = usize;

/// Unwind payload used to abort an in-flight execution (pruned by sleep
/// sets, or poisoned by a failure on another thread). Never user-visible:
/// the thread wrapper catches it and the panic hook silences it.
pub(crate) struct AbortToken;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Op {
    Start,
    Yield,
    Spawn(Tid),
    Load { loc: usize, kind: &'static str },
    Store { loc: usize, kind: &'static str },
    Rmw { loc: usize, kind: &'static str },
    Lock { loc: usize },
    Unlock { loc: usize },
    CvWait { cv: usize, mutex: usize },
    CvNotify { cv: usize, all: bool },
    Join { target: Tid },
}

/// (location, writes?) of a plain memory op.
fn mem_loc(op: &Op) -> Option<(usize, bool)> {
    match op {
        Op::Load { loc, .. } => Some((*loc, false)),
        Op::Store { loc, .. } | Op::Rmw { loc, .. } => Some((*loc, true)),
        _ => None,
    }
}

fn lock_loc(op: &Op) -> Option<usize> {
    match op {
        Op::Lock { loc } | Op::Unlock { loc } => Some(*loc),
        _ => None,
    }
}

/// The independence relation driving sleep-set wakes: two operations are
/// dependent when reordering them can change the outcome. Conservative
/// over-approximation (extra dependence costs pruning, never soundness).
fn dependent(a: &Op, b: &Op) -> bool {
    if let (Some((la, wa)), Some((lb, wb))) = (mem_loc(a), mem_loc(b)) {
        return la == lb && (wa || wb);
    }
    // Joins observe thread completion; keep them dependent with
    // everything rather than modeling a "finish" op.
    if matches!(a, Op::Join { .. }) || matches!(b, Op::Join { .. }) {
        return true;
    }
    if let (Some(la), Some(lb)) = (lock_loc(a), lock_loc(b)) {
        return la == lb;
    }
    match (a, b) {
        (Op::CvWait { cv: ca, mutex: ma }, Op::CvWait { cv: cb, mutex: mb }) => {
            ca == cb || ma == mb
        }
        (Op::CvWait { cv: cw, .. }, Op::CvNotify { cv: cn, .. })
        | (Op::CvNotify { cv: cn, .. }, Op::CvWait { cv: cw, .. }) => cw == cn,
        (Op::CvNotify { cv: ca, .. }, Op::CvNotify { cv: cb, .. }) => ca == cb,
        // A wait releases and reacquires its mutex.
        (Op::CvWait { mutex, .. }, other) | (other, Op::CvWait { mutex, .. }) => {
            lock_loc(other) == Some(*mutex)
        }
        _ => false,
    }
}

enum Ts {
    /// Registered by `spawn`; its OS thread may not have parked yet (its
    /// pending op is `Start`).
    Starting,
    /// Parked at a pending op, waiting to be granted.
    Ready(Op),
    /// The single thread currently executing model code.
    Running,
    /// Inside `Condvar::wait`, mutex released, not yet notified. The
    /// mutex is what a notify re-parks the waiter to reacquire.
    BlockedCv {
        cv: usize,
        mutex: usize,
    },
    Finished,
}

struct ThreadState {
    state: Ts,
    /// Locks held, in acquisition order (feeds the lock-order graph).
    held: Vec<usize>,
    view: View,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState { state: Ts::Starting, held: Vec::new(), view: View::new() }
    }
}

#[derive(Debug)]
enum TrailEntry {
    /// A schedule point: which pending op executes next. `options` are
    /// the enabled, non-sleeping threads at first exploration;
    /// `option_ops` their pending ops (for sleep-set re-seeding);
    /// branches `0..taken` are already explored.
    Sched { options: Vec<Tid>, option_ops: Vec<Op>, taken: usize },
    /// A value branch (stale-load pick, condvar-waiter pick).
    Pick { n: usize, taken: usize },
}

#[derive(Default)]
struct LockState {
    owner: Option<Tid>,
    /// View of the last releaser — joined by the next acquirer.
    released_view: View,
}

struct ExecInner {
    threads: Vec<ThreadState>,
    granted: Option<Tid>,
    /// The thread currently holding the scheduler token (granted and
    /// running its op / continuation). `pick` may only run when this is
    /// `None`: a freshly spawned OS thread parking at `Op::Start` while
    /// its parent still runs must NOT trigger a pick, or the recorded
    /// option sets would depend on OS timing and DFS prefix replay
    /// would diverge.
    active: Option<Tid>,
    trail: Vec<TrailEntry>,
    cursor: usize,
    sleep: Vec<(Tid, Op)>,
    mem: Memory,
    locks: BTreeMap<usize, LockState>,
    lock_labels: BTreeMap<usize, String>,
    lock_edges: BTreeSet<(usize, usize)>,
    ops_log: VecDeque<String>,
    op_count: usize,
    max_ops: usize,
    /// Every choice made this execution (schedule → chosen tid, value
    /// pick → index) — the replayable trace.
    choices: Vec<usize>,
    /// Forced choices when `LSM_CHECK_REPLAY` is set.
    replay: Option<VecDeque<usize>>,
    failure: Option<FailureKind>,
    abort: bool,
    pruned: bool,
    exec_done: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct ExecShared {
    inner: StdMutex<ExecInner>,
    cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    exec: Arc<ExecShared>,
    tid: Tid,
}

fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Is the calling thread part of an active model execution?
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Silences the `AbortToken` unwinds the scheduler uses internally;
/// every other panic keeps the previous hook (so a failing model
/// assertion still prints its location once).
fn install_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortToken>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

impl ExecShared {
    fn new(trail: Vec<TrailEntry>, replay: Option<VecDeque<usize>>, max_ops: usize) -> Self {
        ExecShared {
            inner: StdMutex::new(ExecInner {
                threads: Vec::new(),
                granted: None,
                active: None,
                trail,
                cursor: 0,
                sleep: Vec::new(),
                mem: Memory::default(),
                locks: BTreeMap::new(),
                lock_labels: BTreeMap::new(),
                lock_edges: BTreeSet::new(),
                ops_log: VecDeque::new(),
                op_count: 0,
                max_ops,
                choices: Vec::new(),
                replay,
                failure: None,
                abort: false,
                pruned: false,
                exec_done: false,
                handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Poison-tolerant lock: a panicking model thread (assertion failure
    /// in the body) must not wedge the scheduler for everyone else.
    fn lock(&self) -> StdMutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&'a self, g: StdMutexGuard<'a, ExecInner>) -> StdMutexGuard<'a, ExecInner> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }

    /// Parks the caller at `op`, transfers control, and returns once
    /// granted; the caller performs the op's effect under the returned
    /// guard.
    fn park(&self, tid: Tid, op: Op) -> StdMutexGuard<'_, ExecInner> {
        let mut inner = self.lock();
        if inner.abort {
            drop(inner);
            panic::panic_any(AbortToken);
        }
        inner.op_count += 1;
        if inner.op_count > inner.max_ops && inner.failure.is_none() {
            inner.failure = Some(FailureKind::Livelock);
            self.abort_exec(&mut inner);
            drop(inner);
            panic::panic_any(AbortToken);
        }
        inner.threads[tid].state = Ts::Ready(op);
        if inner.active == Some(tid) {
            inner.active = None;
        }
        if inner.granted.is_none() && inner.active.is_none() {
            self.pick(&mut inner);
        }
        self.wait_for_grant(inner, tid)
    }

    fn wait_for_grant<'a>(
        &'a self,
        mut inner: StdMutexGuard<'a, ExecInner>,
        tid: Tid,
    ) -> StdMutexGuard<'a, ExecInner> {
        loop {
            if inner.abort {
                drop(inner);
                panic::panic_any(AbortToken);
            }
            if inner.granted == Some(tid) {
                break;
            }
            inner = self.wait(inner);
        }
        inner.granted = None;
        inner.active = Some(tid);
        inner.threads[tid].state = Ts::Running;
        inner
    }

    /// Wakes everything to unwind; with a failure set this poisons the
    /// execution, without one it marks the execution pruned.
    fn abort_exec(&self, inner: &mut ExecInner) {
        inner.abort = true;
        self.cv.notify_all();
    }

    fn fail(&self, inner: &mut ExecInner, kind: FailureKind) {
        if inner.failure.is_none() {
            inner.failure = Some(kind);
        }
        self.abort_exec(inner);
    }

    /// The schedule choice: which pending op executes next. Called with
    /// no thread running and nothing granted.
    fn pick(&self, inner: &mut ExecInner) {
        debug_assert!(inner.granted.is_none());
        let enabled: Vec<Tid> = (0..inner.threads.len()).filter(|&t| inner.is_enabled(t)).collect();
        if enabled.is_empty() {
            let unfinished: Vec<Tid> = (0..inner.threads.len())
                .filter(|&t| !matches!(inner.threads[t].state, Ts::Finished))
                .collect();
            if unfinished.is_empty() {
                inner.exec_done = true;
                self.cv.notify_all();
            } else {
                let mut lines = Vec::new();
                for &t in &unfinished {
                    lines.push(format!("t{t} blocked: {}", inner.describe_block(t)));
                }
                for l in lines {
                    inner.log_line(l);
                }
                self.fail(inner, FailureKind::Deadlock);
            }
            return;
        }
        let chosen: Tid;
        if inner.cursor < inner.trail.len() {
            // Deterministic replay of the DFS prefix; branches explored
            // before the current one go to sleep.
            let (options, taken) = match &inner.trail[inner.cursor] {
                TrailEntry::Sched { options, taken, .. } => (options.clone(), *taken),
                TrailEntry::Pick { .. } => {
                    self.fail(
                        inner,
                        FailureKind::ReplayMismatch(
                            "internal: DFS prefix diverged (pick where schedule expected)".into(),
                        ),
                    );
                    return;
                }
            };
            for &t in &options[..taken] {
                // Seed from the *live* pending op, not the recorded one:
                // heap addresses inside ops are not stable across
                // executions, and a stale address would never match the
                // dependence check that is supposed to wake the sleeper
                // (silently over-pruning). Prefix replay is
                // deterministic, so the live op is the same logical op.
                if matches!(inner.threads[t].state, Ts::Starting | Ts::Ready(_)) {
                    let op = inner.pending_op(t);
                    inner.sleep.push((t, op));
                }
            }
            chosen = options[taken];
            if !enabled.contains(&chosen) {
                self.fail(
                    inner,
                    FailureKind::ReplayMismatch("internal: DFS prefix diverged".into()),
                );
                return;
            }
            inner.cursor += 1;
        } else if inner.replay.is_some() {
            match inner.replay.as_mut().unwrap().pop_front() {
                Some(tid) if enabled.contains(&tid) => chosen = tid,
                Some(tid) => {
                    self.fail(
                        inner,
                        FailureKind::ReplayMismatch(format!(
                            "trace schedules t{tid}, but enabled threads are {enabled:?}"
                        )),
                    );
                    return;
                }
                None => {
                    self.fail(
                        inner,
                        FailureKind::ReplayMismatch("trace ended before the schedule did".into()),
                    );
                    return;
                }
            }
        } else {
            let candidates: Vec<Tid> = enabled
                .iter()
                .copied()
                .filter(|t| !inner.sleep.iter().any(|(st, _)| st == t))
                .collect();
            if candidates.is_empty() {
                // Every enabled thread is asleep: any continuation only
                // reorders independent ops relative to an execution
                // already explored.
                inner.pruned = true;
                self.abort_exec(inner);
                return;
            }
            let option_ops: Vec<Op> = candidates.iter().map(|&t| inner.pending_op(t)).collect();
            chosen = candidates[0];
            inner.trail.push(TrailEntry::Sched { options: candidates, option_ops, taken: 0 });
            inner.cursor += 1;
        }
        // The chosen thread may sit in the sleep set when a prefix
        // replay or a condvar wake re-selects it; waking it is sound
        // (dropping sleep entries only loses pruning, never coverage).
        inner.sleep.retain(|(t, _)| *t != chosen);
        inner.choices.push(chosen);
        inner.granted = Some(chosen);
        self.cv.notify_all();
    }

    /// A value branch (stale-load pick, condvar-waiter pick) by the
    /// currently granted thread. Panics out of the execution on replay
    /// mismatch.
    fn choose_value(&self, inner: &mut StdMutexGuard<'_, ExecInner>, n: usize) -> usize {
        debug_assert!(n >= 1);
        let pick;
        if inner.cursor < inner.trail.len() {
            match &inner.trail[inner.cursor] {
                TrailEntry::Pick { n: en, taken } if *en == n => pick = *taken,
                _ => {
                    self.fail(
                        inner,
                        FailureKind::ReplayMismatch(
                            "internal: DFS prefix diverged (schedule where pick expected)".into(),
                        ),
                    );
                    return 0; // caller unwinds via the abort check below
                }
            }
            inner.cursor += 1;
        } else if inner.replay.is_some() {
            match inner.replay.as_mut().unwrap().pop_front() {
                Some(k) if k < n => pick = k,
                Some(k) => {
                    self.fail(
                        inner,
                        FailureKind::ReplayMismatch(format!(
                            "trace picks value branch {k}, but only {n} branches exist"
                        )),
                    );
                    return 0;
                }
                None => {
                    self.fail(
                        inner,
                        FailureKind::ReplayMismatch("trace ended before the schedule did".into()),
                    );
                    return 0;
                }
            }
        } else {
            inner.trail.push(TrailEntry::Pick { n, taken: 0 });
            inner.cursor += 1;
            pick = 0;
        }
        inner.choices.push(pick);
        pick
    }

    /// Effect epilogue: log the executed op and wake sleepers dependent
    /// with it.
    fn executed(&self, inner: &mut ExecInner, tid: Tid, op: &Op) {
        let line = inner.render_op(tid, op);
        inner.log_line(line);
        inner.sleep.retain(|(_, slept)| !dependent(op, slept));
    }

    /// Acquire effect shared by `Mutex::lock` and the condvar reacquire:
    /// takes ownership, joins the releaser's view, extends the runtime
    /// lock-order graph, and fails on a cycle.
    fn lock_effect(&self, inner: &mut StdMutexGuard<'_, ExecInner>, tid: Tid, loc: usize) {
        let lock = inner.locks.entry(loc).or_default();
        debug_assert!(lock.owner.is_none());
        lock.owner = Some(tid);
        let released = lock.released_view.clone();
        let mut view = std::mem::take(&mut inner.threads[tid].view);
        memory::join_views(&mut view, &released);
        inner.threads[tid].view = view;
        let held = inner.threads[tid].held.clone();
        let mut cycle = None;
        for &h in &held {
            if h != loc && inner.lock_edges.insert((h, loc)) {
                if let Some(path) = inner.find_cycle(loc) {
                    cycle = Some(path);
                    break;
                }
            }
        }
        inner.threads[tid].held.push(loc);
        if let Some(path) = cycle {
            self.fail(inner, FailureKind::LockOrderCycle(path));
        }
    }

    /// Release effect shared by guard drop and `Condvar::wait`.
    fn unlock_effect(&self, inner: &mut ExecInner, tid: Tid, loc: usize) {
        let view = inner.threads[tid].view.clone();
        let lock = inner.locks.entry(loc).or_default();
        debug_assert_eq!(lock.owner, Some(tid));
        lock.owner = None;
        lock.released_view = view;
        inner.threads[tid].held.retain(|&h| h != loc);
    }

    /// Checks for an abort raised while this thread held the guard
    /// (lock-order cycle, replay mismatch) and unwinds if so.
    fn bail_if_aborted(&self, inner: StdMutexGuard<'_, ExecInner>) {
        if inner.abort {
            drop(inner);
            panic::panic_any(AbortToken);
        }
    }

    fn finish_thread(&self, tid: Tid, result: std::thread::Result<()>) {
        let mut inner = self.lock();
        inner.threads[tid].state = Ts::Finished;
        if inner.active == Some(tid) {
            inner.active = None;
        }
        match result {
            Ok(()) => {}
            Err(payload) if payload.downcast_ref::<AbortToken>().is_some() => {}
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&'static str>().copied())
                    .unwrap_or("<non-string panic payload>")
                    .to_string();
                self.fail(&mut inner, FailureKind::Panic(msg));
            }
        }
        let all_finished = inner.threads.iter().all(|t| matches!(t.state, Ts::Finished));
        if all_finished {
            inner.exec_done = true;
            self.cv.notify_all();
        } else if !inner.abort && inner.granted.is_none() && inner.active.is_none() {
            self.pick(&mut inner);
        } else {
            self.cv.notify_all();
        }
    }
}

impl ExecInner {
    fn pending_op(&self, tid: Tid) -> Op {
        match &self.threads[tid].state {
            Ts::Starting => Op::Start,
            Ts::Ready(op) => op.clone(),
            _ => unreachable!("pending_op on a non-parked thread"),
        }
    }

    fn is_enabled(&self, tid: Tid) -> bool {
        match &self.threads[tid].state {
            Ts::Starting => true,
            Ts::Ready(op) => match op {
                Op::Lock { loc } => self.locks.get(loc).map_or(true, |l| l.owner.is_none()),
                Op::Join { target } => {
                    matches!(self.threads[*target].state, Ts::Finished)
                }
                _ => true,
            },
            _ => false,
        }
    }

    fn describe_block(&self, tid: Tid) -> String {
        match &self.threads[tid].state {
            Ts::Ready(Op::Lock { loc }) => {
                let owner = self.locks.get(loc).and_then(|l| l.owner);
                format!(
                    "waiting for {} (held by {})",
                    self.lock_label(*loc),
                    owner.map_or("nobody".to_string(), |t| format!("t{t}"))
                )
            }
            Ts::Ready(Op::Join { target }) => format!("joining t{target}"),
            Ts::BlockedCv { cv, .. } => {
                format!("waiting on Condvar@{cv:#x} (never notified?)")
            }
            Ts::Ready(op) => format!("parked at {op:?}"),
            _ => "in an unexpected state".to_string(),
        }
    }

    fn lock_label(&self, loc: usize) -> String {
        self.lock_labels.get(&loc).cloned().unwrap_or_else(|| format!("Mutex@{loc:#x}"))
    }

    fn render_op(&self, tid: Tid, op: &Op) -> String {
        match op {
            Op::Start => format!("t{tid} start"),
            Op::Yield => format!("t{tid} yield"),
            Op::Spawn(child) => format!("t{tid} spawn t{child}"),
            Op::Load { loc, kind } => format!("t{tid} load {kind}@{loc:#x}"),
            Op::Store { loc, kind } => format!("t{tid} store {kind}@{loc:#x}"),
            Op::Rmw { loc, kind } => format!("t{tid} rmw {kind}@{loc:#x}"),
            Op::Lock { loc } => format!("t{tid} lock {}", self.lock_label(*loc)),
            Op::Unlock { loc } => format!("t{tid} unlock {}", self.lock_label(*loc)),
            Op::CvWait { cv, mutex } => {
                format!("t{tid} condvar-wait Condvar@{cv:#x} releasing {}", self.lock_label(*mutex))
            }
            Op::CvNotify { cv, all } => {
                format!("t{tid} notify_{} Condvar@{cv:#x}", if *all { "all" } else { "one" })
            }
            Op::Join { target } => format!("t{tid} join t{target}"),
        }
    }

    fn log_line(&mut self, line: String) {
        if self.ops_log.len() >= OPS_LOG_CAP {
            self.ops_log.pop_front();
        }
        self.ops_log.push_back(line);
    }

    /// A cycle through `start` in the lock-order graph, rendered with
    /// labels, if one exists.
    fn find_cycle(&self, start: usize) -> Option<String> {
        let mut stack = vec![(start, vec![start])];
        let mut seen = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &(from, to) in self.lock_edges.range((node, 0)..=(node, usize::MAX)) {
                debug_assert_eq!(from, node);
                if to == start {
                    let mut s = String::new();
                    for &l in &path {
                        s.push_str(&self.lock_label(l));
                        s.push_str(" -> ");
                    }
                    s.push_str(&self.lock_label(start));
                    return Some(s);
                }
                if seen.insert(to) {
                    let mut p = path.clone();
                    p.push(to);
                    stack.push((to, p));
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------
// Shim entry points. Each returns `None` when the calling thread is not
// part of an active model execution (the shim then falls through to the
// plain operation).
// ---------------------------------------------------------------------

pub(crate) fn atomic_load(loc: usize, kind: &'static str, ord: Ordering, live: u64) -> Option<u64> {
    let ctx = current()?;
    let op = Op::Load { loc, kind };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    inner.mem.ensure(loc, live);
    let floor = Memory::floor(&inner.threads[ctx.tid].view, loc);
    let n = if ord == Ordering::SeqCst { 1 } else { inner.mem.load_candidates(loc, floor) };
    let pick = if n > 1 { ctx.exec.choose_value(&mut inner, n) } else { 0 };
    if inner.abort {
        drop(inner);
        panic::panic_any(AbortToken);
    }
    let mut view = std::mem::take(&mut inner.threads[ctx.tid].view);
    let val = inner.mem.load_commit(loc, pick, ord, &mut view);
    inner.threads[ctx.tid].view = view;
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some(val)
}

pub(crate) fn atomic_store(
    loc: usize,
    kind: &'static str,
    ord: Ordering,
    val: u64,
    live: u64,
) -> Option<()> {
    let ctx = current()?;
    let op = Op::Store { loc, kind };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    inner.mem.ensure(loc, live);
    let mut view = std::mem::take(&mut inner.threads[ctx.tid].view);
    inner.mem.store(loc, ord, val, &mut view);
    inner.threads[ctx.tid].view = view;
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some(())
}

/// Returns `(old, new_latest)` — the shim writes `new_latest` through to
/// the real cell so fall-through code and the next execution's initial
/// store stay coherent.
pub(crate) fn atomic_rmw(
    loc: usize,
    kind: &'static str,
    ord: Ordering,
    live: u64,
    f: &mut dyn FnMut(u64) -> u64,
) -> Option<(u64, u64)> {
    let ctx = current()?;
    let op = Op::Rmw { loc, kind };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    inner.mem.ensure(loc, live);
    let mut view = std::mem::take(&mut inner.threads[ctx.tid].view);
    let old = inner.mem.rmw(loc, ord, &mut view, f);
    inner.threads[ctx.tid].view = view;
    let latest = inner.mem.latest(loc);
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some((old, latest))
}

/// Compare-exchange: reads the latest store (modification-order
/// atomicity); on success stores `new` with `succ` ordering, on failure
/// behaves as a load with `fail` ordering. Returns the std-shaped
/// result plus the latest value for write-through.
pub(crate) fn atomic_cas(
    loc: usize,
    kind: &'static str,
    expected: u64,
    new: u64,
    succ: Ordering,
    fail: Ordering,
    live: u64,
) -> Option<(Result<u64, u64>, u64)> {
    let ctx = current()?;
    let op = Op::Rmw { loc, kind };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    inner.mem.ensure(loc, live);
    let latest = inner.mem.latest(loc);
    let mut view = std::mem::take(&mut inner.threads[ctx.tid].view);
    let result = if latest == expected {
        inner.mem.rmw(loc, succ, &mut view, &mut |_| new);
        Ok(latest)
    } else {
        let floor = Memory::floor(&view, loc);
        let n = inner.mem.load_candidates(loc, floor);
        // A failed CAS still reads the latest store.
        inner.mem.load_commit(loc, n - 1, fail, &mut view);
        Err(latest)
    };
    inner.threads[ctx.tid].view = view;
    let latest_after = inner.mem.latest(loc);
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some((result, latest_after))
}

pub(crate) fn mutex_lock(loc: usize, label: &str) -> Option<()> {
    let ctx = current()?;
    let op = Op::Lock { loc };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    if !inner.lock_labels.contains_key(&loc) {
        inner.lock_labels.insert(loc, label.to_string());
    }
    ctx.exec.lock_effect(&mut inner, ctx.tid, loc);
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    ctx.exec.bail_if_aborted(inner);
    Some(())
}

/// Guard-drop release. `panicking` releases silently (no schedule
/// point) so unwinding guards cannot wedge an aborting execution.
pub(crate) fn mutex_unlock(loc: usize, panicking: bool) -> Option<()> {
    let ctx = current()?;
    if panicking {
        let mut inner = ctx.exec.lock();
        if inner.locks.get(&loc).is_some_and(|l| l.owner == Some(ctx.tid)) {
            ctx.exec.unlock_effect(&mut inner, ctx.tid, loc);
        }
        return Some(());
    }
    let op = Op::Unlock { loc };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    ctx.exec.unlock_effect(&mut inner, ctx.tid, loc);
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some(())
}

pub(crate) fn condvar_wait(cv: usize, mutex: usize) -> Option<()> {
    let ctx = current()?;
    let op = Op::CvWait { cv, mutex };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    // Atomically: release the mutex and block on the condvar.
    ctx.exec.unlock_effect(&mut inner, ctx.tid, mutex);
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    inner.threads[ctx.tid].state = Ts::BlockedCv { cv, mutex };
    // Blocking hands off the scheduler token.
    if inner.active == Some(ctx.tid) {
        inner.active = None;
    }
    if inner.granted.is_none() && inner.active.is_none() {
        ctx.exec.pick(&mut inner);
    }
    // Woken by a notify (which re-parks us at Lock(mutex)); granted once
    // the mutex is free.
    let mut inner = ctx.exec.wait_for_grant(inner, ctx.tid);
    let reacquire = Op::Lock { loc: mutex };
    ctx.exec.lock_effect(&mut inner, ctx.tid, mutex);
    ctx.exec.executed(&mut inner, ctx.tid, &reacquire);
    ctx.exec.bail_if_aborted(inner);
    Some(())
}

pub(crate) fn condvar_notify(cv: usize, all: bool) -> Option<()> {
    let ctx = current()?;
    let op = Op::CvNotify { cv, all };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    let waiters: Vec<(Tid, usize)> = (0..inner.threads.len())
        .filter_map(|t| match inner.threads[t].state {
            Ts::BlockedCv { cv: c, mutex } if c == cv => Some((t, mutex)),
            _ => None,
        })
        .collect();
    if !waiters.is_empty() {
        let chosen: Vec<(Tid, usize)> = if all {
            waiters
        } else if waiters.len() > 1 {
            // Which waiter wakes is a genuine nondeterministic choice.
            let k = ctx.exec.choose_value(&mut inner, waiters.len());
            vec![waiters[k]]
        } else {
            waiters
        };
        if inner.abort {
            drop(inner);
            panic::panic_any(AbortToken);
        }
        for (t, mutex) in chosen {
            // A woken waiter's pending op is its mutex reacquire; its
            // own `condvar_wait` frame performs the acquire effect once
            // granted.
            inner.threads[t].state = Ts::Ready(Op::Lock { loc: mutex });
        }
    }
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some(())
}

pub(crate) fn spawn_thread(f: Box<dyn FnOnce() + Send + 'static>) -> Option<Tid> {
    let ctx = current()?;
    let child;
    {
        let mut inner = ctx.exec.lock();
        if inner.abort {
            drop(inner);
            panic::panic_any(AbortToken);
        }
        child = inner.threads.len();
        let mut state = ThreadState::new();
        // `thread::spawn` synchronizes-with the child's start: the
        // child sees everything the parent wrote before spawning.
        state.view = inner.threads[ctx.tid].view.clone();
        inner.threads.push(state);
        let exec = Arc::clone(&ctx.exec);
        let handle = std::thread::Builder::new()
            .name(format!("lsm-check-t{child}"))
            .spawn(move || thread_main(exec, child, f))
            .expect("lsm-check: OS thread spawn failed");
        inner.handles.push(handle);
    }
    // The spawn is a schedule point: the child is choosable from here on.
    let op = Op::Spawn(child);
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some(child)
}

pub(crate) fn join_thread(target: Tid) -> Option<()> {
    let ctx = current()?;
    let op = Op::Join { target };
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    // `JoinHandle::join` synchronizes-with the child's completion:
    // everything the child wrote is visible to the joiner afterwards.
    let child_view = inner.threads[target].view.clone();
    crate::memory::join_views(&mut inner.threads[ctx.tid].view, &child_view);
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some(())
}

pub(crate) fn yield_now() -> Option<()> {
    let ctx = current()?;
    let op = Op::Yield;
    let mut inner = ctx.exec.park(ctx.tid, op.clone());
    ctx.exec.executed(&mut inner, ctx.tid, &op);
    Some(())
}

fn thread_main(exec: Arc<ExecShared>, tid: Tid, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid }));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let op = Op::Start;
        let mut inner = exec.park(tid, op.clone());
        exec.executed(&mut inner, tid, &op);
        drop(inner);
        f()
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    exec.finish_thread(tid, result);
}

// ---------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------

pub(crate) fn explore(
    model: Model,
    f: Arc<dyn Fn() + Send + Sync + 'static>,
) -> Result<Report, Failure> {
    install_hook();
    let replay = match std::env::var("LSM_CHECK_REPLAY") {
        Ok(text) => match parse_trace(&text) {
            Ok(v) => Some(v),
            Err(e) => {
                return Err(Failure {
                    kind: FailureKind::ReplayMismatch(e),
                    trace: String::new(),
                    ops_tail: Vec::new(),
                    executions: 0,
                })
            }
        },
        Err(_) => None,
    };
    let mut trail: Vec<TrailEntry> = Vec::new();
    let mut executions = 0usize;
    let mut pruned = 0usize;
    let mut max_depth = 0usize;
    loop {
        if model.max_executions != 0 && executions + pruned >= model.max_executions {
            return Err(Failure {
                kind: FailureKind::BoundExceeded,
                trace: String::new(),
                ops_tail: Vec::new(),
                executions,
            });
        }
        let exec = Arc::new(ExecShared::new(
            std::mem::take(&mut trail),
            replay.clone().map(VecDeque::from),
            model.max_ops,
        ));
        {
            let mut inner = exec.lock();
            inner.threads.push(ThreadState::new());
            let e2 = Arc::clone(&exec);
            let f2 = Arc::clone(&f);
            let handle = std::thread::Builder::new()
                .name("lsm-check-t0".into())
                .spawn(move || thread_main(e2, 0, Box::new(move || f2())))
                .expect("lsm-check: OS thread spawn failed");
            inner.handles.push(handle);
        }
        let mut inner = exec.lock();
        while !inner.exec_done {
            inner = exec.wait(inner);
        }
        let handles = std::mem::take(&mut inner.handles);
        drop(inner);
        for h in handles {
            let _ = h.join();
        }
        let mut inner = exec.lock();
        let mut failure = inner.failure.take();
        if failure.is_none() {
            if let Some(forced) = &inner.replay {
                if !forced.is_empty() {
                    failure = Some(FailureKind::ReplayMismatch(format!(
                        "trace has {} leftover choice(s) after the schedule finished",
                        forced.len()
                    )));
                }
            }
        }
        let choices = std::mem::take(&mut inner.choices);
        let ops_tail: Vec<String> = inner.ops_log.drain(..).collect();
        trail = std::mem::take(&mut inner.trail);
        let depth = inner.op_count;
        let was_pruned = inner.pruned;
        inner.mem.clear();
        drop(inner);

        if let Some(kind) = failure {
            return Err(Failure { kind, trace: format_trace(&choices), ops_tail, executions });
        }
        if replay.is_some() {
            // Replay runs exactly one schedule.
            return Ok(Report { executions: 1, pruned: 0, max_depth: depth, exhaustive: false });
        }
        if was_pruned {
            pruned += 1;
        } else {
            executions += 1;
        }
        max_depth = max_depth.max(depth);
        if std::env::var_os("LSM_CHECK_DEBUG").is_some() {
            let kind = if was_pruned { "pruned" } else { "full" };
            eprintln!("lsm-check[{}]: {kind} choices={choices:?}", executions + pruned);
            for l in &ops_tail {
                eprintln!("    {l}");
            }
            for (i, e) in trail.iter().enumerate() {
                match e {
                    TrailEntry::Sched { options, taken, option_ops } => {
                        eprintln!("    trail[{i}] sched options={options:?} taken={taken} ops={option_ops:?}")
                    }
                    TrailEntry::Pick { n, taken } => {
                        eprintln!("    trail[{i}] pick n={n} taken={taken}")
                    }
                }
            }
        }
        // Backtrack: advance the deepest non-exhausted choice.
        loop {
            match trail.last_mut() {
                None => return Ok(Report { executions, pruned, max_depth, exhaustive: true }),
                Some(TrailEntry::Sched { options, taken, .. }) if *taken + 1 < options.len() => {
                    *taken += 1;
                    break;
                }
                Some(TrailEntry::Pick { n, taken }) if *taken + 1 < *n => {
                    *taken += 1;
                    break;
                }
                Some(_) => {
                    trail.pop();
                }
            }
        }
    }
}
