//! `lsm-check` — a loom-style concurrency model checker for the
//! workspace's hand-written concurrent layer.
//!
//! ## Why
//!
//! The reproduction's core guarantee — bitwise-identical match scores and
//! exports at any thread count — rests on a small amount of hand-written
//! concurrency: the serve daemon's two-level `sessions-map → slot` lock
//! discipline, the bounded FIFO pooled-encoding cache, the atomic
//! shutdown handshake, and `lsm-obs`'s lock-free counters/histograms.
//! The static rules (lsm-lint R7/R11) reason about these
//! over-approximately, and TSan runs nightly, advisory, and
//! nondeterministically. This crate closes the gap: it *exhaustively*
//! explores every bounded interleaving of a small concurrent model, on
//! stable Rust, deterministically, in CI.
//!
//! ## How
//!
//! [`sync`] is a drop-in shim for the synchronization vocabulary the
//! workspace uses (`Mutex`, `Condvar`, the `Atomic*` family, `Arc`, and
//! `thread::spawn`/`JoinHandle`). In a normal build it is a pure
//! re-export of `parking_lot` / `std` — zero cost, bitwise-identical
//! codegen. Under `RUSTFLAGS="--cfg lsm_model_check"` every acquire,
//! load, store, and RMW instead routes through a cooperative scheduler
//! that:
//!
//! - runs the model's threads one at a time, transferring control at
//!   every shared-memory operation (a *schedule point*),
//! - explores all interleavings by stateless depth-first re-execution
//!   over a trail of recorded choices, with sleep-set pruning of
//!   interleavings that only reorder independent operations,
//! - models `Relaxed` vs `Acquire`/`Release` visibility with a
//!   per-location store history and per-thread views: a `Relaxed` load
//!   may (as an explored choice) read any coherence-allowed stale store,
//!   while an `Acquire` load that reads a `Release` store joins the
//!   writer's view (happens-before),
//! - detects deadlocks (every unfinished thread blocked) and lock-order
//!   cycles via a runtime lock-order graph, cross-referencing the static
//!   rule in the failure message (`lsm-lint --explain R11-lock-discipline`),
//! - on failure prints a deterministic schedule trace that
//!   `LSM_CHECK_REPLAY=<trace>` replays exactly.
//!
//! ## Writing a model
//!
//! ```
//! use lsm_check::sync::{Arc, AtomicU64, Ordering, thread};
//!
//! lsm_check::model(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::AcqRel);
//!     });
//!     n.fetch_add(1, Ordering::AcqRel);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::Acquire), 2);
//! });
//! ```
//!
//! The closure runs once per explored interleaving, so it must be
//! restartable: construct fresh state at the top, or reset any process
//! statics it touches (e.g. `lsm_obs::reset()`). In a normal build
//! `model` runs the closure exactly once with real concurrency, so the
//! same tests double as smoke tests without the cfg.
//!
//! ## Bounds
//!
//! Exploration is exhaustive within [`Model`]'s bounds: a cap on the
//! number of executions and a per-execution operation cap (which also
//! catches unbounded spin loops). Exceeding a bound is a checker
//! *failure*, never a silent pass — shrink the model or raise the bound
//! (`sanitize.sh check` runs the suites with the unbounded environment
//! override `LSM_CHECK_MAX_EXECUTIONS=0`).

#[cfg(lsm_model_check)]
mod memory;
mod report;
#[cfg(lsm_model_check)]
mod sched;
pub mod sync;

pub use report::{Failure, FailureKind, Report};

/// Exploration bounds and entry point; `Model::new().check(f)` returns
/// the outcome instead of panicking, for expect-failure fixtures.
#[derive(Debug, Clone)]
pub struct Model {
    /// Maximum interleavings to explore before failing with
    /// [`FailureKind::BoundExceeded`]. `0` means unbounded.
    /// Overridable via `LSM_CHECK_MAX_EXECUTIONS`.
    pub max_executions: usize,
    /// Maximum schedule points in one execution before failing with
    /// [`FailureKind::Livelock`] (catches Relaxed spin loops that no
    /// interleaving ever satisfies).
    pub max_ops: usize,
}

impl Default for Model {
    fn default() -> Self {
        let max_executions = std::env::var("LSM_CHECK_MAX_EXECUTIONS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000);
        Model { max_executions, max_ops: 20_000 }
    }
}

impl Model {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    pub fn max_ops(mut self, n: usize) -> Self {
        self.max_ops = n;
        self
    }

    /// Explores every interleaving of `f` within the bounds. Returns the
    /// first failure found, or a coverage report.
    #[cfg(lsm_model_check)]
    pub fn check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        sched::explore(self.clone(), std::sync::Arc::new(f))
    }

    /// Normal build: runs `f` once with real concurrency. The model
    /// suites stay green (as plain smoke tests) without the cfg.
    #[cfg(not(lsm_model_check))]
    pub fn check<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        f();
        Ok(Report { executions: 1, pruned: 0, max_depth: 0, exhaustive: false })
    }
}

/// Checks `f` under the model and panics with the schedule trace on any
/// failure. The assert-style entry point for model tests.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(failure) = Model::new().check(f) {
        panic!("{failure}");
    }
}

/// True when this build routes [`sync`] through the model scheduler.
/// Lets suites that *require* exploration (injected-bug fixtures)
/// self-skip in normal builds.
pub const fn model_build() -> bool {
    cfg!(lsm_model_check)
}
