//! The shim synchronization vocabulary.
//!
//! Normal builds re-export `parking_lot` / `std` — zero-cost, so code
//! ported onto `lsm_check::sync` is bitwise-unchanged. Under
//! `cfg(lsm_model_check)` the same names are model types that route
//! every operation through the exploration scheduler.
//!
//! Model-build callers outside an active `lsm_check::model(...)`
//! execution fall through to the plain operation (a real `parking_lot`
//! raw mutex backs each model `Mutex`), so ordinary unit tests keep
//! passing when the whole workspace is compiled with the cfg.
//!
//! Model types identify locations by address: don't move a `Mutex`,
//! `Condvar`, or atomic between operations inside a model (keep them in
//! an `Arc`, a `static`, or a stack slot for the whole closure — the
//! same rule loom has).

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

#[cfg(not(lsm_model_check))]
pub use parking_lot::{Condvar, Mutex, MutexGuard};
#[cfg(not(lsm_model_check))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

/// `std::thread` subset: `spawn`/`JoinHandle` under the scheduler's
/// control in model executions.
#[cfg(not(lsm_model_check))]
pub mod thread {
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle, Result};
}

#[cfg(lsm_model_check)]
pub use model::{thread, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard};

#[cfg(lsm_model_check)]
mod model {
    use crate::sched;
    use parking_lot::lock_api::RawMutex as _;
    use std::cell::UnsafeCell;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::atomic::Ordering;

    fn addr_of<T: ?Sized>(r: &T) -> usize {
        r as *const T as *const u8 as usize
    }

    // -- atomics ------------------------------------------------------

    macro_rules! model_atomic_int {
        ($name:ident, $raw:ty, $prim:ty, $kind:literal) => {
            /// Model atomic: operations are schedule points; the real
            /// cell shadows the latest store (fall-through + next
            /// execution's initial value).
            #[derive(Debug, Default)]
            pub struct $name {
                v: $raw,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self { v: <$raw>::new(v) }
                }

                fn live(&self) -> u64 {
                    self.v.load(Ordering::Relaxed) as u64
                }

                pub fn load(&self, ord: Ordering) -> $prim {
                    match sched::atomic_load(addr_of(self), $kind, ord, self.live()) {
                        Some(v) => v as $prim,
                        None => self.v.load(ord),
                    }
                }

                pub fn store(&self, val: $prim, ord: Ordering) {
                    match sched::atomic_store(addr_of(self), $kind, ord, val as u64, self.live()) {
                        Some(()) => self.v.store(val, Ordering::Relaxed),
                        None => self.v.store(val, ord),
                    }
                }

                fn rmw(
                    &self,
                    ord: Ordering,
                    mut f: impl FnMut($prim) -> $prim,
                    fallback: impl FnOnce() -> $prim,
                ) -> $prim {
                    let mut g = |v: u64| f(v as $prim) as u64;
                    match sched::atomic_rmw(addr_of(self), $kind, ord, self.live(), &mut g) {
                        Some((old, latest)) => {
                            self.v.store(latest as $prim, Ordering::Relaxed);
                            old as $prim
                        }
                        None => fallback(),
                    }
                }

                pub fn fetch_add(&self, n: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord, |v| v.wrapping_add(n), || self.v.fetch_add(n, ord))
                }

                pub fn fetch_sub(&self, n: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord, |v| v.wrapping_sub(n), || self.v.fetch_sub(n, ord))
                }

                pub fn fetch_max(&self, n: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord, |v| v.max(n), || self.v.fetch_max(n, ord))
                }

                pub fn fetch_min(&self, n: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord, |v| v.min(n), || self.v.fetch_min(n, ord))
                }

                pub fn swap(&self, n: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord, |_| n, || self.v.swap(n, ord))
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    succ: Ordering,
                    fail: Ordering,
                ) -> Result<$prim, $prim> {
                    match sched::atomic_cas(
                        addr_of(self),
                        $kind,
                        current as u64,
                        new as u64,
                        succ,
                        fail,
                        self.live(),
                    ) {
                        Some((res, latest)) => {
                            self.v.store(latest as $prim, Ordering::Relaxed);
                            res.map(|v| v as $prim).map_err(|v| v as $prim)
                        }
                        None => self.v.compare_exchange(current, new, succ, fail),
                    }
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    succ: Ordering,
                    fail: Ordering,
                ) -> Result<$prim, $prim> {
                    // The model has no spurious failures.
                    self.compare_exchange(current, new, succ, fail)
                }
            }
        };
    }

    model_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64, "AtomicU64");
    model_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize, "AtomicUsize");

    /// Model `AtomicBool` (values 0/1 in the store history).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self { v: std::sync::atomic::AtomicBool::new(v) }
        }

        fn live(&self) -> u64 {
            self.v.load(Ordering::Relaxed) as u64
        }

        pub fn load(&self, ord: Ordering) -> bool {
            match sched::atomic_load(addr_of(self), "AtomicBool", ord, self.live()) {
                Some(v) => v != 0,
                None => self.v.load(ord),
            }
        }

        pub fn store(&self, val: bool, ord: Ordering) {
            match sched::atomic_store(addr_of(self), "AtomicBool", ord, val as u64, self.live()) {
                Some(()) => self.v.store(val, Ordering::Relaxed),
                None => self.v.store(val, ord),
            }
        }

        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            let mut f = |_: u64| val as u64;
            match sched::atomic_rmw(addr_of(self), "AtomicBool", ord, self.live(), &mut f) {
                Some((old, latest)) => {
                    self.v.store(latest != 0, Ordering::Relaxed);
                    old != 0
                }
                None => self.v.swap(val, ord),
            }
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            succ: Ordering,
            fail: Ordering,
        ) -> Result<bool, bool> {
            match sched::atomic_cas(
                addr_of(self),
                "AtomicBool",
                current as u64,
                new as u64,
                succ,
                fail,
                self.live(),
            ) {
                Some((res, latest)) => {
                    self.v.store(latest != 0, Ordering::Relaxed);
                    res.map(|v| v != 0).map_err(|v| v != 0)
                }
                None => self.v.compare_exchange(current, new, succ, fail),
            }
        }
    }

    // -- mutex --------------------------------------------------------

    /// Model mutex: the scheduler enforces mutual exclusion and records
    /// the acquisition in the runtime lock-order graph; a real raw
    /// mutex backs fall-through use (and is uncontended inside a model
    /// execution, where only one thread runs at a time).
    pub struct Mutex<T: ?Sized> {
        raw: parking_lot::RawMutex,
        created: &'static Location<'static>,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler (model path) or the raw mutex (fall-through
    // path) guarantees exclusive access to `data`; same bounds as
    // parking_lot::Mutex.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    // SAFETY: as above — `&Mutex<T>` only hands out `&mut T` under the
    // exclusion protocol.
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        #[track_caller]
        pub fn new(data: T) -> Self {
            Mutex {
                raw: parking_lot::RawMutex::INIT,
                created: Location::caller(),
                data: UnsafeCell::new(data),
            }
        }

        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn label(&self) -> String {
            format!("Mutex({}:{})", self.created.file(), self.created.line())
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            // Model first: parks until the scheduler grants the lock
            // (so the raw acquire below never contends), or returns
            // None for plain fall-through locking.
            sched::mutex_lock(addr_of(self), &self.label());
            self.raw.lock();
            MutexGuard { m: self }
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.data.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        #[track_caller]
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Mutex({})", self.created)
        }
    }

    pub struct MutexGuard<'a, T: ?Sized> {
        m: &'a Mutex<T>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the guard proves this thread holds the lock.
            unsafe { &*self.m.data.get() }
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: the guard proves this thread holds the lock
            // exclusively.
            unsafe { &mut *self.m.data.get() }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Raw first: if the model unlock unwinds (execution abort),
            // the raw mutex must not stay locked — the `Mutex` may be a
            // static reused by the next execution. No other model
            // thread runs until the model unlock executes, so nothing
            // observes the window.
            // SAFETY: the guard being dropped proves we hold the raw
            // mutex.
            unsafe { self.m.raw.unlock() }
            sched::mutex_unlock(addr_of(self.m), std::thread::panicking());
        }
    }

    // -- condvar ------------------------------------------------------

    /// Model condvar. No spurious wakeups: a wait returns only after a
    /// notify (which is exactly what makes lost-wakeup bugs findable).
    /// Fall-through use (outside a model execution, in a model build)
    /// spins on an epoch — adequate for tests, never reached by
    /// production code, which compiles against parking_lot.
    #[derive(Debug, Default)]
    pub struct Condvar {
        epoch: std::sync::atomic::AtomicU64,
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar { epoch: std::sync::atomic::AtomicU64::new(0) }
        }

        pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
            let mutex_addr = addr_of(guard.m);
            // SAFETY: the guard proves we hold the raw mutex; wait
            // releases it and reacquires before returning (on both the
            // normal and unwinding paths), upholding the guard's
            // invariant that its Drop releases a held raw mutex.
            unsafe { guard.m.raw.unlock() }
            let waited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sched::condvar_wait(addr_of(self), mutex_addr)
            }));
            match waited {
                Ok(Some(())) => guard.m.raw.lock(),
                Ok(None) => {
                    let e = self.epoch.load(Ordering::Acquire);
                    while self.epoch.load(Ordering::Acquire) == e {
                        std::thread::yield_now();
                    }
                    guard.m.raw.lock();
                }
                Err(payload) => {
                    // Execution abort: restore the guard invariant, then
                    // keep unwinding.
                    guard.m.raw.lock();
                    std::panic::resume_unwind(payload);
                }
            }
        }

        pub fn notify_one(&self) {
            self.epoch.fetch_add(1, Ordering::Release);
            sched::condvar_notify(addr_of(self), false);
        }

        pub fn notify_all(&self) {
            self.epoch.fetch_add(1, Ordering::Release);
            sched::condvar_notify(addr_of(self), true);
        }
    }

    // -- thread -------------------------------------------------------

    pub mod thread {
        use crate::sched;
        use std::sync::{Arc, Mutex as StdMutex};
        use std::time::Duration;

        pub use std::thread::Result;

        enum Inner<T> {
            Model { tid: usize, result: Arc<StdMutex<Option<T>>> },
            Real(std::thread::JoinHandle<T>),
        }

        pub struct JoinHandle<T>(Inner<T>);

        pub fn spawn<F, T>(f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if sched::in_model() {
                let result = Arc::new(StdMutex::new(None));
                let slot = Arc::clone(&result);
                let tid = sched::spawn_thread(Box::new(move || {
                    let r = f();
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                }))
                .expect("in_model checked above");
                JoinHandle(Inner::Model { tid, result })
            } else {
                JoinHandle(Inner::Real(std::thread::spawn(f)))
            }
        }

        impl<T> JoinHandle<T> {
            pub fn join(self) -> Result<T> {
                match self.0 {
                    Inner::Model { tid, result } => {
                        sched::join_thread(tid);
                        match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                            Some(v) => Ok(v),
                            // The child unwound (its panic already
                            // poisoned the execution as the model
                            // failure); unwind the joiner too.
                            None => std::panic::panic_any(sched::AbortToken),
                        }
                    }
                    Inner::Real(h) => h.join(),
                }
            }
        }

        pub fn yield_now() {
            if sched::yield_now().is_none() {
                std::thread::yield_now();
            }
        }

        /// Durations are meaningless under the model: sleeping is just
        /// a yield (a schedule point).
        pub fn sleep(d: Duration) {
            if sched::yield_now().is_none() {
                std::thread::sleep(d);
            }
        }
    }
}
