//! The store-history memory model: per-location store buffers and
//! per-thread views distinguishing `Relaxed` from `Acquire`/`Release`
//! visibility.
//!
//! Every atomic location keeps its full modification order (the sequence
//! of stores). Every thread keeps a *view*: for each location, the
//! earliest store index it is still allowed to read (coherence — a
//! thread never reads older than something it has already read, written,
//! or synchronized with). The ordering semantics on top:
//!
//! - a **store** appends to the modification order; a release-class
//!   store snapshots the writer's view into the store,
//! - a **load** may read *any* store at or after the thread's view floor
//!   for that location — each allowed stale read is a separate explored
//!   choice. An acquire-class load that reads a release-class store
//!   joins the writer's snapshotted view (happens-before edge). A
//!   `Relaxed` load reads the value but learns nothing,
//! - an **RMW** always reads the latest store (read-modify-write
//!   atomicity in the modification order), joining views only when both
//!   sides are release/acquire class,
//! - **`SeqCst`** is approximated as acquire/release plus always-reads-
//!   latest. The checker therefore explores a superset of `SeqCst`
//!   behaviors for pure Rel/Acq code and the workspace does not rely on
//!   `SeqCst`-only total-order properties (lsm-lint R7/R11 police the
//!   orderings in use).
//!
//! Mutexes route through the same mechanism: unlock records the
//! releaser's view on the lock, lock joins it — total synchronization on
//! the lock's location.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Per-thread visibility floor: location → earliest readable store index.
pub(crate) type View = BTreeMap<usize, usize>;

pub(crate) fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

pub(crate) fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Joins `other` into `view` (pointwise max of visibility floors).
pub(crate) fn join_views(view: &mut View, other: &View) {
    for (&loc, &idx) in other {
        let e = view.entry(loc).or_insert(0);
        if idx > *e {
            *e = idx;
        }
    }
}

#[derive(Debug, Clone)]
struct Store {
    val: u64,
    /// Release-class store: `view` is the writer's snapshot to join on an
    /// acquiring read.
    release: bool,
    view: View,
}

#[derive(Debug, Default)]
pub(crate) struct Memory {
    locs: BTreeMap<usize, Vec<Store>>,
}

impl Memory {
    /// First touch of a location adopts the live value of the real cell
    /// as the initial store (index 0, non-release) — this is what makes
    /// process statics (counters, enable gates) checkable: whatever the
    /// model closure's reset left there is the initial state.
    pub(crate) fn ensure(&mut self, loc: usize, live: u64) {
        self.locs
            .entry(loc)
            .or_insert_with(|| vec![Store { val: live, release: false, view: View::new() }]);
    }

    /// Number of stores a load at `loc` may legally read for a thread
    /// whose visibility floor is `floor` (callers branch over this).
    pub(crate) fn load_candidates(&self, loc: usize, floor: usize) -> usize {
        self.locs[&loc].len() - floor
    }

    /// Visibility floor of `loc` in `view`.
    pub(crate) fn floor(view: &View, loc: usize) -> usize {
        view.get(&loc).copied().unwrap_or(0)
    }

    /// Commits a load of the store at `floor + pick`, updating coherence
    /// and (for acquire reads of release stores) joining the writer's
    /// view. Returns the value read.
    pub(crate) fn load_commit(
        &self,
        loc: usize,
        pick: usize,
        ord: Ordering,
        view: &mut View,
    ) -> u64 {
        let floor = Self::floor(view, loc);
        let stores = &self.locs[&loc];
        // SeqCst loads read the latest store (see module docs).
        let idx = if ord == Ordering::SeqCst { stores.len() - 1 } else { floor + pick };
        let store = &stores[idx];
        let val = store.val;
        if is_acquire(ord) && store.release {
            let writer_view = store.view.clone();
            join_views(view, &writer_view);
        }
        let e = view.entry(loc).or_insert(0);
        if idx > *e {
            *e = idx;
        }
        val
    }

    /// Appends a store, returning nothing; the writer always sees its
    /// own store (its floor moves to the new index).
    pub(crate) fn store(&mut self, loc: usize, ord: Ordering, val: u64, view: &mut View) {
        let idx = self.locs[&loc].len();
        view.insert(loc, idx);
        let release = is_release(ord);
        let snapshot = if release { view.clone() } else { View::new() };
        self.locs.get_mut(&loc).unwrap().push(Store { val, release, view: snapshot });
    }

    /// Read-modify-write: reads the latest store (modification-order
    /// atomicity), applies `f`, appends the result. Returns the value
    /// read.
    pub(crate) fn rmw(
        &mut self,
        loc: usize,
        ord: Ordering,
        view: &mut View,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> u64 {
        let stores = &self.locs[&loc];
        let idx = stores.len() - 1;
        let latest = &stores[idx];
        let old = latest.val;
        if is_acquire(ord) && latest.release {
            let writer_view = latest.view.clone();
            join_views(view, &writer_view);
        }
        let e = view.entry(loc).or_insert(0);
        if idx > *e {
            *e = idx;
        }
        let new = f(old);
        self.store(loc, ord, new, view);
        old
    }

    /// Latest value in modification order (for compare-and-swap reads
    /// and failure diagnostics).
    pub(crate) fn latest(&self, loc: usize) -> u64 {
        self.locs[&loc].last().unwrap().val
    }

    pub(crate) fn clear(&mut self) {
        self.locs.clear();
    }
}
