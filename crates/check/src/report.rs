//! Checker outcomes: the coverage report of a clean run and the
//! replayable failure of a buggy one.

use std::fmt;

/// Coverage summary of a completed exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Interleavings fully executed.
    pub executions: usize,
    /// Executions cut short because every enabled thread was in the
    /// sleep set (the interleaving was covered by an earlier execution
    /// that only reordered independent operations).
    pub pruned: usize,
    /// Deepest schedule-point count seen in one execution.
    pub max_depth: usize,
    /// True when the state space was exhausted (always, unless the
    /// normal-build single-run path produced this report).
    pub exhaustive: bool,
}

/// What went wrong in the failing interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the model body).
    Panic(String),
    /// Every unfinished thread is blocked on a lock, join, or condvar.
    Deadlock,
    /// The runtime lock-order graph acquired a cycle.
    LockOrderCycle(String),
    /// One execution exceeded `Model::max_ops` schedule points —
    /// a spin loop no interleaving satisfies, or a model too large.
    Livelock,
    /// Exploration exceeded `Model::max_executions` before exhausting
    /// the state space. Never a silent pass: shrink the model, raise
    /// the bound, or run `sanitize.sh check` (unbounded).
    BoundExceeded,
    /// An `LSM_CHECK_REPLAY` trace did not match the model (stale trace
    /// or changed code).
    ReplayMismatch(String),
}

/// A failing interleaving: the kind, the deterministic schedule trace
/// that reproduces it, and the tail of the operation log.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// Comma-separated choice sequence; re-run the same test binary with
    /// `LSM_CHECK_REPLAY=<trace>` to replay this exact interleaving.
    pub trace: String,
    /// Human-readable tail of the schedule (thread, operation, location)
    /// leading up to the failure.
    pub ops_tail: Vec<String>,
    /// Executions completed before the failing one.
    pub executions: usize,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lsm-check: model failure after {} execution(s)", self.executions)?;
        match &self.kind {
            FailureKind::Panic(msg) => writeln!(f, "  kind: thread panic: {msg}")?,
            FailureKind::Deadlock => {
                writeln!(f, "  kind: deadlock — every unfinished thread is blocked")?
            }
            FailureKind::LockOrderCycle(cycle) => {
                writeln!(f, "  kind: lock-order cycle: {cycle}")?;
                writeln!(
                    f,
                    "  note: the static rule for this class is R11 — see \
                     `lsm-lint --explain R11-lock-discipline` for the \
                     workspace lock-order policy and the static graph"
                )?;
            }
            FailureKind::Livelock => writeln!(
                f,
                "  kind: livelock — one execution exceeded the schedule-point \
                 bound (unsatisfiable spin loop, or raise Model::max_ops)"
            )?,
            FailureKind::BoundExceeded => writeln!(
                f,
                "  kind: execution bound exceeded before exhausting the state \
                 space (raise LSM_CHECK_MAX_EXECUTIONS, 0 = unbounded, or \
                 shrink the model)"
            )?,
            FailureKind::ReplayMismatch(msg) => {
                writeln!(f, "  kind: LSM_CHECK_REPLAY trace mismatch: {msg}")?
            }
        }
        if !self.ops_tail.is_empty() {
            writeln!(f, "  schedule tail:")?;
            for op in &self.ops_tail {
                writeln!(f, "    {op}")?;
            }
        }
        if self.trace.is_empty() {
            writeln!(f, "  trace: (empty — failure before the first choice)")?;
        } else {
            writeln!(f, "  replay: LSM_CHECK_REPLAY={} <same test binary>", self.trace)?;
        }
        Ok(())
    }
}

/// Renders a choice sequence as the `LSM_CHECK_REPLAY` wire format.
#[cfg_attr(not(lsm_model_check), allow(dead_code))]
pub(crate) fn format_trace(choices: &[usize]) -> String {
    choices.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
}

/// Parses the `LSM_CHECK_REPLAY` wire format.
#[cfg_attr(not(lsm_model_check), allow(dead_code))]
pub(crate) fn parse_trace(s: &str) -> Result<Vec<usize>, String> {
    if s.trim().is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|tok| {
            tok.trim().parse::<usize>().map_err(|e| format!("bad trace element {tok:?}: {e}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let choices = vec![0, 3, 1, 0, 2];
        let text = format_trace(&choices);
        assert_eq!(text, "0,3,1,0,2");
        assert_eq!(parse_trace(&text).unwrap(), choices);
        assert_eq!(parse_trace("").unwrap(), Vec::<usize>::new());
        assert_eq!(parse_trace(" 1 , 2 ").unwrap(), vec![1, 2]);
        assert!(parse_trace("1,x").is_err());
    }

    #[test]
    fn failure_display_carries_replay_line() {
        let f = Failure {
            kind: FailureKind::Deadlock,
            trace: "0,1,1".into(),
            ops_tail: vec!["t1 lock Mutex@0x10".into()],
            executions: 4,
        };
        let text = f.to_string();
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("LSM_CHECK_REPLAY=0,1,1"), "{text}");
        assert!(text.contains("t1 lock Mutex@0x10"), "{text}");
    }

    #[test]
    fn lock_cycle_display_cross_references_r11() {
        let f = Failure {
            kind: FailureKind::LockOrderCycle("Mutex@a -> Mutex@b -> Mutex@a".into()),
            trace: "1".into(),
            ops_tail: vec![],
            executions: 0,
        };
        assert!(f.to_string().contains("R11-lock-discipline"));
    }
}
